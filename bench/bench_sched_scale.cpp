// E10: scheduler scalability.
//
// Wall-clock cost of the Site Scheduler Algorithm (including the host
// selection rounds at every consulted site) as the application and the
// testbed grow.
#include <benchmark/benchmark.h>

#include "bench/harness.hpp"
#include "scheduler/site_scheduler.hpp"
#include "sim/workloads.hpp"

namespace {

using namespace vdce;

void BM_ScheduleVsGraphSize(benchmark::State& state) {
  netsim::RandomTestbedParams params;
  params.num_sites = 4;
  params.groups_per_site = 2;
  params.hosts_per_group = 4;
  auto v = bench::bring_up(netsim::make_random_testbed(params, 11));

  common::Rng rng(1);
  sim::SyntheticGraphParams gp;
  gp.family = sim::GraphFamily::kLayered;
  gp.size = static_cast<std::size_t>(state.range(0));
  gp.width = 6;
  const auto graph = sim::make_synthetic_graph(gp, rng);
  state.SetLabel(std::to_string(graph.task_count()) + " tasks");

  sched::SiteScheduler scheduler(common::SiteId(0), v.directory,
                                 {.k_nearest = 3});
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule(graph));
  }
}
BENCHMARK(BM_ScheduleVsGraphSize)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_ScheduleVsHostCount(benchmark::State& state) {
  netsim::RandomTestbedParams params;
  params.num_sites = 2;
  params.groups_per_site = 2;
  params.hosts_per_group = static_cast<std::size_t>(state.range(0));
  auto v = bench::bring_up(netsim::make_random_testbed(params, 12));
  state.SetLabel(std::to_string(v.testbed->host_count()) + " hosts");

  common::Rng rng(2);
  sim::SyntheticGraphParams gp;
  gp.family = sim::GraphFamily::kLayered;
  gp.size = 6;
  gp.width = 5;
  const auto graph = sim::make_synthetic_graph(gp, rng);

  sched::SiteScheduler scheduler(common::SiteId(0), v.directory,
                                 {.k_nearest = 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule(graph));
  }
}
BENCHMARK(BM_ScheduleVsHostCount)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_ScheduleVsSitesConsulted(benchmark::State& state) {
  netsim::RandomTestbedParams params;
  params.num_sites = 8;
  params.groups_per_site = 2;
  params.hosts_per_group = 3;
  auto v = bench::bring_up(netsim::make_random_testbed(params, 13));

  common::Rng rng(3);
  sim::SyntheticGraphParams gp;
  gp.family = sim::GraphFamily::kLayered;
  gp.size = 6;
  gp.width = 5;
  const auto graph = sim::make_synthetic_graph(gp, rng);

  sched::SiteScheduler scheduler(
      common::SiteId(0), v.directory,
      {.k_nearest = static_cast<std::size_t>(state.range(0))});
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule(graph));
  }
  state.SetLabel("k=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ScheduleVsSitesConsulted)->Arg(0)->Arg(1)->Arg(3)->Arg(7);

void BM_HostSelectionOnly(benchmark::State& state) {
  netsim::RandomTestbedParams params;
  params.num_sites = 1;
  params.groups_per_site = 2;
  params.hosts_per_group = static_cast<std::size_t>(state.range(0));
  auto v = bench::bring_up(netsim::make_random_testbed(params, 14));

  common::Rng rng(4);
  sim::SyntheticGraphParams gp;
  gp.family = sim::GraphFamily::kLayered;
  gp.size = 4;
  gp.width = 4;
  const auto graph = sim::make_synthetic_graph(gp, rng);

  for (auto _ : state) {
    benchmark::DoNotOptimize(
        v.directory.host_selection(common::SiteId(0), graph));
  }
  state.SetLabel(std::to_string(v.testbed->host_count()) + " hosts");
}
BENCHMARK(BM_HostSelectionOnly)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
