// F2 (paper Figure 2): interactions among the VDCE modules.
//
// Traces one application through the full module pipeline — Editor ->
// AFG -> Application Scheduler (with inter-site coordination via Site
// Managers) -> allocation table -> Runtime System -> measured times
// back into the repository — and reports the control-plane message
// counts each hop produced.
#include <iostream>

#include "bench/harness.hpp"
#include "editor/editor.hpp"
#include "runtime/engine.hpp"
#include "scheduler/site_scheduler.hpp"
#include "sim/workloads.hpp"

int main() {
  using namespace vdce;

  bench::banner("F2", "module interaction pipeline (paper Figure 2)");
  auto v = bench::bring_up(netsim::make_campus_testbed(17));

  // Application Editor phase.
  const auto graph = sim::make_linear_solver_graph();
  std::cout << "editor: produced AFG '" << graph.name() << "' with "
            << graph.task_count() << " tasks / " << graph.link_count()
            << " links\n";

  // Application Scheduler phase (local site + k nearest).
  sched::SiteScheduler scheduler(v.site_managers[0]->site(), v.directory);
  const auto allocation = scheduler.schedule(graph);
  std::cout << "scheduler: consulted " << scheduler.consulted_sites().size()
            << " sites, produced " << allocation.size()
            << " allocation rows across "
            << allocation.hosts_involved().size() << " hosts\n";
  std::cout << "scheduler: AFG multicasts=" << v.directory.stats().afg_multicasts
            << " transfer_queries=" << v.directory.stats().transfer_queries
            << "\n";

  // Allocation distribution (Site Manager -> Group Managers -> ACs).
  std::size_t distributed = 0;
  for (auto& sm : v.site_managers) {
    distributed += sm->distribute_allocation(allocation).size();
  }
  std::cout << "site managers: delivered portions to " << distributed
            << " application controllers\n";

  // Runtime phase.
  rt::ExecutionEngine engine(tasklib::builtin_registry());
  const auto result =
      engine.execute(graph, allocation, v.site_managers[0].get());
  std::cout << "runtime: executed " << result.records.size()
            << " tasks, makespan " << result.makespan_s << "s\n";

  // Feedback: measured times recorded.
  std::cout << "repository: task_times_recorded="
            << v.site_managers[0]->stats().task_times_recorded << "\n";

  bench::header("\nhop,messages");
  std::cout << "afg_multicast," << v.directory.stats().afg_multicasts << "\n"
            << "allocation_portions," << distributed << "\n"
            << "task_time_feedback,"
            << v.site_managers[0]->stats().task_times_recorded << "\n"
            << "monitoring_updates,"
            << v.site_managers[0]->stats().workload_updates << "\n";
  std::cout << "\nshape check: every Figure 2 arrow exercised "
               "(editor->scheduler->runtime->repository).\n";
  return 0;
}
