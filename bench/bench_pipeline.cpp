// F2 (paper Figure 2): interactions among the VDCE modules, plus the
// E22 streaming data-path bench.
//
// Default mode traces one application through the full module pipeline
// — Editor -> AFG -> Application Scheduler (with inter-site
// coordination via Site Managers) -> allocation table -> Runtime
// System -> measured times back into the repository — and reports the
// control-plane message counts each hop produced.
//
// --stream [--json [path]] [--quick] runs the E22 sustained-stream
// bench instead: the four-stage streaming pipeline (windowed source ->
// 3/2 resampler -> power spectrum -> sink) over bounded RingChannels,
// reporting frames/sec, end-to-end p50/p99 latency, and RSS flatness
// while streaming >=100x the channel capacity in frames; then the same
// stream with a mid-stream host crash recovered from the last
// checkpoint window.  Written to BENCH_streaming.json by CI.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "editor/editor.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/engine.hpp"
#include "runtime/streaming.hpp"
#include "scheduler/site_scheduler.hpp"
#include "sim/workloads.hpp"
#include "tasklib/streaming.hpp"

namespace {

using namespace vdce;
using common::AppId;
using common::HostId;
using common::SiteId;
using common::TaskId;

// ------------------------------------------------------------- F2

int run_f2() {
  bench::banner("F2", "module interaction pipeline (paper Figure 2)");
  auto v = bench::bring_up(netsim::make_campus_testbed(17));

  // Application Editor phase.
  const auto graph = sim::make_linear_solver_graph();
  std::cout << "editor: produced AFG '" << graph.name() << "' with "
            << graph.task_count() << " tasks / " << graph.link_count()
            << " links\n";

  // Application Scheduler phase (local site + k nearest).
  sched::SiteScheduler scheduler(v.site_managers[0]->site(), v.directory);
  const auto allocation = scheduler.schedule(graph);
  std::cout << "scheduler: consulted " << scheduler.consulted_sites().size()
            << " sites, produced " << allocation.size()
            << " allocation rows across "
            << allocation.hosts_involved().size() << " hosts\n";
  std::cout << "scheduler: AFG multicasts="
            << v.directory.stats().afg_multicasts
            << " transfer_queries=" << v.directory.stats().transfer_queries
            << "\n";

  // Allocation distribution (Site Manager -> Group Managers -> ACs).
  std::size_t distributed = 0;
  for (auto& sm : v.site_managers) {
    distributed += sm->distribute_allocation(allocation).size();
  }
  std::cout << "site managers: delivered portions to " << distributed
            << " application controllers\n";

  // Runtime phase.
  rt::ExecutionEngine engine(tasklib::builtin_registry());
  const auto result =
      engine.execute(graph, allocation, v.site_managers[0].get());
  std::cout << "runtime: executed " << result.records.size()
            << " tasks, makespan " << result.makespan_s << "s\n";

  // Feedback: measured times recorded.
  std::cout << "repository: task_times_recorded="
            << v.site_managers[0]->stats().task_times_recorded << "\n";

  bench::header("\nhop,messages");
  std::cout << "afg_multicast," << v.directory.stats().afg_multicasts << "\n"
            << "allocation_portions," << distributed << "\n"
            << "task_time_feedback,"
            << v.site_managers[0]->stats().task_times_recorded << "\n"
            << "monitoring_updates,"
            << v.site_managers[0]->stats().workload_updates << "\n";
  std::cout << "\nshape check: every Figure 2 arrow exercised "
               "(editor->scheduler->runtime->repository).\n";
  return 0;
}

// ------------------------------------------------------------- E22

/// Resident set size in KB from /proc/self/status (0 if unreadable).
std::uint64_t rss_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      std::uint64_t kb = 0;
      fields >> kb;
      return kb;
    }
  }
  return 0;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(p * (values.size() - 1));
  return values[idx];
}

afg::FlowGraph make_stream_graph() {
  afg::FlowGraph g("e22_stream");
  const TaskId src = g.add_task("stream_window_source", "src");
  const TaskId rs = g.add_task("stream_resample", "rs");
  const TaskId fft = g.add_task("stream_window_fft", "fft");
  const TaskId sink = g.add_task("stream_sink", "sink");
  g.add_link(src, rs, 0.001);
  g.add_link(rs, fft, 0.001);
  g.add_link(fft, sink, 0.001);
  return g;
}

sched::AllocationTable make_stream_alloc(const afg::FlowGraph& g) {
  sched::AllocationTable table(g.name());
  std::uint64_t host = 1;
  for (const auto& node : g.tasks()) {
    sched::AllocationEntry e;
    e.task = node.id;
    e.task_label = node.label;
    e.library_task = node.library_task;
    e.hosts = {HostId(host++)};
    e.site = SiteId(0);
    table.add(e);
  }
  return table;
}

struct StreamCell {
  double frames_per_s = 0.0;
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  std::uint64_t frames = 0;
  std::uint64_t max_ring_occupancy = 0;
  std::uint64_t producer_parks = 0;
  std::uint64_t rss_baseline_kb = 0;
  std::uint64_t rss_peak_kb = 0;
  int restarts = 0;
  std::uint64_t frames_resumed = 0;
  std::uint64_t frames_skipped = 0;
  std::uint64_t windows_captured = 0;
};

StreamCell summarize(const rt::StreamRunResult& run, TaskId sink,
                     std::uint64_t baseline_kb, std::uint64_t peak_kb) {
  StreamCell cell;
  const auto& s = run.sinks.at(sink);
  cell.frames = s.frames_emitted;
  cell.frames_per_s =
      run.elapsed_s > 0.0 ? static_cast<double>(s.frames_emitted) /
                                run.elapsed_s
                          : 0.0;
  cell.p50_latency_us = percentile(run.sink_latencies_s, 0.50) * 1e6;
  cell.p99_latency_us = percentile(run.sink_latencies_s, 0.99) * 1e6;
  cell.max_ring_occupancy = run.max_ring_occupancy;
  cell.producer_parks = run.producer_parks;
  cell.rss_baseline_kb = baseline_kb;
  cell.rss_peak_kb = peak_kb;
  cell.restarts = run.restarts;
  cell.frames_resumed = run.frames_resumed;
  cell.frames_skipped = s.frames_skipped;
  cell.windows_captured = s.windows_captured;
  return cell;
}

int run_stream(bool json, const std::string& out_path, bool quick) {
  const std::uint64_t frames = quick ? 2000 : 50000;
  constexpr std::size_t kCapacity = 8;
  constexpr std::uint64_t kWindow = 64;

  bench::banner("E22", "sustained streaming over bounded channels");
  const auto graph = make_stream_graph();
  const auto alloc = make_stream_alloc(graph);
  const TaskId sink = *graph.find_by_label("sink");

  // ---- steady state: RSS sampled mid-stream must stay flat while
  // the stream covers frames >> channel capacity.
  const std::uint64_t rss_before = rss_kb();
  std::atomic<std::uint64_t> rss_mid{0};
  rt::StreamingConfig cfg;
  cfg.seed = 22;
  cfg.frames = frames;
  cfg.channel_capacity = kCapacity;
  cfg.track_latency = true;
  cfg.on_sink_frame = [&](TaskId, std::uint64_t k) {
    if (k == frames / 4 || k == (3 * frames) / 4) {
      std::uint64_t now = rss_kb();
      std::uint64_t prev = rss_mid.load();
      while (now > prev && !rss_mid.compare_exchange_weak(prev, now)) {
      }
    }
  };
  rt::StreamingEngine engine(tasklib::builtin_registry(), cfg);
  const auto steady_run = engine.execute(graph, alloc, nullptr, AppId(220));
  const std::uint64_t rss_after = rss_kb();
  const std::uint64_t rss_peak =
      std::max(rss_mid.load(), std::max(rss_before, rss_after));
  const StreamCell steady =
      summarize(steady_run, sink, rss_before, rss_peak);

  bench::header("mode,frames,frames_per_s,p50_us,p99_us,occupancy,parks");
  std::cout << "steady," << steady.frames << "," << steady.frames_per_s
            << "," << steady.p50_latency_us << "," << steady.p99_latency_us
            << "," << steady.max_ring_occupancy << ","
            << steady.producer_parks << "\n";

  // ---- faulted: the resampler's host dies halfway through; the
  // stream resumes from the last durable checkpoint window.
  std::atomic<bool> dead{false};
  const HostId victim = alloc.entry(*graph.find_by_label("rs")).primary_host();
  rt::StreamingConfig fault_cfg;
  fault_cfg.seed = 22;
  fault_cfg.frames = frames;
  fault_cfg.channel_capacity = kCapacity;
  fault_cfg.track_latency = true;
  fault_cfg.checkpoint_window = kWindow;
  fault_cfg.on_sink_frame = [&](TaskId, std::uint64_t k) {
    if (k == frames / 2) dead.store(true, std::memory_order_relaxed);
  };
  rt::FaultTolerance ft;
  ft.host_alive = [&](HostId h) {
    return !(dead.load(std::memory_order_relaxed) && h == victim);
  };
  ft.reschedule = [](const afg::TaskNode& node, const std::vector<HostId>&)
      -> std::optional<sched::AllocationEntry> {
    sched::AllocationEntry e;
    e.task = node.id;
    e.task_label = node.label;
    e.library_task = node.library_task;
    e.hosts = {HostId(90 + node.id.value())};
    e.site = SiteId(0);
    return e;
  };
  ft.sleep = [](double) {};
  rt::CheckpointStore store;
  rt::StreamingEngine faulted_engine(tasklib::builtin_registry(), fault_cfg);
  const auto faulted_run =
      faulted_engine.execute(graph, alloc, &ft, AppId(221), &store);
  const StreamCell faulted = summarize(faulted_run, sink, 0, 0);

  std::cout << "faulted," << faulted.frames << "," << faulted.frames_per_s
            << "," << faulted.p50_latency_us << ","
            << faulted.p99_latency_us << "," << faulted.max_ring_occupancy
            << "," << faulted.producer_parks << "\n";
  std::cout << "faulted: restarts=" << faulted.restarts
            << " frames_resumed=" << faulted.frames_resumed
            << " frames_skipped=" << faulted.frames_skipped
            << " windows_captured=" << faulted.windows_captured << "\n";

  const std::uint64_t rss_growth =
      rss_peak > rss_before ? rss_peak - rss_before : 0;
  const double capacity_multiple =
      static_cast<double>(frames) / static_cast<double>(kCapacity);
  // Flat = bounded-memory claim holds: growth under 32 MB while the
  // stream covered >=100x the channel capacity in frames.
  const bool rss_flat = rss_growth < 32 * 1024 && capacity_multiple >= 100.0;
  std::cout << "rss: baseline=" << rss_before << "kb peak=" << rss_peak
            << "kb growth=" << rss_growth << "kb over "
            << capacity_multiple << "x channel capacity ("
            << (rss_flat ? "flat" : "NOT FLAT") << ")\n";

  const double recovery_overhead_pct =
      steady.frames_per_s > 0.0
          ? 100.0 * (1.0 - faulted.frames_per_s / steady.frames_per_s)
          : 0.0;
  std::cout << "recovery overhead: " << recovery_overhead_pct
            << "% of steady throughput\n";

  if (!json) return 0;
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n  \"bench\": \"streaming\",\n";
  out << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n";
  out << "  \"pipeline\": {\"stages\": " << graph.task_count()
      << ", \"channel_capacity\": " << kCapacity
      << ", \"frames\": " << frames
      << ", \"checkpoint_window\": " << kWindow << "},\n";
  out << "  \"steady\": {\"frames_per_s\": " << steady.frames_per_s
      << ", \"p50_latency_us\": " << steady.p50_latency_us
      << ", \"p99_latency_us\": " << steady.p99_latency_us
      << ", \"max_ring_occupancy\": " << steady.max_ring_occupancy
      << ", \"producer_parks\": " << steady.producer_parks
      << ", \"rss_baseline_kb\": " << steady.rss_baseline_kb
      << ", \"rss_peak_kb\": " << steady.rss_peak_kb
      << ", \"rss_growth_kb\": " << rss_growth << "},\n";
  out << "  \"faulted\": {\"frames_per_s\": " << faulted.frames_per_s
      << ", \"p50_latency_us\": " << faulted.p50_latency_us
      << ", \"p99_latency_us\": " << faulted.p99_latency_us
      << ", \"restarts\": " << faulted.restarts
      << ", \"frames_resumed\": " << faulted.frames_resumed
      << ", \"frames_skipped\": " << faulted.frames_skipped
      << ", \"windows_captured\": " << faulted.windows_captured
      << ", \"recovery_overhead_pct\": " << recovery_overhead_pct
      << "},\n";
  out << "  \"summary\": {\"rss_flat\": " << (rss_flat ? "true" : "false")
      << ", \"frames_over_capacity_x\": " << capacity_multiple << "}\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool stream = false;
  bool json = false;
  bool quick = false;
  std::string out_path = "BENCH_streaming.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stream") {
      stream = true;
    } else if (arg == "--json") {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') out_path = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    }
  }
  if (stream) return run_stream(json, out_path, quick);
  return run_f2();
}
