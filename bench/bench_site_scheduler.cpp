// F4 (paper Figure 4): the Site Scheduler Algorithm.
//
// Regenerates the evaluation a scheduling paper would print for the
// built-in algorithms:
//   (a) schedule length (simulated makespan) of the VDCE site scheduler
//       against baseline policies across graph families;
//   (b) the k-nearest-site sweep (design decision D3);
//   (c) the priority-policy ablation (level vs FIFO vs random, D2);
//   (d) the transfer-aware site choice ablation (D4).
//
// Every policy is replayed in an identical "parallel universe" (same
// testbed seed), so differences are purely placement quality.
#include <iomanip>
#include <iostream>
#include <map>

#include "bench/harness.hpp"
#include "scheduler/baselines.hpp"
#include "scheduler/site_scheduler.hpp"
#include "sim/static_sim.hpp"
#include "sim/workloads.hpp"

namespace {

using namespace vdce;

constexpr std::uint64_t kTestbedSeed = 7001;
constexpr double kStart = 12.0;  // after monitoring warm-up

netsim::TestbedConfig testbed_config() {
  netsim::RandomTestbedParams params;
  params.num_sites = 4;
  params.groups_per_site = 2;
  params.hosts_per_group = 4;
  return netsim::make_random_testbed(params, kTestbedSeed);
}

/// Simulated makespan of one allocation in a fresh identical universe.
double replay(const afg::FlowGraph& graph,
              const sched::AllocationTable& allocation,
              const repo::TaskPerformanceDb& task_db) {
  netsim::VirtualTestbed universe(testbed_config());
  sim::StaticSimulator sim(universe, task_db);
  return sim.run(graph, allocation, kStart).makespan_s;
}

void policy_comparison(bench::Vdce& v) {
  bench::banner("F4a", "schedule length: VDCE vs baselines");
  bench::header("family,policy,mean_makespan_s,vs_vdce");

  const sim::GraphFamily families[] = {
      sim::GraphFamily::kChain, sim::GraphFamily::kForkJoin,
      sim::GraphFamily::kLayered, sim::GraphFamily::kInTree,
      sim::GraphFamily::kIndependent};
  constexpr int kTrials = 5;

  for (const auto family : families) {
    std::map<std::string, double> totals;
    for (int trial = 0; trial < kTrials; ++trial) {
      common::Rng rng(500 + trial);
      sim::SyntheticGraphParams params;
      params.family = family;
      params.size = 6;
      params.width = 5;
      const auto graph = sim::make_synthetic_graph(params, rng);

      sched::SiteScheduler vdce_sched(common::SiteId(0), v.directory,
                                      {.k_nearest = 3});
      sched::SiteScheduler vdce_qa(common::SiteId(0), v.directory,
                                   {.k_nearest = 3, .queue_aware = true});
      sched::RandomScheduler random_sched(*v.repositories[0],
                                          9000 + trial);
      sched::RoundRobinScheduler rr_sched(*v.repositories[0]);
      sched::MinMinScheduler minmin(*v.repositories[0], false);
      sched::MinMinScheduler maxmin(*v.repositories[0], true);
      sched::LocalOnlyScheduler local(*v.repositories[0],
                                      common::SiteId(0));

      const auto& task_db = v.repositories[0]->tasks();
      totals["1_vdce"] += replay(graph, vdce_sched.schedule(graph), task_db);
      totals["1b_vdce_qa"] += replay(graph, vdce_qa.schedule(graph), task_db);
      totals["2_minmin"] += replay(graph, minmin.schedule(graph), task_db);
      totals["3_maxmin"] += replay(graph, maxmin.schedule(graph), task_db);
      totals["4_local_only"] += replay(graph, local.schedule(graph), task_db);
      totals["5_round_robin"] += replay(graph, rr_sched.schedule(graph),
                                        task_db);
      totals["6_random"] += replay(graph, random_sched.schedule(graph),
                                   task_db);
    }
    const double vdce_mean = totals.at("1_vdce") / kTrials;
    for (const auto& [policy, total] : totals) {
      const double mean = total / kTrials;
      std::cout << to_string(family) << "," << policy.substr(policy.find('_') + 1) << ","
                << std::fixed << std::setprecision(3) << mean << ","
                << std::setprecision(2) << mean / vdce_mean << "x\n";
    }
  }
  std::cout << "shape check: vdce beats the load-blind baselines "
               "(random/round_robin) except on very wide graphs, where "
               "its queue-blind greedy stacks the best host; the "
               "queue-aware extension (vdce_qa, DESIGN.md D7) wins or "
               "ties every family, including against min-min.\n";
}

void k_sweep(bench::Vdce& v) {
  bench::banner("F4b", "k-nearest-site sweep (D3)");
  bench::header("k,consulted_sites,mean_makespan_s,sites_used");

  constexpr int kTrials = 5;
  for (std::size_t k = 0; k <= 3; ++k) {
    double total = 0.0;
    std::size_t consulted = 0;
    std::size_t sites_used = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      common::Rng rng(800 + trial);
      sim::SyntheticGraphParams params;
      params.family = sim::GraphFamily::kLayered;
      params.size = 5;
      params.width = 5;
      const auto graph = sim::make_synthetic_graph(params, rng);
      sched::SiteScheduler scheduler(common::SiteId(0), v.directory,
                                     {.k_nearest = k});
      const auto allocation = scheduler.schedule(graph);
      consulted = scheduler.consulted_sites().size();
      sites_used += allocation.sites_involved().size();
      total += replay(graph, allocation, v.repositories[0]->tasks());
    }
    std::cout << k << "," << consulted << "," << std::fixed
              << std::setprecision(3) << total / kTrials << ","
              << std::setprecision(1)
              << static_cast<double>(sites_used) / kTrials << "\n";
  }
  std::cout << "shape check: makespan improves (or saturates) as k grows "
               "— more sites, better machines, bigger search space.\n";
}

void priority_ablation(bench::Vdce& v) {
  bench::banner("F4c", "priority policy ablation (D2)");
  bench::header("priority,mean_makespan_s");

  constexpr int kTrials = 8;
  const std::pair<const char*, sched::PriorityPolicy> policies[] = {
      {"level", sched::PriorityPolicy::kLevel},
      {"fifo", sched::PriorityPolicy::kFifo},
      {"random", sched::PriorityPolicy::kRandomized}};
  for (const auto& [name, policy] : policies) {
    double total = 0.0;
    for (int trial = 0; trial < kTrials; ++trial) {
      common::Rng rng(1300 + trial);
      sim::SyntheticGraphParams params;
      params.family = sim::GraphFamily::kLayered;
      params.size = 6;
      params.width = 5;
      const auto graph = sim::make_synthetic_graph(params, rng);
      sched::SiteSchedulerConfig config;
      config.k_nearest = 3;
      config.priority = policy;
      config.queue_aware = true;  // priorities only bite when capacity
                                  // is tracked during the pass
      sched::SiteScheduler scheduler(common::SiteId(0), v.directory,
                                     config);
      total += replay(graph, scheduler.schedule(graph),
                      v.repositories[0]->tasks());
    }
    std::cout << name << "," << std::fixed << std::setprecision(3)
              << total / kTrials << "\n";
  }
  std::cout << "shape check: level-based priorities are never worse than "
               "arbitrary orders on average.\n";
}

void transfer_ablation(bench::Vdce& v) {
  bench::banner("F4d", "transfer-aware site choice ablation (D4)");
  bench::header("link_mb,mode,mean_makespan_s,mean_sites_used");

  constexpr int kTrials = 5;
  for (const double link_mb : {0.1, 10.0, 80.0}) {
    for (const bool aware : {true, false}) {
      double total = 0.0;
      double sites_used = 0.0;
      for (int trial = 0; trial < kTrials; ++trial) {
        common::Rng rng(2100 + trial);
        sim::SyntheticGraphParams params;
        params.family = sim::GraphFamily::kChain;
        params.size = 10;
        params.min_transfer_mb = link_mb;
        params.max_transfer_mb = link_mb;
        const auto graph = sim::make_synthetic_graph(params, rng);
        sched::SiteSchedulerConfig config;
        config.k_nearest = 3;
        config.transfer_aware = aware;
        sched::SiteScheduler scheduler(common::SiteId(0), v.directory,
                                       config);
        const auto allocation = scheduler.schedule(graph);
        sites_used += static_cast<double>(
            allocation.sites_involved().size());
        total += replay(graph, allocation, v.repositories[0]->tasks());
      }
      std::cout << link_mb << "," << (aware ? "aware" : "blind") << ","
                << std::fixed << std::setprecision(3) << total / kTrials
                << "," << std::setprecision(1) << sites_used / kTrials
                << "\n";
    }
  }
  std::cout << "shape check: with heavy links, transfer-aware placement "
               "wins and uses fewer sites; with light links the modes "
               "converge.\n";
}

}  // namespace

int main() {
  auto v = bench::bring_up(testbed_config());
  policy_comparison(v);
  k_sweep(v);
  priority_ablation(v);
  transfer_ablation(v);
  return 0;
}
