// D15: the admission front door at scale.
//
// Two modes:
//   * default: google-benchmark micro-benchmarks of the grant pick --
//     the sharded stride queue against a faithful replica of the
//     pre-D15 linear scan -- across queue depths;
//   * --json [path] [--quick]: the E21 sweep.  (1) grant-pick cost at
//     1k..100k queued submissions, sharded vs linear, p50/p99 ns and
//     grants/sec; (2) end-to-end submit() admission latency against a
//     1k..100k backlog on a live (paused) service, p50/p99 us plus
//     batched-burst throughput; (3) fairness: Jain's index over
//     per-user grants for 64 equal users and the worst weighted-share
//     error for 1:2:4 weights.  Written to BENCH_admission.json by
//     default; cited by EXPERIMENTS.md E21 and run as the
//     admission-perf-smoke CI job.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/harness.hpp"
#include "runtime/fair_share.hpp"
#include "runtime/submission.hpp"

namespace {

using namespace vdce;

[[nodiscard]] double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------
// A faithful replica of the pre-D15 grant pick: one flat ready vector,
// one flat pass map, O(n) scan per grant (and the seed's mid-vector
// erase).  Kept here so the sweep can show the curve the sharded queue
// replaced without resurrecting the old service.
struct LinearRef {
  struct Entry {
    std::string user;
    std::uint64_t seq = 0;
    double weight = 1.0;
  };
  std::vector<Entry> ready;
  std::unordered_map<std::string, double> shares;
  double grant_pass = 0.0;

  void push(std::string user, std::uint64_t seq, double weight) {
    if (!shares.contains(user)) shares[user] = grant_pass;
    ready.push_back(Entry{std::move(user), seq, weight});
  }

  Entry pop() {
    std::size_t best = 0;
    double best_pass = std::numeric_limits<double>::infinity();
    std::uint64_t best_seq = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < ready.size(); ++i) {
      const double pass = shares.at(ready[i].user);
      if (pass < best_pass ||
          (pass == best_pass && ready[i].seq < best_seq)) {
        best = i;
        best_pass = pass;
        best_seq = ready[i].seq;
      }
    }
    Entry entry = ready[best];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best));
    double& pass = shares.at(entry.user);
    grant_pass = pass;
    pass += 1.0 / std::max(entry.weight, 1e-9);
    return entry;
  }
};

[[nodiscard]] std::string user_of(std::size_t i, std::size_t users) {
  return "user" + std::to_string(i % users);
}

[[nodiscard]] double weight_of(std::size_t i) {
  return 1.0 + static_cast<double>(i % 4);
}

void fill_sharded(rt::FairShareQueue& queue, std::size_t depth,
                  std::size_t users) {
  for (std::size_t i = 0; i < depth; ++i) {
    rt::FairShareEntry entry;
    entry.app = common::AppId(static_cast<std::uint32_t>(i + 1));
    entry.seq = i + 1;
    entry.weight = weight_of(i);
    queue.push(user_of(i, users), entry);
  }
}

void fill_linear(LinearRef& queue, std::size_t depth, std::size_t users) {
  for (std::size_t i = 0; i < depth; ++i) {
    queue.push(user_of(i, users), i + 1, weight_of(i));
  }
}

struct Quantiles {
  double p50 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
};

[[nodiscard]] Quantiles quantiles(std::vector<double> samples) {
  Quantiles q;
  if (samples.empty()) return q;
  std::sort(samples.begin(), samples.end());
  q.p50 = samples[samples.size() / 2];
  q.p99 = samples[std::min(samples.size() - 1,
                           samples.size() * 99 / 100)];
  double sum = 0.0;
  for (const double s : samples) sum += s;
  q.mean = sum / static_cast<double>(samples.size());
  return q;
}

// ------------------------------------------------------ micro benches

void BM_ShardedGrantPick(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  const std::size_t users = std::max<std::size_t>(depth / 16, 4);
  rt::FairShareQueue queue;
  fill_sharded(queue, depth, users);
  std::uint64_t seq = depth + 1;
  for (auto _ : state) {
    auto entry = queue.pop();
    benchmark::DoNotOptimize(entry);
    // Refill a rotating user so the depth stays constant.
    entry->seq = seq;
    queue.push(user_of(seq, users), *entry);
    ++seq;
  }
}
BENCHMARK(BM_ShardedGrantPick)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_LinearGrantPick(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  LinearRef queue;
  fill_linear(queue, depth, std::max<std::size_t>(depth / 16, 4));
  std::uint64_t seq = depth + 1;
  for (auto _ : state) {
    auto entry = queue.pop();
    benchmark::DoNotOptimize(entry);
    queue.push(entry.user, seq++, entry.weight);
  }
}
BENCHMARK(BM_LinearGrantPick)->Arg(1000)->Arg(10000);

// ------------------------------------------------------ the E21 sweep

struct GrantPickCell {
  std::size_t depth = 0;
  std::size_t users = 0;
  Quantiles sharded_ns;
  Quantiles linear_ns;
  double sharded_grants_per_s = 0.0;
  double speedup_p99 = 0.0;
};

GrantPickCell run_grant_pick_cell(std::size_t depth, std::size_t picks) {
  GrantPickCell cell;
  cell.depth = depth;
  cell.users = std::max<std::size_t>(depth / 16, 4);

  rt::FairShareQueue sharded;
  fill_sharded(sharded, depth, cell.users);
  std::vector<double> sharded_ns;
  sharded_ns.reserve(picks);
  std::uint64_t seq = depth + 1;
  for (std::size_t i = 0; i < picks; ++i) {
    const double t0 = now_s();
    auto entry = sharded.pop();
    const double t1 = now_s();
    sharded_ns.push_back((t1 - t0) * 1e9);
    entry->seq = seq++;
    sharded.push(user_of(i, cell.users), *entry);
  }
  cell.sharded_ns = quantiles(sharded_ns);
  cell.sharded_grants_per_s =
      cell.sharded_ns.mean > 0.0 ? 1e9 / cell.sharded_ns.mean : 0.0;

  LinearRef linear;
  fill_linear(linear, depth, cell.users);
  std::vector<double> linear_ns;
  linear_ns.reserve(picks);
  for (std::size_t i = 0; i < picks; ++i) {
    const double t0 = now_s();
    auto entry = linear.pop();
    const double t1 = now_s();
    linear_ns.push_back((t1 - t0) * 1e9);
    linear.push(entry.user, seq++, entry.weight);
  }
  cell.linear_ns = quantiles(linear_ns);
  cell.speedup_p99 =
      cell.linear_ns.p99 / std::max(cell.sharded_ns.p99, 1e-9);
  return cell;
}

struct ServiceCell {
  std::size_t backlog = 0;
  double submit_p50_us = 0.0;
  double submit_p99_us = 0.0;
  double batch_submissions_per_s = 0.0;
};

[[nodiscard]] afg::FlowGraph tiny_graph(const std::string& name) {
  afg::FlowGraph g(name);
  const auto src = g.add_task("synth_source", "src");
  const auto sink = g.add_task("synth_sink", "sink");
  g.add_link(src, sink, 0.01);
  return g;
}

[[nodiscard]] rt::SubmissionRequest make_request(std::size_t i,
                                                 std::size_t users) {
  rt::SubmissionRequest request;
  request.graph = tiny_graph("bench" + std::to_string(i));
  request.qos.deadline_s = 1e18;
  request.user = user_of(i, users);
  request.weight = weight_of(i);
  request.seed = 1 + i;
  return request;
}

ServiceCell run_service_cell(bench::Vdce& v, std::size_t backlog,
                             std::size_t timed_submits) {
  ServiceCell cell;
  cell.backlog = backlog;
  constexpr std::size_t kUsers = 64;

  rt::AppSubmissionConfig config;
  config.slots = 2;
  config.start_paused = true;
  config.max_queue = backlog + timed_submits + 1;
  rt::AppSubmissionService service(common::SiteId(0), v.repo_directory,
                                   tasklib::builtin_registry(), config);

  // Build the backlog with batched bursts (also the burst-throughput
  // figure: scheduling + batched QoS + queue push, amortised).
  constexpr std::size_t kBurst = 2000;
  const double fill0 = now_s();
  std::size_t filled = 0;
  while (filled < backlog) {
    const std::size_t count = std::min(kBurst, backlog - filled);
    std::vector<rt::SubmissionRequest> burst;
    burst.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      burst.push_back(make_request(filled + i, kUsers));
    }
    (void)service.submit_batch(std::move(burst));
    filled += count;
  }
  const double fill_s = now_s() - fill0;
  cell.batch_submissions_per_s =
      fill_s > 0.0 ? static_cast<double>(backlog) / fill_s : 0.0;

  // The headline figure: individual submit() latency against the full
  // backlog -- schedule, residual QoS, ETA and queue push.
  std::vector<double> us;
  us.reserve(timed_submits);
  for (std::size_t i = 0; i < timed_submits; ++i) {
    auto request = make_request(backlog + i, kUsers);
    const double t0 = now_s();
    (void)service.submit(std::move(request));
    const double t1 = now_s();
    us.push_back((t1 - t0) * 1e6);
  }
  const Quantiles q = quantiles(us);
  cell.submit_p50_us = q.p50;
  cell.submit_p99_us = q.p99;

  // Tier-3 shedding doubles as the cleanup path: drop the whole
  // backlog instead of executing it.
  (void)service.shed_queued(std::numeric_limits<int>::max());
  return cell;
}

struct FairnessResult {
  std::size_t users = 0;
  std::size_t grants = 0;
  double jain = 0.0;
  double worst_weighted_error_pct = 0.0;
};

FairnessResult run_fairness() {
  FairnessResult result;
  result.users = 64;
  result.grants = 10000;

  // Equal weights: Jain's index over per-user grant counts.
  {
    rt::FairShareQueue queue;
    std::uint64_t seq = 1;
    for (std::size_t e = 0; e < 200; ++e) {
      for (std::size_t u = 0; u < result.users; ++u) {
        rt::FairShareEntry entry;
        entry.app = common::AppId(static_cast<std::uint32_t>(seq));
        entry.seq = seq++;
        queue.push("user" + std::to_string(u), entry);
      }
    }
    std::vector<double> grants(result.users, 0.0);
    for (std::size_t g = 0; g < result.grants; ++g) {
      const auto entry = queue.pop();
      grants[(entry->seq - 1) % result.users] += 1.0;
    }
    double sum = 0.0, sum_sq = 0.0;
    for (const double g : grants) {
      sum += g;
      sum_sq += g * g;
    }
    result.jain =
        (sum * sum) / (static_cast<double>(result.users) * sum_sq);
  }

  // Weighted 1:2:4: worst per-user deviation from the weighted share.
  {
    const std::vector<double> weights = {1.0, 2.0, 4.0};
    rt::FairShareQueue queue;
    std::uint64_t seq = 1;
    for (std::size_t e = 0; e < 500; ++e) {
      for (std::size_t u = 0; u < weights.size(); ++u) {
        rt::FairShareEntry entry;
        entry.app = common::AppId(static_cast<std::uint32_t>(seq));
        entry.seq = seq++;
        entry.weight = weights[u];
        queue.push("w" + std::to_string(u), entry);
      }
    }
    std::vector<double> grants(weights.size(), 0.0);
    constexpr std::size_t kGrants = 700;
    for (std::size_t g = 0; g < kGrants; ++g) {
      const auto entry = queue.pop();
      grants[(entry->seq - 1) % weights.size()] += 1.0;
    }
    for (std::size_t u = 0; u < weights.size(); ++u) {
      const double expected = kGrants * weights[u] / 7.0;
      const double err =
          100.0 * std::abs(grants[u] - expected) / expected;
      result.worst_weighted_error_pct =
          std::max(result.worst_weighted_error_pct, err);
    }
  }
  return result;
}

int run_json_sweep(const std::string& out_path, bool quick) {
  const std::vector<std::size_t> depths =
      quick ? std::vector<std::size_t>{1000, 10000}
            : std::vector<std::size_t>{1000, 10000, 100000};
  const std::size_t picks = quick ? 300 : 1000;
  const std::size_t timed_submits = quick ? 100 : 200;

  bench::banner("E21", "admission front door at 1k..100k backlog");

  bench::header(
      "depth,users,sharded_p50_ns,sharded_p99_ns,linear_p50_ns,"
      "linear_p99_ns,grants_per_s,speedup_p99");
  std::vector<GrantPickCell> grant_cells;
  for (const std::size_t depth : depths) {
    grant_cells.push_back(run_grant_pick_cell(depth, picks));
    const auto& c = grant_cells.back();
    std::cout << c.depth << "," << c.users << "," << c.sharded_ns.p50
              << "," << c.sharded_ns.p99 << "," << c.linear_ns.p50 << ","
              << c.linear_ns.p99 << "," << c.sharded_grants_per_s << ","
              << c.speedup_p99 << "\n";
  }

  auto v = bench::bring_up(netsim::make_campus_testbed(13), 0.0);
  bench::header("backlog,submit_p50_us,submit_p99_us,batch_submits_per_s");
  std::vector<ServiceCell> service_cells;
  for (const std::size_t depth : depths) {
    service_cells.push_back(run_service_cell(v, depth, timed_submits));
    const auto& c = service_cells.back();
    std::cout << c.backlog << "," << c.submit_p50_us << ","
              << c.submit_p99_us << "," << c.batch_submissions_per_s
              << "\n";
  }

  const FairnessResult fairness = run_fairness();
  std::cout << "fairness: jain " << fairness.jain << " over "
            << fairness.users << " users, worst weighted error "
            << fairness.worst_weighted_error_pct << "%\n";

  // Headline ratios: the sharded p99 must stay roughly flat across two
  // orders of magnitude of backlog while the linear reference grows
  // with it.
  const auto& first = grant_cells.front();
  const auto& last = grant_cells.back();
  const double sharded_flatness =
      last.sharded_ns.p99 / std::max(first.sharded_ns.p99, 1e-9);
  const double linear_growth =
      last.linear_ns.p99 / std::max(first.linear_ns.p99, 1e-9);

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n  \"bench\": \"admission\",\n";
  out << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n";
  out << "  \"grant_pick\": [\n";
  for (std::size_t i = 0; i < grant_cells.size(); ++i) {
    const auto& c = grant_cells[i];
    out << "    {\"depth\": " << c.depth << ", \"users\": " << c.users
        << ", \"sharded_p50_ns\": " << c.sharded_ns.p50
        << ", \"sharded_p99_ns\": " << c.sharded_ns.p99
        << ", \"linear_p50_ns\": " << c.linear_ns.p50
        << ", \"linear_p99_ns\": " << c.linear_ns.p99
        << ", \"grants_per_s\": " << c.sharded_grants_per_s
        << ", \"speedup_p99\": " << c.speedup_p99 << "}"
        << (i + 1 < grant_cells.size() ? ",\n" : "\n");
  }
  out << "  ],\n";
  out << "  \"service_admission\": [\n";
  for (std::size_t i = 0; i < service_cells.size(); ++i) {
    const auto& c = service_cells[i];
    out << "    {\"backlog\": " << c.backlog
        << ", \"submit_p50_us\": " << c.submit_p50_us
        << ", \"submit_p99_us\": " << c.submit_p99_us
        << ", \"batch_submissions_per_s\": " << c.batch_submissions_per_s
        << "}" << (i + 1 < service_cells.size() ? ",\n" : "\n");
  }
  out << "  ],\n";
  out << "  \"fairness\": {\"users\": " << fairness.users
      << ", \"grants\": " << fairness.grants
      << ", \"jain\": " << fairness.jain
      << ", \"worst_weighted_error_pct\": "
      << fairness.worst_weighted_error_pct << "},\n";
  out << "  \"summary\": {\n";
  out << "    \"max_depth\": " << last.depth << ",\n";
  out << "    \"sharded_p99_flatness\": " << sharded_flatness << ",\n";
  out << "    \"linear_p99_growth\": " << linear_growth << ",\n";
  out << "    \"speedup_p99_at_max_depth\": " << last.speedup_p99 << "\n";
  out << "  }\n}\n";
  std::cout << "wrote " << out_path << " (sharded p99 "
            << first.sharded_ns.p99 << "ns -> " << last.sharded_ns.p99
            << "ns across " << first.depth << ".." << last.depth
            << "; linear grew " << linear_growth << "x)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool quick = false;
  std::string out_path = "BENCH_admission.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') out_path = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    }
  }
  if (json) return run_json_sweep(out_path, quick);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
