// F5 (paper Figure 5): the Host Selection Algorithm.
//
// Quantifies the value of prediction-driven in-site host choice:
//   (a) pick quality vs a load-blind and an oracle pick under varying
//       heterogeneity and load;
//   (b) regret (actual time of pick / actual time of best host).
#include <iomanip>
#include <iostream>

#include "bench/harness.hpp"
#include "scheduler/eligibility.hpp"
#include "scheduler/host_selection.hpp"
#include "sim/workloads.hpp"

namespace {

using namespace vdce;

constexpr double kEvalTime = 15.0;

struct Pick {
  common::HostId host;
  double actual_s = 0.0;
};

}  // namespace

int main() {
  bench::banner("F5", "host selection quality (paper Figure 5)");
  bench::header("load_level,picker,mean_actual_s,mean_regret");

  // Low / medium / high background load testbeds.
  for (const auto& [label, min_load, max_load] :
       {std::tuple{"low", 0.0, 0.3}, std::tuple{"medium", 0.3, 1.0},
        std::tuple{"high", 1.0, 3.0}}) {
    netsim::RandomTestbedParams params;
    params.num_sites = 1;
    params.groups_per_site = 2;
    params.hosts_per_group = 6;
    params.min_load = min_load;
    params.max_load = max_load;
    const auto config =
        netsim::make_random_testbed(params, 4242);
    auto v = bench::bring_up(config);

    const auto& repository = *v.repositories[0];
    const predict::PerformancePredictor predictor(repository,
                                                  v.forecasters[0].get());

    double predicted_total = 0.0, blind_total = 0.0, oracle_total = 0.0;
    double predicted_regret = 0.0, blind_regret = 0.0;
    int trials = 0;

    for (const auto& task_name :
         {"lu_decomposition", "matrix_inversion", "fft_forward",
          "track_filter", "synth_compute"}) {
      afg::TaskNode node;
      node.id = common::TaskId(0);
      node.library_task = task_name;
      node.props.input_size = 2.0;

      const auto candidates =
          sched::eligible_hosts(repository, node, common::SiteId(0));
      if (candidates.size() < 2) continue;
      ++trials;

      // Actual (ground-truth) execution time of every candidate, each
      // in a fresh universe so the measurement is fair.
      const auto actual = [&](common::HostId h) {
        netsim::VirtualTestbed universe(config);
        return universe.execution_time_at(
            repository.tasks().get(task_name), node.props.input_size, h,
            kEvalTime);
      };

      // Predicted pick (Figure 5).
      afg::FlowGraph g("probe");
      afg::TaskProperties props;
      props.input_size = node.props.input_size;
      (void)g.add_task(task_name, "probe", props);
      const auto selection =
          sched::run_host_selection(g, common::SiteId(0), predictor);
      const auto predicted_pick = selection.begin()->second.hosts.front();

      // Load-blind pick: first candidate by id (what a static list
      // would do).  Oracle: best actual.
      const auto blind_pick = candidates.front();
      double best_actual = 1e300;
      for (const auto h : candidates) {
        best_actual = std::min(best_actual, actual(h));
      }
      const double predicted_actual = actual(predicted_pick);
      const double blind_actual = actual(blind_pick);

      predicted_total += predicted_actual;
      blind_total += blind_actual;
      oracle_total += best_actual;
      predicted_regret += predicted_actual / best_actual;
      blind_regret += blind_actual / best_actual;
    }

    const auto emit = [&](const char* picker, double total, double regret) {
      std::cout << label << "," << picker << "," << std::fixed
                << std::setprecision(3) << total / trials << ","
                << std::setprecision(2) << regret / trials << "\n";
    };
    emit("predicted", predicted_total, predicted_regret);
    emit("load_blind", blind_total, blind_regret);
    emit("oracle", oracle_total, static_cast<double>(trials));
  }

  std::cout << "\nshape check: predicted picks sit between oracle (1.0 "
               "regret) and load-blind picks at every load level, and the "
               "gap to load-blind widens as load grows.\n";
  return 0;
}
