// F1 (paper Figure 1): the multi-site VDCE topology.
//
// Brings up testbeds of growing scale, verifies every site's control
// plane is live, and reports bring-up cost and monitored state coverage
// — the "geographically distributed computation sites, each of which
// has one or more VDCE Servers" picture as a working artifact.
#include <chrono>
#include <iostream>

#include "bench/harness.hpp"

int main() {
  using namespace vdce;
  using Clock = std::chrono::steady_clock;

  bench::banner("F1", "VDCE topology bring-up (paper Figure 1)");
  bench::header(
      "sites,groups_per_site,hosts_per_group,hosts,bringup_ms,"
      "monitored_hosts,wan_links");

  for (const std::size_t sites : {2u, 4u, 8u, 16u}) {
    netsim::RandomTestbedParams params;
    params.num_sites = sites;
    params.groups_per_site = 2;
    params.hosts_per_group = 4;

    const auto t0 = Clock::now();
    auto v = bench::bring_up(netsim::make_random_testbed(params, 99),
                             /*warm_up_s=*/10.0);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

    // Every host's dynamic attributes were refreshed by its own site's
    // monitoring chain (each Site Manager maintains its own repository).
    std::size_t monitored = 0;
    for (std::size_t s = 0; s < v.repositories.size(); ++s) {
      for (const auto& rec : v.repositories[s]->resources().hosts_in_site(
               common::SiteId(static_cast<std::uint32_t>(s)))) {
        if (rec.dynamic_attrs.last_update > 0.0) ++monitored;
      }
    }
    std::size_t wan_links = 0;
    for (const auto a : v.testbed->sites()) {
      for (const auto b : v.testbed->sites()) {
        if (a < b && v.testbed->wan_link(a, b)) ++wan_links;
      }
    }
    std::cout << sites << ",2,4," << v.testbed->host_count() << "," << ms
              << "," << monitored << "," << wan_links << "\n";
  }

  std::cout << "\nshape check: monitored_hosts == hosts at every scale "
               "(the Resource Controller reaches every machine).\n";
  return 0;
}
