// bench_control_plane: the E20 question -- what does moving the
// control plane out of the process cost per message?
//
// Times one control-plane interaction end-to-end through three paths:
//
//   * loopback   -- wire::encode + synchronous decode/dispatch, the
//                   in-process default every test runs through (D14).
//   * channel    -- wire::encode + in-proc Data Manager channel send +
//                   drain + dispatch (the daemon's transport, minus the
//                   kernel socket).
//   * daemon_rpc -- a full DaemonClient::tick round trip to a real
//                   vdce_site_daemon process over loopback TCP.
//
// plus Host Selection latency (the paper's inter-site AFG multicast
// unit) in-process vs. over the daemon RPC socket.  Rows are CSV;
// --json additionally writes a BENCH_control_plane.json summary.
//
// --liveness switches to the E23 question instead -- what does quorum
// liveness (D17) buy over a lone heartbeat timer?  Two variants run
// the same chaos script (a coordinator<->site-1 partition, then a
// SIGKILL of site 0's daemon): `timer` (gossip off, quorum 1: the
// watchdog's own missed-heartbeat vote is a verdict) vs `quorum`
// (gossip on, quorum 2: death needs an independent witness).  Reported
// per variant: false-positive deaths of the partitioned-but-healthy
// site, spurious restarts, refutations, and the SIGKILL detection
// latency.  --json then writes BENCH_liveness.json.
#include <signal.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/ids.hpp"
#include "daemon/client.hpp"
#include "datamgr/channel.hpp"
#include "netsim/chaos.hpp"
#include "netsim/testbed.hpp"
#include "predict/forecaster.hpp"
#include "repository/repository.hpp"
#include "runtime/control_manager.hpp"
#include "runtime/control_transport.hpp"
#include "runtime/liveness.hpp"
#include "runtime/site_manager.hpp"
#include "runtime/watchdog.hpp"
#include "runtime/wire.hpp"
#include "sim/workloads.hpp"
#include "tasklib/registry.hpp"

namespace {

using vdce::common::SiteId;

/// One site's in-process control stack from a seed (the same recipe
/// the daemon rebuilds on its side, so both ends agree by
/// construction).
struct Stack {
  std::unique_ptr<vdce::netsim::VirtualTestbed> testbed;
  std::unique_ptr<vdce::repo::SiteRepository> repository;
  std::unique_ptr<vdce::predict::LoadForecaster> forecaster;
  std::unique_ptr<vdce::rt::SiteManager> manager;
  std::unique_ptr<vdce::rt::ControlManager> control;

  explicit Stack(std::uint64_t seed, SiteId site = SiteId(0)) {
    testbed = std::make_unique<vdce::netsim::VirtualTestbed>(
        vdce::netsim::make_campus_testbed(seed));
    repository = std::make_unique<vdce::repo::SiteRepository>(site);
    vdce::tasklib::builtin_registry().install_defaults(repository->tasks());
    testbed->populate_repository(*repository, site);
    repository->users().add_user("hpdc", "nynet", 1, "wan");
    forecaster = std::make_unique<vdce::predict::LoadForecaster>();
    manager = std::make_unique<vdce::rt::SiteManager>(site, *repository,
                                                      *forecaster);
    control =
        std::make_unique<vdce::rt::ControlManager>(*testbed, site, *manager);
  }
};

struct Latency {
  double mean_us = 0.0;
  double median_us = 0.0;
  double p99_us = 0.0;
};

Latency summarize(std::vector<double> samples_us) {
  Latency out;
  if (samples_us.empty()) return out;
  std::sort(samples_us.begin(), samples_us.end());
  double sum = 0.0;
  for (const double s : samples_us) sum += s;
  out.mean_us = sum / static_cast<double>(samples_us.size());
  out.median_us = samples_us[samples_us.size() / 2];
  const std::size_t p99 = std::min(
      samples_us.size() - 1,
      static_cast<std::size_t>(
          std::ceil(0.99 * static_cast<double>(samples_us.size())) - 1));
  out.p99_us = samples_us[p99];
  return out;
}

/// Runs `op` `iters` times and returns per-call latency in µs.
template <typename Op>
Latency time_loop(std::size_t iters, Op&& op) {
  std::vector<double> us;
  us.reserve(iters);
  for (std::size_t i = 0; i < iters; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    op(i);
    const auto t1 = std::chrono::steady_clock::now();
    us.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  return summarize(std::move(us));
}

void print_row(const std::string& op, const std::string& path,
               std::size_t iters, const Latency& l) {
  std::cout << op << "," << path << "," << iters << "," << l.mean_us << ","
            << l.median_us << "," << l.p99_us << "\n";
}

std::string json_entry(const std::string& op, const std::string& path,
                       const Latency& l) {
  return "    {\"op\": \"" + op + "\", \"path\": \"" + path +
         "\", \"mean_us\": " + std::to_string(l.mean_us) +
         ", \"median_us\": " + std::to_string(l.median_us) +
         ", \"p99_us\": " + std::to_string(l.p99_us) + "}";
}

// ------------------------------------------------------ E23: liveness

double steady_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One E23 variant outcome.
struct LivenessOutcome {
  std::string name;
  /// Down declarations against the partitioned-but-healthy site
  /// (anything > 0 is a false positive -- no process ever died).
  int false_positive_deaths = 0;
  /// Restarts churned by those false positives.
  std::uint64_t spurious_restarts = 0;
  bool partitioned_site_recovered = false;
  std::uint64_t suspects = 0;
  std::uint64_t refutations = 0;
  std::uint64_t false_alarm_recoveries = 0;
  std::uint64_t deaths_quorum = 0;
  std::uint64_t deaths_timeout = 0;
  /// Kill -> on_site_down latency for the real SIGKILL (ms).
  double sigkill_detect_ms = -1.0;
};

LivenessOutcome run_liveness_variant(const std::string& name, bool gossip,
                                     int quorum) {
  LivenessOutcome out;
  out.name = name;

  vdce::rt::WatchdogConfig config;
  config.daemon_path = VDCE_SITE_DAEMON_PATH;
  config.seed = 13;
  config.heartbeat_period_s = 0.02;
  config.heartbeat_timeout_s = 0.25;
  config.max_restarts = 5;
  config.restart_backoff_s = 0.02;
  config.gossip = gossip;
  config.gossip_period_s = 0.02;
  config.probe_timeout_s = 0.2;
  // Every death verdict must travel through the liveness directory so
  // the two variants differ ONLY in their witness pools.
  config.trust_process_exit = false;
  config.liveness.quorum = quorum;
  config.liveness.suspicion_timeout_s = 0.6;

  // The chaos script: partition the coordinator from site 1 for 1.2s
  // (site 1 stays perfectly healthy), heal, then SIGKILL site 0.
  vdce::netsim::ChaosSchedule schedule;
  vdce::netsim::ChaosEvent ev;
  ev.kind = vdce::netsim::ChaosEventKind::kPartition;
  ev.start = 0.4;
  ev.length = 1.2;
  ev.site = vdce::rt::LivenessDirectory::watchdog_witness();
  ev.other_site = SiteId(1);
  schedule.add(ev);
  const double epoch = steady_s();
  config.partition_spec = schedule.partition_spec(epoch);

  vdce::rt::Watchdog watchdog(config);
  std::atomic<int> site0_downs{0};
  std::atomic<int> site1_downs{0};
  watchdog.set_on_site_down([&](SiteId site) {
    (site.value() == 0 ? site0_downs : site1_downs).fetch_add(1);
  });
  watchdog.spawn(SiteId(0));
  watchdog.spawn(SiteId(1));
  const double up_deadline = steady_s() + 15.0;
  while (steady_s() < up_deadline && !(watchdog.status(SiteId(0)).up &&
                                       watchdog.status(SiteId(1)).up)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Ride out the partition plus a recovery margin.
  const double heal_end = epoch + 0.4 + 1.2 + 0.8;
  while (steady_s() < heal_end) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  out.false_positive_deaths = site1_downs.load();
  out.spurious_restarts = watchdog.status(SiteId(1)).restarts;
  out.partitioned_site_recovered =
      watchdog.status(SiteId(1)).up &&
      watchdog.site_liveness(SiteId(1)) == vdce::rt::SiteLiveness::kAlive;

  // The real death: SIGKILL site 0 and time the verdict.
  const double killed_at = steady_s();
  watchdog.kill_daemon(SiteId(0), SIGKILL);
  const double kill_deadline = killed_at + 10.0;
  while (steady_s() < kill_deadline && site0_downs.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (site0_downs.load() > 0) {
    out.sigkill_detect_ms = (steady_s() - killed_at) * 1e3;
  }

  const auto stats = watchdog.liveness().stats();
  out.suspects = stats.suspects;
  out.refutations = stats.refutations;
  out.false_alarm_recoveries = stats.false_alarm_recoveries;
  out.deaths_quorum = stats.deaths_quorum;
  out.deaths_timeout = stats.deaths_timeout;
  return out;
}

void print_liveness_row(const LivenessOutcome& o) {
  std::cout << o.name << "," << o.false_positive_deaths << ","
            << o.spurious_restarts << ","
            << (o.partitioned_site_recovered ? 1 : 0) << "," << o.suspects
            << "," << o.refutations << "," << o.false_alarm_recoveries << ","
            << o.deaths_quorum << "," << o.deaths_timeout << ","
            << o.sigkill_detect_ms << "\n";
}

std::string liveness_json_entry(const LivenessOutcome& o) {
  return "    {\"variant\": \"" + o.name +
         "\", \"false_positive_deaths\": " +
         std::to_string(o.false_positive_deaths) +
         ", \"spurious_restarts\": " + std::to_string(o.spurious_restarts) +
         ", \"partitioned_site_recovered\": " +
         (o.partitioned_site_recovered ? "true" : "false") +
         ", \"suspects\": " + std::to_string(o.suspects) +
         ", \"refutations\": " + std::to_string(o.refutations) +
         ", \"false_alarm_recoveries\": " +
         std::to_string(o.false_alarm_recoveries) +
         ", \"deaths_quorum\": " + std::to_string(o.deaths_quorum) +
         ", \"deaths_timeout\": " + std::to_string(o.deaths_timeout) +
         ", \"sigkill_detect_ms\": " + std::to_string(o.sigkill_detect_ms) +
         "}";
}

int run_liveness_bench(bool json, const std::string& out_path) {
  std::cout << "variant,false_positive_deaths,spurious_restarts,"
               "partitioned_site_recovered,suspects,refutations,"
               "false_alarm_recoveries,deaths_quorum,deaths_timeout,"
               "sigkill_detect_ms\n";
  const auto timer = run_liveness_variant("timer", /*gossip=*/false,
                                          /*quorum=*/1);
  print_liveness_row(timer);
  const auto quorum = run_liveness_variant("quorum", /*gossip=*/true,
                                           /*quorum=*/2);
  print_liveness_row(quorum);

  if (json) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << "{\n  \"experiment\": \"E23\",\n  \"rows\": [\n"
        << liveness_json_entry(timer) << ",\n"
        << liveness_json_entry(quorum) << "\n  ],\n"
        << "  \"quorum_false_positives\": " << quorum.false_positive_deaths
        << ",\n  \"timer_false_positives\": " << timer.false_positive_deaths
        << "\n}\n";
    std::cout << "wrote " << out_path << "\n";
  }
  // The acceptance bar E23 exists to demonstrate: the quorum variant
  // must produce ZERO false positives yet still detect the real death.
  if (quorum.false_positive_deaths != 0 || quorum.sigkill_detect_ms < 0) {
    std::cerr << "E23 acceptance violated\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool quick = false;
  bool liveness = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') out_path = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--liveness") {
      liveness = true;
    }
  }
  if (out_path.empty()) {
    out_path = liveness ? "BENCH_liveness.json" : "BENCH_control_plane.json";
  }
  if (liveness) return run_liveness_bench(json, out_path);
  const std::size_t msg_iters = quick ? 2000 : 20000;
  const std::size_t rpc_iters = quick ? 500 : 5000;
  const std::size_t sel_iters = quick ? 20 : 100;
  constexpr std::uint64_t kSeed = 13;

  // A representative control message: one CI-filtered workload update.
  const vdce::rt::WorkloadUpdate update{vdce::common::HostId(3), 1.0, 0.42,
                                        512.0};

  // Path 1: loopback -- encode, decode, dispatch, synchronously.
  Stack loopback_stack(kSeed);
  vdce::rt::SiteManagerSink loopback_sink(*loopback_stack.manager);
  vdce::rt::LoopbackControlTransport loopback(loopback_sink);
  const Latency loopback_lat = time_loop(msg_iters, [&](std::size_t) {
    loopback.publish(vdce::rt::wire::encode(update));
  });

  // Path 2: in-proc channel -- encode, channel send, drain, dispatch.
  Stack channel_stack(kSeed);
  vdce::rt::SiteManagerSink channel_sink(*channel_stack.manager);
  auto pair = vdce::dm::make_inproc_pair();
  vdce::rt::ChannelControlTransport channel(*pair.sender);
  const Latency channel_lat = time_loop(msg_iters, [&](std::size_t) {
    channel.publish(vdce::rt::wire::encode(update));
    vdce::rt::drain_control_channel(*pair.receiver, channel_sink, 1);
  });

  // Path 3: the real thing -- a tick RPC to a vdce_site_daemon
  // process (encode, TCP, daemon decode + dispatch, Ack back).
  vdce::rt::WatchdogConfig config;
  config.daemon_path = VDCE_SITE_DAEMON_PATH;
  config.seed = kSeed;
  config.heartbeat_period_s = 0.05;
  config.heartbeat_timeout_s = 5.0;
  vdce::rt::Watchdog watchdog(config);
  watchdog.spawn(SiteId(0));
  vdce::daemon::DaemonClient client(watchdog.rpc_port(SiteId(0)));
  const Latency rpc_lat = time_loop(rpc_iters, [&](std::size_t i) {
    client.tick(1.0 + 1e-7 * static_cast<double>(i));
  });

  // Host Selection: the scheduler-visible unit of control-plane work,
  // local call vs. remote RPC (ships the AFG as text both ways).
  const auto graph = vdce::sim::make_linear_solver_graph();
  Stack local(kSeed);
  const Latency local_sel = time_loop(sel_iters, [&](std::size_t) {
    (void)local.manager->host_selection_request(graph);
  });
  const Latency remote_sel = time_loop(sel_iters, [&](std::size_t) {
    (void)client.host_selection(graph, 1);
  });

  std::cout << "op,path,iters,mean_us,median_us,p99_us\n";
  print_row("control_message", "loopback", msg_iters, loopback_lat);
  print_row("control_message", "channel", msg_iters, channel_lat);
  print_row("control_message", "daemon_rpc", rpc_iters, rpc_lat);
  print_row("host_selection", "in_process", sel_iters, local_sel);
  print_row("host_selection", "daemon_rpc", sel_iters, remote_sel);

  if (json) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << "{\n  \"experiment\": \"E20\",\n  \"rows\": [\n"
        << json_entry("control_message", "loopback", loopback_lat) << ",\n"
        << json_entry("control_message", "channel", channel_lat) << ",\n"
        << json_entry("control_message", "daemon_rpc", rpc_lat) << ",\n"
        << json_entry("host_selection", "in_process", local_sel) << ",\n"
        << json_entry("host_selection", "daemon_rpc", remote_sel) << "\n"
        << "  ],\n  \"rpc_over_loopback_cost\": "
        << (rpc_lat.median_us / std::max(loopback_lat.median_us, 1e-9))
        << "\n}\n";
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}
