// E11 (Section 2.3.2): the comparative visualization service.
//
// "VDCE makes it possible for an end user to experiment and evaluate
//  his/her application for different combinations of hardware and
//  software medium."  Runs the Linear Equation Solver under several
//  hardware constraints and problem sizes and prints the comparative
//  visualization the service produces.
#include <iostream>
#include <memory>
#include <optional>

#include "bench/harness.hpp"
#include "scheduler/site_scheduler.hpp"
#include "sim/static_sim.hpp"
#include "sim/workloads.hpp"
#include "viz/comparative.hpp"

namespace {

using namespace vdce;

constexpr std::uint64_t kSeed = 515;
constexpr double kStart = 12.0;

}  // namespace

int main() {
  bench::banner("E11", "comparative visualization (hardware combinations)");

  const auto config = netsim::make_campus_testbed(kSeed);
  auto v = bench::bring_up(config);

  viz::ComparativeViz by_hardware;
  const std::pair<const char*, std::optional<repo::ArchType>> combos[] = {
      {"any-machine", std::nullopt},
      {"sparc-only", repo::ArchType::kSparc},
      {"intel-only", repo::ArchType::kIntel},
      {"alpha-only", repo::ArchType::kAlpha},
  };
  for (const auto& [label, arch] : combos) {
    auto graph = sim::make_linear_solver_graph();
    if (arch) {
      for (const auto& node : graph.tasks()) {
        auto props = node.props;
        props.preferred_arch = arch;
        graph.task(node.id).props = props;
      }
    }
    sched::SiteScheduler scheduler(common::SiteId(0), v.directory);
    try {
      const auto allocation = scheduler.schedule(graph);
      netsim::VirtualTestbed universe(config);
      sim::StaticSimulator sim(universe, v.repositories[0]->tasks());
      by_hardware.add_run(label, sim.run(graph, allocation, kStart));
    } catch (const sched::SchedulingError& e) {
      std::cout << label << ": infeasible (" << e.what() << ")\n";
    }
  }
  std::cout << "\nby hardware combination:\n" << by_hardware.render();
  std::cout << "csv:\n" << by_hardware.to_csv();

  viz::ComparativeViz by_size;
  for (const double scale : {0.5, 1.0, 2.0, 4.0}) {
    const auto graph = sim::make_linear_solver_graph(scale);
    sched::SiteScheduler scheduler(common::SiteId(0), v.directory);
    const auto allocation = scheduler.schedule(graph);
    netsim::VirtualTestbed universe(config);
    sim::StaticSimulator sim(universe, v.repositories[0]->tasks());
    by_size.add_run("N=" + std::to_string(static_cast<int>(32 * scale)),
                    sim.run(graph, allocation, kStart));
  }
  std::cout << "\nby problem size:\n" << by_size.render();

  // "a site can be a local site for some of the applications and it can
  // be a remote site for some of the others running in the VDCE
  // system": concurrent applications sharing the machines.
  viz::ComparativeViz by_concurrency;
  const auto graph = sim::make_linear_solver_graph();
  for (const std::size_t napps : {1u, 2u, 4u}) {
    std::vector<std::unique_ptr<sched::AllocationTable>> allocations;
    std::vector<sim::SimJob> jobs;
    for (std::size_t i = 0; i < napps; ++i) {
      // Each app is scheduled from a different local site (wrapping).
      const auto local = common::SiteId(
          static_cast<std::uint32_t>(i % v.testbed->sites().size()));
      sched::SiteScheduler scheduler(local, v.directory);
      allocations.push_back(std::make_unique<sched::AllocationTable>(
          scheduler.schedule(graph)));
      jobs.push_back(sim::SimJob{&graph, allocations.back().get(), kStart});
    }
    netsim::VirtualTestbed universe(config);
    sim::StaticSimulator sim(universe, v.repositories[0]->tasks());
    const auto results = sim.run_many(jobs);
    double worst = 0.0;
    for (const auto& r : results) worst = std::max(worst, r.makespan_s);
    // Report the slowest app of the batch.
    auto slowest = results.front();
    for (const auto& r : results) {
      if (r.makespan_s == worst) slowest = r;
    }
    by_concurrency.add_run(std::to_string(napps) + "_concurrent_apps",
                           slowest);
  }
  std::cout << "\nconcurrent applications (worst per batch):\n"
            << by_concurrency.render();

  std::cout << "\nshape check: unconstrained placement is the best "
               "combination (it subsumes the others); makespan grows "
               "superlinearly with N (O(N^3) kernels); concurrent "
               "applications degrade gracefully under shared-host "
               "contention.\n";
  return 0;
}
