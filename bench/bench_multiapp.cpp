// E17: the multi-application runtime (D11) -- aggregate task throughput
// and admission behaviour as concurrent applications scale 1 -> 64 on
// one shared AppSubmissionService.
//
//   (a) throughput sweep: a fixed 64-application workload drained at
//       concurrency levels 1 -> 64.  Tasks carry a 1 ms stall emulating
//       the remote-data / I/O wait of real distributed tasks, so
//       aggregate tasks/s grows with concurrency as runs overlap their
//       blocked time.
//   (b) admission under pressure: 16 simultaneous applications with a
//       deadline multiplier sweep.  Tight deadlines push the
//       residual-capacity admission into rejecting most of the burst;
//       every admitted app still completes.
#include <chrono>
#include <iomanip>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "runtime/submission.hpp"
#include "scheduler/qos.hpp"
#include "scheduler/site_scheduler.hpp"

namespace {

using namespace vdce;
using common::SiteId;

/// A small pipeline: enough machine threads per run that concurrent
/// runs overlap their setup/join latencies.
afg::FlowGraph pipeline_graph(const std::string& name) {
  afg::FlowGraph g(name);
  const auto src = g.add_task("synth_source", "src");
  const auto mid = g.add_task("synth_sink", "mid");
  const auto sink = g.add_task("synth_sink", "sink");
  g.add_link(src, mid, 0.05);
  g.add_link(mid, sink, 0.05);
  return g;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The builtin library with a 1 ms stall wrapped around the synthetic
/// tasks: a stand-in for the remote data access / I/O wait that
/// dominates real distributed tasks (the benched machine's loopback
/// channels are otherwise instantaneous).  Names are unchanged, so
/// scheduling against the task-performance database is unaffected.
tasklib::TaskRegistry stalled_registry() {
  tasklib::TaskRegistry registry;
  for (const auto& name : tasklib::builtin_registry().all_tasks()) {
    tasklib::LibraryEntry entry = tasklib::builtin_registry().get(name);
    if (name == "synth_source" || name == "synth_sink") {
      entry.fn = [inner = entry.fn](const std::vector<tasklib::Payload>& in,
                                    const tasklib::TaskContext& ctx) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return inner(in, ctx);
      };
    }
    registry.add(std::move(entry));
  }
  return registry;
}

void throughput_sweep() {
  bench::banner("E17a",
                "aggregate task throughput vs concurrency level (D11)");
  bench::header("concurrent_apps,wall_ms,tasks_per_s,speedup_vs_1");

  // A fixed 64-application workload drained at increasing concurrency
  // levels: `slots` bounds how many applications run at once, so the
  // sweep isolates what overlapping runs buys.  Best-of-kReps tames
  // scheduler jitter (the single-run walls are milliseconds).
  constexpr std::size_t kApps = 64;
  constexpr int kReps = 3;
  auto v = bench::bring_up(netsim::make_campus_testbed(13));
  const auto registry = stalled_registry();
  double baseline = 0.0;
  for (const std::size_t slots : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    double best_wall = 1e9;
    std::size_t tasks = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      rt::AppSubmissionConfig config;
      config.slots = slots;
      config.max_queue = kApps;
      config.start_paused = true;  // measure the drain, not the submits
      rt::AppSubmissionService service(SiteId(0), v.repo_directory,
                                       registry, config);
      std::vector<common::AppId> apps;
      for (std::size_t i = 0; i < kApps; ++i) {
        rt::SubmissionRequest request;
        request.graph = pipeline_graph("app" + std::to_string(i));
        request.qos.deadline_s = 1e9;
        request.user = "user" + std::to_string(i % 4);
        request.seed = i + 1;
        apps.push_back(service.submit(std::move(request)));
      }
      const double start = now_s();
      service.resume();
      service.drain();
      const double wall = now_s() - start;

      tasks = 0;
      for (const auto app : apps) {
        tasks += service.wait(app).result.records.size();
      }
      best_wall = std::min(best_wall, wall);
    }
    const double throughput = static_cast<double>(tasks) / best_wall;
    if (slots == 1) baseline = throughput;
    std::cout << slots << "," << std::fixed << std::setprecision(2)
              << best_wall * 1e3 << "," << std::setprecision(0)
              << throughput << "," << std::setprecision(2)
              << throughput / baseline << "\n";
  }
  std::cout << "shape check: aggregate throughput climbs with the "
               "concurrency level (>= 2x from 1 to 8 concurrent apps) "
               "because each app's blocked time -- the emulated I/O "
               "stalls plus gang handshakes and thread joins -- "
               "overlaps across slots; past the stall-bound knee it "
               "plateaus instead of collapsing.\n";
}

void admission_pressure_sweep() {
  bench::banner("E17b",
                "residual admission under a 16-app burst (D11)");
  bench::header(
      "deadline_x_idle,admitted,rejected,completed,hit_rate");

  auto v = bench::bring_up(netsim::make_campus_testbed(13));
  const auto graph = pipeline_graph("probe");
  sched::SiteScheduler scheduler(SiteId(0), v.repo_directory);
  const auto allocation = scheduler.schedule(graph);
  const double idle_estimate =
      sched::predicted_makespan(graph, allocation, v.repo_directory);

  constexpr std::size_t kBurst = 16;
  for (const double multiplier : {1.2, 2.0, 4.0, 8.0, 1e6}) {
    rt::AppSubmissionConfig config;
    config.slots = 4;
    config.max_queue = kBurst;
    config.start_paused = true;  // the whole burst lands before any run
    rt::AppSubmissionService service(SiteId(0), v.repo_directory,
                                     tasklib::builtin_registry(), config);
    std::vector<common::AppId> apps;
    for (std::size_t i = 0; i < kBurst; ++i) {
      rt::SubmissionRequest request;
      request.graph = pipeline_graph("burst" + std::to_string(i));
      request.qos.deadline_s = multiplier * idle_estimate;
      request.user = "user" + std::to_string(i % 4);
      request.seed = i + 1;
      apps.push_back(service.submit(std::move(request)));
    }
    service.resume();
    service.drain();

    std::size_t admitted = 0, rejected = 0, completed = 0;
    for (const auto app : apps) {
      const auto status = service.wait(app);
      if (status.state == rt::SubmissionState::kCompleted) {
        ++completed;
      }
      if (status.state == rt::SubmissionState::kRejected) {
        ++rejected;
      } else {
        ++admitted;
      }
    }
    std::cout << std::fixed << std::setprecision(1) << multiplier << ","
              << admitted << "," << rejected << "," << completed << ","
              << std::setprecision(2)
              << static_cast<double>(completed) / kBurst << "\n";
  }
  std::cout << "shape check: tighter deadlines admit fewer of the burst "
               "(the residual estimate charges every already-admitted "
               "app's host-seconds); every admitted app completes, so "
               "admitted == completed on every row.\n";
}

}  // namespace

int main() {
  throughput_sweep();
  admission_pressure_sweep();
  return 0;
}
