// E12 (Section 3 future work): the distributed shared memory model.
//
// Characterises the DSM substrate: read latency cached vs uncached,
// write+invalidation cost vs sharer count, and lock service throughput
// under contention.
#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "dsm/dsm.hpp"

namespace {

using namespace vdce;
using dsm::DsmNode;
using dsm::DsmServer;
using tasklib::Payload;

void BM_DsmCachedRead(benchmark::State& state) {
  DsmServer server;
  auto node = server.attach();
  node->write("x", Payload::of_scalar(1.0));
  (void)node->read("x");
  for (auto _ : state) {
    benchmark::DoNotOptimize(node->read("x"));
  }
}
BENCHMARK(BM_DsmCachedRead);

void BM_DsmUncachedRead(benchmark::State& state) {
  DsmServer server;
  auto writer = server.attach();
  auto reader = server.attach();
  writer->write("x", Payload::of_scalar(1.0));
  for (auto _ : state) {
    // Invalidate the reader's copy each round so the read goes home.
    state.PauseTiming();
    writer->write("x", Payload::of_scalar(2.0));
    state.ResumeTiming();
    benchmark::DoNotOptimize(reader->read("x"));
  }
}
BENCHMARK(BM_DsmUncachedRead);

void BM_DsmWriteVsSharers(benchmark::State& state) {
  DsmServer server;
  auto writer = server.attach();
  const auto sharers = static_cast<std::size_t>(state.range(0));
  std::vector<std::unique_ptr<DsmNode>> nodes;
  for (std::size_t i = 0; i < sharers; ++i) nodes.push_back(server.attach());

  writer->write("x", Payload::of_scalar(0.0));
  double v = 0.0;
  for (auto _ : state) {
    // Every sharer re-caches, then the write invalidates them all.
    state.PauseTiming();
    for (auto& node : nodes) (void)node->read("x");
    state.ResumeTiming();
    writer->write("x", Payload::of_scalar(++v));
  }
  state.SetLabel(std::to_string(sharers) + " sharers");
}
BENCHMARK(BM_DsmWriteVsSharers)->Arg(0)->Arg(2)->Arg(8)->Arg(32);

void BM_DsmLockContention(benchmark::State& state) {
  const auto contenders = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    DsmServer server;
    std::vector<std::unique_ptr<DsmNode>> nodes;
    for (std::size_t i = 0; i < contenders; ++i) {
      nodes.push_back(server.attach());
    }
    auto main_node = server.attach();
    main_node->write("counter", Payload::of_scalar(0.0));
    state.ResumeTiming();

    {
      std::vector<std::jthread> threads;
      for (std::size_t i = 0; i < contenders; ++i) {
        threads.emplace_back([&, i] {
          for (int round = 0; round < 20; ++round) {
            nodes[i]->acquire("L");
            const double c = nodes[i]->read("counter").as_scalar();
            nodes[i]->write("counter", Payload::of_scalar(c + 1.0));
            nodes[i]->release("L");
          }
        });
      }
    }
    benchmark::DoNotOptimize(main_node->read("counter").as_scalar());
  }
  state.SetLabel(std::to_string(contenders) + " contenders x20 incs");
}
BENCHMARK(BM_DsmLockContention)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
