// F3 (paper Figure 3): the Application Editor building the Linear
// Equation Solver.
//
// Measures editor-operation costs at growing application sizes
// (add/link/submit/save/load) and checks the Figure 3 application round
// trips the .afg store format.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "editor/editor.hpp"
#include "sim/workloads.hpp"
#include "tasklib/registry.hpp"

namespace {

using namespace vdce;

void BM_BuildLinearSolver(benchmark::State& state) {
  const auto& registry = tasklib::builtin_registry();
  for (auto _ : state) {
    editor::ApplicationEditor ed(registry, "lin");
    const auto a = ed.add_task("matrix_generate", "A");
    const auto b = ed.add_task("vector_generate", "b");
    const auto lu = ed.add_task("lu_decomposition", "LU");
    const auto low = ed.add_task("lu_lower", "L");
    const auto up = ed.add_task("lu_upper", "U");
    const auto li = ed.add_task("matrix_inversion", "L_inv");
    const auto ui = ed.add_task("matrix_inversion", "U_inv");
    const auto pb = ed.add_task("permute_vector", "Pb");
    const auto y = ed.add_task("matrix_vector_multiply", "y");
    const auto x = ed.add_task("matrix_vector_multiply", "x");
    const auto res = ed.add_task("residual_check", "res");
    ed.set_mode(editor::EditorMode::kLink);
    ed.connect(a, lu);
    ed.connect(lu, low);
    ed.connect(lu, up);
    ed.connect(low, li);
    ed.connect(up, ui);
    ed.connect(lu, pb);
    ed.connect(b, pb);
    ed.connect(li, y);
    ed.connect(pb, y);
    ed.connect(ui, x);
    ed.connect(y, x);
    ed.connect(a, res);
    ed.connect(x, res);
    ed.connect(b, res);
    ed.set_mode(editor::EditorMode::kRun);
    benchmark::DoNotOptimize(ed.submit());
  }
}
BENCHMARK(BM_BuildLinearSolver);

void BM_SubmitValidation(benchmark::State& state) {
  // Validation cost as the AFG grows (layered graphs).
  common::Rng rng(1);
  sim::SyntheticGraphParams params;
  params.family = sim::GraphFamily::kLayered;
  params.size = static_cast<std::size_t>(state.range(0));
  params.width = 6;
  const auto graph = sim::make_synthetic_graph(params, rng);
  state.SetLabel(std::to_string(graph.task_count()) + " tasks");
  for (auto _ : state) {
    graph.validate();
    benchmark::DoNotOptimize(graph.topological_order());
  }
}
BENCHMARK(BM_SubmitValidation)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_AfgSaveLoad(benchmark::State& state) {
  common::Rng rng(2);
  sim::SyntheticGraphParams params;
  params.family = sim::GraphFamily::kLayered;
  params.size = static_cast<std::size_t>(state.range(0));
  params.width = 6;
  const auto graph = sim::make_synthetic_graph(params, rng);
  for (auto _ : state) {
    const auto text = afg::to_text(graph);
    benchmark::DoNotOptimize(afg::from_text(text));
  }
}
BENCHMARK(BM_AfgSaveLoad)->Arg(4)->Arg(16)->Arg(32);

void BM_DotExport(benchmark::State& state) {
  const auto graph = sim::make_linear_solver_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(afg::to_dot(graph));
  }
}
BENCHMARK(BM_DotExport);

}  // namespace

BENCHMARK_MAIN();
