// E9: dynamic rescheduling (Section 2.3.1).
//
//   (a) makespan with vs without the Application Controller's
//       threshold-triggered rescheduling under load spikes (D6,
//       threshold sweep);
//   (b) makespan and survival under host failures with rescheduling on.
#include <iomanip>
#include <iostream>
#include <map>

#include "bench/harness.hpp"
#include "scheduler/site_scheduler.hpp"
#include "sim/workloads.hpp"

namespace {

using namespace vdce;

constexpr std::uint64_t kSeed = 606;
constexpr double kStart = 12.0;

netsim::TestbedConfig config() {
  netsim::RandomTestbedParams params;
  params.num_sites = 2;
  params.groups_per_site = 2;
  params.hosts_per_group = 4;
  params.min_load = 0.0;
  params.max_load = 0.5;
  return netsim::make_random_testbed(params, kSeed);
}

afg::FlowGraph workload(int trial) {
  common::Rng rng(3000 + trial);
  sim::SyntheticGraphParams params;
  params.family = sim::GraphFamily::kLayered;
  params.size = 5;
  params.width = 4;
  return sim::make_synthetic_graph(params, rng);
}

/// The host carrying the most allocation rows (the one whose overload
/// or failure actually matters).
common::HostId busiest_host(const sched::AllocationTable& allocation) {
  std::map<common::HostId, int> count;
  for (const auto& row : allocation.rows()) {
    for (const auto h : row.hosts) ++count[h];
  }
  common::HostId best = allocation.hosts_involved().front();
  int most = 0;
  for (const auto& [host, n] : count) {
    if (n > most) {
      most = n;
      best = host;
    }
  }
  return best;
}

/// Runs one dynamic simulation in a fresh universe with a load spike on
/// the busiest allocated host.
sim::SimResult run_with_spike(const afg::FlowGraph& graph,
                              double threshold, int trial) {
  auto v = bench::bring_up(config());
  sched::SiteScheduler scheduler(common::SiteId(0), v.directory,
                                 {.k_nearest = 1});
  const auto allocation = scheduler.schedule(graph);
  const auto victim = busiest_host(allocation);
  v.testbed->add_load_spike(victim, {kStart, 400.0, 10.0});
  (void)trial;

  sim::DynamicSimConfig dyn;
  dyn.load_threshold = threshold;
  sim::DynamicSimulator simulator(*v.testbed, v.repositories[0]->tasks(),
                                  v.runtimes, dyn);
  return simulator.run(graph, allocation, kStart);
}

void threshold_sweep() {
  bench::banner("E9a", "threshold rescheduling under a load spike (D6)");
  bench::header("threshold,mean_makespan_s,mean_reschedules");

  constexpr int kTrials = 4;
  const double thresholds[] = {1e18, 25.0, 12.0, 5.0, 2.0, 0.3};
  for (const double threshold : thresholds) {
    double makespan = 0.0;
    double reschedules = 0.0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const auto graph = workload(trial);
      const auto result = run_with_spike(graph, threshold, trial);
      makespan += result.makespan_s;
      reschedules += static_cast<double>(result.reschedules);
    }
    std::cout << (threshold > 1e17 ? std::string("off")
                                   : std::to_string(threshold))
              << "," << std::fixed << std::setprecision(3)
              << makespan / kTrials << "," << std::setprecision(1)
              << reschedules / kTrials << "\n";
  }
  std::cout << "shape check: moderate thresholds rescue the spiked host "
               "and beat 'off'; too-low thresholds thrash (reschedules "
               "grow, gains shrink).\n";
}

void failure_experiment() {
  bench::banner("E9b", "failure survival with rescheduling");
  bench::header("scenario,makespan_s,reschedules,failures_survived");

  for (const auto& [label, kill] :
       {std::pair{"no_failure", false}, std::pair{"kill_busiest", true}}) {
    auto v = bench::bring_up(config());
    const auto graph = workload(99);
    sched::SiteScheduler scheduler(common::SiteId(0), v.directory,
                                   {.k_nearest = 1});
    const auto allocation = scheduler.schedule(graph);
    if (kill) {
      v.testbed->fail_host(busiest_host(allocation), kStart + 0.5, 1e6);
    }
    sim::DynamicSimulator simulator(*v.testbed, v.repositories[0]->tasks(),
                                    v.runtimes);
    const auto result = simulator.run(graph, allocation, kStart);
    std::cout << label << "," << std::fixed << std::setprecision(3)
              << result.makespan_s << "," << result.reschedules << ","
              << result.failures_hit << "\n";
  }
  std::cout << "shape check: the killed-host run completes (fault "
               "tolerance) at a bounded makespan cost.\n";
}

}  // namespace

int main() {
  threshold_sweep();
  failure_experiment();
  return 0;
}
