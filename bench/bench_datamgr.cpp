// F7 (paper Figure 7): the Data Manager and the execution-environment
// setup protocol.
//
// Two modes:
//   * default: google-benchmark micro-benchmarks over real code paths
//     (channel setup latency, point-to-point throughput, mp-library
//     envelope overhead, heterogeneous data conversion);
//   * --json [path] [--quick]: the D13/D14 sweep.  Runs the P4
//     endpoint pipeline over both transports and a range of frame
//     sizes; the TCP cells run twice, once with the event loop
//     publishing every parsed frame individually (one queue lock +
//     notify per frame) and once with batched publication (one lock +
//     notify per wakeup), recording throughput, allocations per frame
//     (via global operator new interposition), and p99
//     producer-to-consumer frame latency.  Written to
//     BENCH_datamgr.json by default; cited by EXPERIMENTS.md E19 and
//     run as the datamgr-perf-smoke CI job.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "datamgr/broker.hpp"
#include "datamgr/event_loop.hpp"
#include "datamgr/frame.hpp"
#include "datamgr/mplib.hpp"
#include "tasklib/payload.hpp"

// ---------------------------------------------------------------------
// Global allocation counter: every operator new in the process bumps
// it, so a cell's delta divided by its frame count is the real
// allocations-per-frame figure, event-loop and queue bookkeeping
// included.
//
// GCC cannot see that the replaced operator new is malloc-backed and
// flags the free() in the matching operator delete at every call site.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace vdce;
using dm::ChannelBroker;
using dm::LinkKey;
using dm::MessageEndpoint;
using dm::MpLibrary;
using dm::TransportKind;

std::vector<std::byte> make_blob(std::size_t n) {
  common::Rng rng(1);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng() & 0xFF);
  return out;
}

void BM_ChannelSetup(benchmark::State& state) {
  const auto kind = static_cast<TransportKind>(state.range(0));
  std::uint32_t link = 0;
  for (auto _ : state) {
    ChannelBroker broker(kind);
    const LinkKey key{common::AppId(1), common::TaskId(link),
                      common::TaskId(link + 1)};
    link += 2;
    std::shared_ptr<dm::Channel> rx;
    std::jthread consumer([&] { rx = broker.open_receive(key); });
    auto tx = broker.open_send(key);
    consumer.join();
    // Complete the Figure 7 handshake with one ack round trip.
    tx->send(make_blob(8));
    benchmark::DoNotOptimize(rx->receive());
  }
  state.SetLabel(kind == TransportKind::kInProcess ? "in-process" : "tcp");
}
BENCHMARK(BM_ChannelSetup)
    ->Arg(static_cast<int>(TransportKind::kInProcess))
    ->Arg(static_cast<int>(TransportKind::kTcp));

void BM_Throughput(benchmark::State& state) {
  const auto kind = static_cast<TransportKind>(state.range(0));
  const auto size = static_cast<std::size_t>(state.range(1));
  ChannelBroker broker(kind);
  const LinkKey key{common::AppId(1), common::TaskId(0), common::TaskId(1)};
  std::shared_ptr<dm::Channel> rx;
  std::jthread consumer([&] { rx = broker.open_receive(key); });
  auto tx = broker.open_send(key);
  consumer.join();

  const auto blob = make_blob(size);
  // Echo server: receive and discard.
  std::atomic<bool> done{false};
  std::jthread drain([&] {
    try {
      while (rx->receive()) {
        if (done.load(std::memory_order_relaxed)) break;
      }
    } catch (const common::TransportError&) {
      // benchmark teardown may shut the socket mid-message
    }
  });
  for (auto _ : state) {
    tx->send(blob);
  }
  done = true;
  tx->close();
  rx->close();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
  state.SetLabel(kind == TransportKind::kInProcess ? "in-process" : "tcp");
}
BENCHMARK(BM_Throughput)
    ->Args({static_cast<int>(TransportKind::kInProcess), 1 << 10})
    ->Args({static_cast<int>(TransportKind::kInProcess), 1 << 16})
    ->Args({static_cast<int>(TransportKind::kInProcess), 1 << 20})
    ->Args({static_cast<int>(TransportKind::kTcp), 1 << 10})
    ->Args({static_cast<int>(TransportKind::kTcp), 1 << 16})
    ->Args({static_cast<int>(TransportKind::kTcp), 1 << 20});

void BM_FrameThroughput(benchmark::State& state) {
  // The D13 zero-copy path: one pooled frame serialized once via
  // prepare(), shipped with send_prepared(), received as a view.
  const auto kind = static_cast<TransportKind>(state.range(0));
  const auto size = static_cast<std::size_t>(state.range(1));
  ChannelBroker broker(kind);
  const LinkKey key{common::AppId(1), common::TaskId(0), common::TaskId(1)};
  std::shared_ptr<dm::Channel> rx;
  std::jthread consumer([&] { rx = broker.open_receive(key); });
  auto tx_ch = broker.open_send(key);
  consumer.join();
  MessageEndpoint tx(MpLibrary::kP4, tx_ch);
  MessageEndpoint rx_ep(MpLibrary::kP4, rx);

  const auto blob = make_blob(size);
  std::atomic<bool> done{false};
  std::jthread drain([&] {
    try {
      while (rx_ep.receive_frame()) {
        if (done.load(std::memory_order_relaxed)) break;
      }
    } catch (const common::TransportError&) {
    }
  });
  for (auto _ : state) {
    dm::PreparedFrame prep = tx.prepare(7, blob.size());
    std::memcpy(prep.body().data(), blob.data(), blob.size());
    tx.send_prepared(prep.frame.view());
  }
  done = true;
  tx.close();
  rx_ep.close();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
  state.SetLabel(kind == TransportKind::kInProcess ? "in-process" : "tcp");
}
BENCHMARK(BM_FrameThroughput)
    ->Args({static_cast<int>(TransportKind::kInProcess), 1 << 16})
    ->Args({static_cast<int>(TransportKind::kInProcess), 1 << 20})
    ->Args({static_cast<int>(TransportKind::kTcp), 1 << 16})
    ->Args({static_cast<int>(TransportKind::kTcp), 1 << 20});

void BM_MpLibraryEnvelope(benchmark::State& state) {
  const auto lib = static_cast<MpLibrary>(state.range(0));
  const auto size = static_cast<std::size_t>(state.range(1));
  auto pair = dm::make_inproc_pair();
  MessageEndpoint tx(lib, pair.sender);
  MessageEndpoint rx(lib, pair.receiver);
  const auto blob = make_blob(size);
  for (auto _ : state) {
    tx.send(7, blob);
    benchmark::DoNotOptimize(rx.receive());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
  state.SetLabel(dm::to_string(lib));
}
BENCHMARK(BM_MpLibraryEnvelope)
    ->Args({static_cast<int>(MpLibrary::kP4), 1 << 16})
    ->Args({static_cast<int>(MpLibrary::kPvm), 1 << 16})
    ->Args({static_cast<int>(MpLibrary::kMpi), 1 << 16})
    ->Args({static_cast<int>(MpLibrary::kNcs), 1 << 16});

void BM_DataConversionMatrix(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(5);
  const auto m = tasklib::Matrix::random(n, n, rng);
  for (auto _ : state) {
    const auto payload = tasklib::Payload::of_matrix(m);
    benchmark::DoNotOptimize(payload.as_matrix());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * 8));
}
BENCHMARK(BM_DataConversionMatrix)->Arg(16)->Arg(64)->Arg(128);

void BM_DataConversionTracks(benchmark::State& state) {
  std::vector<tasklib::Track> tracks(
      static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    tracks[i].id = static_cast<std::uint32_t>(i);
    tracks[i].x = static_cast<double>(i);
  }
  for (auto _ : state) {
    const auto payload = tasklib::Payload::of_tracks(tracks);
    benchmark::DoNotOptimize(payload.as_tracks());
  }
}
BENCHMARK(BM_DataConversionTracks)->Arg(16)->Arg(256);

// ------------------------------------------------------ D13 json sweep

struct CellResult {
  std::string transport;
  std::size_t size_bytes = 0;
  std::string path;  // "per_frame_notify" | "batched_notify" | "zero_copy"
  std::size_t frames = 0;
  double throughput_mb_s = 0.0;
  double allocs_per_frame = 0.0;
  double p99_latency_us = 0.0;
};

/// One producer -> consumer P4 pipeline cell over the pooled zero-copy
/// path.  `batched` toggles the event loop's frame publication mode:
/// off, every parsed frame pays its own queue lock + notify; on, a
/// wakeup's worth of frames is published at once (only TCP cells go
/// through the event loop, so the toggle is a no-op in-process).
CellResult run_cell(TransportKind kind, std::size_t size, bool batched,
                    std::size_t frames) {
  using Clock = std::chrono::steady_clock;
  dm::TcpEventLoop::set_batch_publish(batched);

  ChannelBroker broker(kind);
  const LinkKey key{common::AppId(1), common::TaskId(0), common::TaskId(1)};
  std::shared_ptr<dm::Channel> rx_ch;
  std::jthread opener([&] { rx_ch = broker.open_receive(key); });
  auto tx_ch = broker.open_send(key);
  opener.join();
  MessageEndpoint tx(MpLibrary::kP4, tx_ch);
  MessageEndpoint rx(MpLibrary::kP4, rx_ch);

  const auto blob = make_blob(size);
  const std::size_t kWarmup = 8;
  std::vector<Clock::time_point> stamps(kWarmup + frames);
  std::vector<double> latencies(frames);

  const auto send_one = [&] {
    dm::PreparedFrame prep = tx.prepare(7, blob.size());
    std::memcpy(prep.body().data(), blob.data(), blob.size());
    tx.send_prepared(prep.frame.view());
  };

  std::atomic<std::uint64_t> allocs_in_window{0};
  Clock::time_point t0;
  Clock::time_point t1;
  std::jthread consumer([&] {
    for (std::size_t i = 0; i < kWarmup + frames; ++i) {
      auto msg = rx.receive_frame();
      if (!msg) return;
      benchmark::DoNotOptimize(msg->data);
      if (i >= kWarmup) {
        latencies[i - kWarmup] = std::chrono::duration<double, std::micro>(
                                     Clock::now() - stamps[i])
                                     .count();
      }
    }
  });

  for (std::size_t i = 0; i < kWarmup + frames; ++i) {
    if (i == kWarmup) {
      t0 = Clock::now();
      allocs_in_window.store(g_alloc_count.load(std::memory_order_relaxed));
    }
    stamps[i] = Clock::now();
    send_one();
  }
  consumer.join();
  t1 = Clock::now();
  const std::uint64_t alloc_delta =
      g_alloc_count.load(std::memory_order_relaxed) -
      allocs_in_window.load();
  tx.close();
  rx.close();

  std::sort(latencies.begin(), latencies.end());
  CellResult cell;
  cell.transport = kind == TransportKind::kInProcess ? "inproc" : "tcp";
  cell.size_bytes = size;
  cell.path = kind == TransportKind::kInProcess
                  ? "zero_copy"
                  : (batched ? "batched_notify" : "per_frame_notify");
  cell.frames = frames;
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  cell.throughput_mb_s =
      static_cast<double>(frames * size) / (1024.0 * 1024.0) / seconds;
  cell.allocs_per_frame =
      static_cast<double>(alloc_delta) / static_cast<double>(frames);
  cell.p99_latency_us =
      latencies[std::min(frames - 1, (frames * 99) / 100)];
  return cell;
}

std::string json_cell(const CellResult& c) {
  std::string out = "    {";
  out += "\"transport\": \"" + c.transport + "\", ";
  out += "\"size_bytes\": " + std::to_string(c.size_bytes) + ", ";
  out += "\"path\": \"" + c.path + "\", ";
  out += "\"frames\": " + std::to_string(c.frames) + ", ";
  out += "\"throughput_mb_s\": " + std::to_string(c.throughput_mb_s) + ", ";
  out += "\"allocs_per_frame\": " + std::to_string(c.allocs_per_frame) + ", ";
  out += "\"p99_latency_us\": " + std::to_string(c.p99_latency_us);
  out += "}";
  return out;
}

const CellResult& find_cell(const std::vector<CellResult>& cells,
                            const std::string& transport, std::size_t size,
                            const std::string& path) {
  for (const auto& c : cells) {
    if (c.transport == transport && c.size_bytes == size && c.path == path) {
      return c;
    }
  }
  throw common::StateError("missing sweep cell");
}

int run_json_sweep(const std::string& out_path, bool quick) {
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{1 << 12, 1 << 20}
            : std::vector<std::size_t>{1 << 12, 1 << 16, 1 << 20, 16 << 20};
  const std::size_t target_bytes =
      quick ? (std::size_t{32} << 20) : (std::size_t{256} << 20);
  const std::size_t smallest = sizes.front();

  std::vector<CellResult> cells;
  for (const auto kind :
       {TransportKind::kInProcess, TransportKind::kTcp}) {
    for (const std::size_t size : sizes) {
      const std::size_t frames =
          std::clamp<std::size_t>(target_bytes / size, 32, 4096);
      // The batching toggle only reaches the event loop, so in-process
      // cells run once; TCP cells run before/after.
      const std::vector<bool> modes = kind == TransportKind::kInProcess
                                          ? std::vector<bool>{true}
                                          : std::vector<bool>{false, true};
      for (const bool batched : modes) {
        cells.push_back(run_cell(kind, size, batched, frames));
        const auto& c = cells.back();
        std::cout << c.transport << " " << c.size_bytes << "B " << c.path
                  << ": " << c.throughput_mb_s << " MB/s, "
                  << c.allocs_per_frame << " allocs/frame, p99 "
                  << c.p99_latency_us << " us\n";
      }
    }
  }
  dm::TcpEventLoop::set_batch_publish(true);

  // Headline ratios at the smallest frame size (the numbers
  // EXPERIMENTS.md E19 cites): tiny frames are where the per-frame
  // lock + notify handoff dominated, so that cell shows the batching
  // win; large frames are loopback-bandwidth-bound either way.
  const auto& before = find_cell(cells, "tcp", smallest, "per_frame_notify");
  const auto& after = find_cell(cells, "tcp", smallest, "batched_notify");
  const double small_frame_speedup =
      after.throughput_mb_s / std::max(before.throughput_mb_s, 1e-9);
  const double small_frame_p99_improvement =
      before.p99_latency_us / std::max(after.p99_latency_us, 1e-9);
  // Regression guard: the zero-copy path must stay allocation-lean (a
  // PR reintroducing per-hop copies shows up as this figure jumping).
  double max_allocs_per_frame = 0.0;
  for (const auto& c : cells) {
    if (c.path != "per_frame_notify") {
      max_allocs_per_frame = std::max(max_allocs_per_frame,
                                      c.allocs_per_frame);
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n  \"bench\": \"datamgr\",\n";
  out << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n";
  out << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out << json_cell(cells[i]) << (i + 1 < cells.size() ? ",\n" : "\n");
  }
  out << "  ],\n";
  out << "  \"summary\": {\n";
  out << "    \"smallest_frame_bytes\": " << smallest << ",\n";
  out << "    \"tcp_small_frame_batching_speedup\": " << small_frame_speedup
      << ",\n";
  out << "    \"tcp_small_frame_p99_improvement\": "
      << small_frame_p99_improvement << ",\n";
  out << "    \"max_allocs_per_frame\": " << max_allocs_per_frame << "\n";
  out << "  }\n}\n";
  std::cout << "wrote " << out_path << " (" << smallest
            << "B tcp frames: " << small_frame_speedup
            << "x throughput, " << small_frame_p99_improvement
            << "x lower p99 with batched publication)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool quick = false;
  std::string out_path = "BENCH_datamgr.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') out_path = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    }
  }
  if (json) return run_json_sweep(out_path, quick);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
