// F7 (paper Figure 7): the Data Manager and the execution-environment
// setup protocol.
//
// Micro-benchmarks over real code paths:
//   * channel setup/ack rendezvous latency (in-process vs TCP);
//   * point-to-point throughput vs message size, per transport;
//   * message-passing library facade overhead (P4/PVM/MPI/NCS);
//   * heterogeneous data conversion (payload encode/decode) cost.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "datamgr/broker.hpp"
#include "datamgr/mplib.hpp"
#include "tasklib/payload.hpp"

namespace {

using namespace vdce;
using dm::ChannelBroker;
using dm::LinkKey;
using dm::MessageEndpoint;
using dm::MpLibrary;
using dm::TransportKind;

std::vector<std::byte> make_blob(std::size_t n) {
  common::Rng rng(1);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng() & 0xFF);
  return out;
}

void BM_ChannelSetup(benchmark::State& state) {
  const auto kind = static_cast<TransportKind>(state.range(0));
  std::uint32_t link = 0;
  for (auto _ : state) {
    ChannelBroker broker(kind);
    const LinkKey key{common::AppId(1), common::TaskId(link),
                      common::TaskId(link + 1)};
    link += 2;
    std::shared_ptr<dm::Channel> rx;
    std::jthread consumer([&] { rx = broker.open_receive(key); });
    auto tx = broker.open_send(key);
    consumer.join();
    // Complete the Figure 7 handshake with one ack round trip.
    tx->send(make_blob(8));
    benchmark::DoNotOptimize(rx->receive());
  }
  state.SetLabel(kind == TransportKind::kInProcess ? "in-process" : "tcp");
}
BENCHMARK(BM_ChannelSetup)
    ->Arg(static_cast<int>(TransportKind::kInProcess))
    ->Arg(static_cast<int>(TransportKind::kTcp));

void BM_Throughput(benchmark::State& state) {
  const auto kind = static_cast<TransportKind>(state.range(0));
  const auto size = static_cast<std::size_t>(state.range(1));
  ChannelBroker broker(kind);
  const LinkKey key{common::AppId(1), common::TaskId(0), common::TaskId(1)};
  std::shared_ptr<dm::Channel> rx;
  std::jthread consumer([&] { rx = broker.open_receive(key); });
  auto tx = broker.open_send(key);
  consumer.join();

  const auto blob = make_blob(size);
  // Echo server: receive and discard.
  std::atomic<bool> done{false};
  std::jthread drain([&] {
    try {
      while (rx->receive()) {
        if (done.load(std::memory_order_relaxed)) break;
      }
    } catch (const common::TransportError&) {
      // benchmark teardown may shut the socket mid-message
    }
  });
  for (auto _ : state) {
    tx->send(blob);
  }
  done = true;
  tx->close();
  rx->close();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
  state.SetLabel(kind == TransportKind::kInProcess ? "in-process" : "tcp");
}
BENCHMARK(BM_Throughput)
    ->Args({static_cast<int>(TransportKind::kInProcess), 1 << 10})
    ->Args({static_cast<int>(TransportKind::kInProcess), 1 << 16})
    ->Args({static_cast<int>(TransportKind::kInProcess), 1 << 20})
    ->Args({static_cast<int>(TransportKind::kTcp), 1 << 10})
    ->Args({static_cast<int>(TransportKind::kTcp), 1 << 16})
    ->Args({static_cast<int>(TransportKind::kTcp), 1 << 20});

void BM_MpLibraryEnvelope(benchmark::State& state) {
  const auto lib = static_cast<MpLibrary>(state.range(0));
  const auto size = static_cast<std::size_t>(state.range(1));
  auto pair = dm::make_inproc_pair();
  MessageEndpoint tx(lib, pair.sender);
  MessageEndpoint rx(lib, pair.receiver);
  const auto blob = make_blob(size);
  for (auto _ : state) {
    tx.send(7, blob);
    benchmark::DoNotOptimize(rx.receive());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
  state.SetLabel(dm::to_string(lib));
}
BENCHMARK(BM_MpLibraryEnvelope)
    ->Args({static_cast<int>(MpLibrary::kP4), 1 << 16})
    ->Args({static_cast<int>(MpLibrary::kPvm), 1 << 16})
    ->Args({static_cast<int>(MpLibrary::kMpi), 1 << 16})
    ->Args({static_cast<int>(MpLibrary::kNcs), 1 << 16});

void BM_DataConversionMatrix(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(5);
  const auto m = tasklib::Matrix::random(n, n, rng);
  for (auto _ : state) {
    const auto payload = tasklib::Payload::of_matrix(m);
    benchmark::DoNotOptimize(payload.as_matrix());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * 8));
}
BENCHMARK(BM_DataConversionMatrix)->Arg(16)->Arg(64)->Arg(128);

void BM_DataConversionTracks(benchmark::State& state) {
  std::vector<tasklib::Track> tracks(
      static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    tracks[i].id = static_cast<std::uint32_t>(i);
    tracks[i].x = static_cast<double>(i);
  }
  for (auto _ : state) {
    const auto payload = tasklib::Payload::of_tracks(tracks);
    benchmark::DoNotOptimize(payload.as_tracks());
  }
}
BENCHMARK(BM_DataConversionTracks)->Arg(16)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
