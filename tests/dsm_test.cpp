// Tests for the distributed shared memory model (the paper's named
// future work): caching, invalidation, locks, and concurrency.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/error.hpp"
#include "dsm/dsm.hpp"

namespace vdce::dsm {
namespace {

using tasklib::Payload;

TEST(DsmTest, WriteThenReadBack) {
  DsmServer server;
  auto node = server.attach();
  node->write("x", Payload::of_scalar(4.5));
  EXPECT_DOUBLE_EQ(node->read("x").as_scalar(), 4.5);
}

TEST(DsmTest, ReadUnknownThrows) {
  DsmServer server;
  auto node = server.attach();
  EXPECT_THROW((void)node->read("ghost"), common::NotFoundError);
}

TEST(DsmTest, CrossNodeVisibility) {
  DsmServer server;
  auto a = server.attach();
  auto b = server.attach();
  a->write("x", Payload::of_text("from a"));
  EXPECT_EQ(b->read("x").as_text(), "from a");
}

TEST(DsmTest, ReadCachesLocally) {
  DsmServer server;
  auto a = server.attach();
  auto b = server.attach();
  a->write("x", Payload::of_scalar(1.0));
  (void)b->read("x");
  EXPECT_TRUE(b->cached("x"));
  (void)b->read("x");
  EXPECT_EQ(b->stats().cache_hits, 1u);
}

TEST(DsmTest, WriteInvalidatesOtherCaches) {
  DsmServer server;
  auto a = server.attach();
  auto b = server.attach();
  a->write("x", Payload::of_scalar(1.0));
  (void)b->read("x");  // b caches
  a->write("x", Payload::of_scalar(2.0));
  // b's next operation applies the invalidation and refetches.
  EXPECT_DOUBLE_EQ(b->read("x").as_scalar(), 2.0);
  EXPECT_GE(b->stats().invalidations_applied, 1u);
}

TEST(DsmTest, WriterKeepsOwnCopyValid) {
  DsmServer server;
  auto a = server.attach();
  a->write("x", Payload::of_scalar(1.0));
  (void)a->read("x");
  EXPECT_EQ(a->stats().cache_hits, 1u);  // own write stays cached
}

TEST(DsmTest, VariablesAreIndependent) {
  DsmServer server;
  auto a = server.attach();
  auto b = server.attach();
  a->write("x", Payload::of_scalar(1.0));
  a->write("y", Payload::of_scalar(2.0));
  (void)b->read("x");
  (void)b->read("y");
  a->write("x", Payload::of_scalar(9.0));
  // Only x was invalidated at b.
  (void)b->read("y");
  EXPECT_EQ(b->stats().cache_hits, 1u);
}

TEST(DsmTest, LockMutualExclusion) {
  DsmServer server;
  auto a = server.attach();
  auto b = server.attach();
  a->write("counter", Payload::of_scalar(0.0));

  constexpr int kIncrementsPerNode = 50;
  const auto worker = [&](DsmNode& node) {
    for (int i = 0; i < kIncrementsPerNode; ++i) {
      node.acquire("L");
      const double v = node.read("counter").as_scalar();
      node.write("counter", Payload::of_scalar(v + 1.0));
      node.release("L");
    }
  };
  {
    std::jthread ta([&] { worker(*a); });
    std::jthread tb([&] { worker(*b); });
  }
  EXPECT_DOUBLE_EQ(a->read("counter").as_scalar(),
                   2.0 * kIncrementsPerNode);
}

TEST(DsmTest, ReleaseWithoutHoldThrows) {
  DsmServer server;
  auto a = server.attach();
  auto b = server.attach();
  EXPECT_THROW(a->release("L"), common::StateError);
  a->acquire("L");
  EXPECT_THROW(b->release("L"), common::StateError);
  a->release("L");
}

TEST(DsmTest, LockGrantedFifo) {
  DsmServer server;
  auto a = server.attach();
  auto b = server.attach();
  auto c = server.attach();
  a->acquire("L");

  std::vector<int> order;
  std::mutex order_mu;
  std::jthread tb([&] {
    b->acquire("L");
    {
      std::lock_guard lk(order_mu);
      order.push_back(2);
    }
    b->release("L");
  });
  // Ensure b queues before c.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::jthread tc([&] {
    c->acquire("L");
    {
      std::lock_guard lk(order_mu);
      order.push_back(3);
    }
    c->release("L");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  a->release("L");
  tb.join();
  tc.join();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 3);
}

TEST(DsmTest, AcquireSeesPreReleaseWrites) {
  // Release consistency: a reader that acquires after the writer's
  // release must see the write even if it had a stale cached copy.
  DsmServer server;
  auto writer = server.attach();
  auto reader = server.attach();
  writer->write("data", Payload::of_scalar(1.0));
  (void)reader->read("data");  // stale copy cached

  writer->acquire("L");
  writer->write("data", Payload::of_scalar(42.0));
  writer->release("L");

  reader->acquire("L");
  EXPECT_DOUBLE_EQ(reader->read("data").as_scalar(), 42.0);
  reader->release("L");
}

TEST(DsmTest, ManyNodesSharedVector) {
  DsmServer server;
  constexpr int kNodes = 6;
  std::vector<std::unique_ptr<DsmNode>> nodes;
  for (int i = 0; i < kNodes; ++i) nodes.push_back(server.attach());

  nodes[0]->write("v", Payload::of_vector(std::vector<double>(kNodes, 0.0)));
  {
    std::vector<std::jthread> threads;
    for (int i = 0; i < kNodes; ++i) {
      threads.emplace_back([&, i] {
        nodes[i]->acquire("L");
        auto v = nodes[i]->read("v").as_vector();
        v[i] = i + 1.0;
        nodes[i]->write("v", Payload::of_vector(v));
        nodes[i]->release("L");
      });
    }
  }
  const auto v = nodes[0]->read("v").as_vector();
  for (int i = 0; i < kNodes; ++i) EXPECT_DOUBLE_EQ(v[i], i + 1.0);
}

TEST(DsmTest, ServerStatsCount) {
  DsmServer server;
  auto a = server.attach();
  auto b = server.attach();
  a->write("x", Payload::of_scalar(1.0));
  (void)b->read("x");
  a->write("x", Payload::of_scalar(2.0));
  const auto stats = server.stats();
  EXPECT_GE(stats.requests, 3u);
  EXPECT_GE(stats.invalidations_sent, 1u);
}

TEST(DsmTest, StopUnblocksAndRejects) {
  DsmServer server;
  auto a = server.attach();
  a->write("x", Payload::of_scalar(1.0));
  server.stop();
  EXPECT_THROW(a->write("y", Payload::of_scalar(2.0)),
               common::StateError);
}

}  // namespace
}  // namespace vdce::dsm
