// Tests for the common::trace recorder and common::metrics registry
// (design decision D10): sharded concurrent recording, Chrome
// trace-event JSON export, the inert disabled mode, and the engine's
// per-attempt span instrumentation end to end.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "runtime/engine.hpp"
#include "scheduler/allocation.hpp"
#include "tasklib/registry.hpp"

namespace vdce::common {
namespace {

using rt::EngineConfig;
using rt::ExecutionEngine;
using rt::FaultTolerance;

// ------------------------------------------------------ TraceRecorder

TEST(TraceRecorderTest, InertWhenNoRecorderInstalled) {
  ASSERT_EQ(TraceRecorder::current(), nullptr);
  EXPECT_FALSE(trace_enabled());
  ScopedSpan span("orphan", "test");
  EXPECT_FALSE(span.active());
  span.arg("ignored", 1);       // all no-ops
  span.rename("still-orphan");
  trace_instant("orphan", "test", {{"k", "v"}});
}

#ifndef VDCE_TRACE_DISABLED

TEST(TraceRecorderTest, RecordsSpansAndInstants) {
  TraceRecorder recorder;
  TraceRecorder::install(&recorder);
  EXPECT_TRUE(trace_enabled());

  {
    ScopedSpan span("outer", "test");
    ASSERT_TRUE(span.active());
    span.arg("string", "value");
    span.arg("number", 42);
    trace_instant("marker", "test", {{"k", "v"}});
  }
  TraceRecorder::install(nullptr);

  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 2u);
  // snapshot() is sorted by timestamp: the instant fired inside the
  // span, whose ts is its *start*, so the span sorts first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].phase, 'X');
  ASSERT_EQ(events[0].args.size(), 2u);
  EXPECT_EQ(events[0].args[0].first, "string");
  EXPECT_EQ(events[0].args[1].second, "42");
  EXPECT_EQ(events[1].name, "marker");
  EXPECT_EQ(events[1].phase, 'i');
}

TEST(TraceRecorderTest, RenameOverridesSpanName) {
  TraceRecorder recorder;
  TraceRecorder::install(&recorder);
  {
    ScopedSpan span("generic", "test");
    span.rename("specific:label");
  }
  TraceRecorder::install(nullptr);
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "specific:label");
}

TEST(TraceRecorderTest, ConcurrentShardedWritersLoseNothing) {
  // TSan coverage of the sharded write path: many threads record spans
  // and instants at once; every event must land exactly once.
  TraceRecorder recorder;
  TraceRecorder::install(&recorder);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  {
    std::vector<std::jthread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([t] {
        for (int i = 0; i < kPerThread; ++i) {
          if (i % 2 == 0) {
            ScopedSpan span("work", "test");
            span.arg("thread", t);
          } else {
            trace_instant("tick", "test");
          }
        }
      });
    }
  }
  TraceRecorder::install(nullptr);

  EXPECT_EQ(recorder.event_count(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  // The merged snapshot is globally sorted by timestamp.
  const auto events = recorder.snapshot();
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  }
}

TEST(TraceRecorderTest, ChromeJsonIsWellFormed) {
  TraceRecorder recorder;
  TraceRecorder::install(&recorder);
  {
    ScopedSpan span("na\"me\n", "cat");
    span.arg("key", "va\\lue");
  }
  trace_instant("instant", "cat");
  TraceRecorder::install(nullptr);

  std::ostringstream out;
  recorder.write_chrome_json(out);
  const std::string json = out.str();

  // Structure: one traceEvents array, balanced braces/brackets, all
  // special characters escaped (no raw quote or newline inside a
  // string).
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\\\""), std::string::npos);  // escaped quote
  EXPECT_NE(json.find("\\n"), std::string::npos);   // escaped newline
  EXPECT_NE(json.find("\\\\"), std::string::npos);  // escaped backslash
  EXPECT_EQ(json.find('\n'), std::string::npos);    // no raw newline
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      in_string = !in_string;
    } else if (!in_string && (c == '{' || c == '[')) {
      ++depth;
    } else if (!in_string && (c == '}' || c == ']')) {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  // The instant carries the thread-scope marker.
  EXPECT_NE(json.find("\"ph\":\"i\",\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
}

TEST(TraceRecorderTest, TextSummaryAggregatesPerCategoryAndName) {
  TraceRecorder recorder;
  TraceRecorder::install(&recorder);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span("step", "phase1");
    span.arg("i", i);
  }
  trace_instant("blip", "phase2");
  TraceRecorder::install(nullptr);

  const std::string summary = recorder.text_summary();
  EXPECT_NE(summary.find("11 events"), std::string::npos);
  EXPECT_NE(summary.find("phase1,step,10,0"), std::string::npos);
  EXPECT_NE(summary.find("phase2,blip,0,1"), std::string::npos);
}

TEST(TraceRecorderTest, DestructorUninstallsItself) {
  {
    TraceRecorder recorder;
    TraceRecorder::install(&recorder);
    EXPECT_TRUE(trace_enabled());
  }
  // A recorder destroyed while installed must not leave a dangling
  // global behind.
  EXPECT_FALSE(trace_enabled());
}

// ------------------------------------------------------- TraceSession

TEST(TraceSessionTest, WritesJsonFileOnDestruction) {
  const std::string path = ::testing::TempDir() + "trace_session_test.json";
  std::remove(path.c_str());
  {
    TraceSession session(path);
    EXPECT_TRUE(session.active());
    ScopedSpan span("session_span", "test");
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "trace file not written: " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("session_span"), std::string::npos);
  std::remove(path.c_str());
}

#endif  // !VDCE_TRACE_DISABLED

TEST(TraceSessionTest, InertWithoutPathOrEnvVar) {
  ASSERT_EQ(::unsetenv("VDCE_TRACE"), 0);
  TraceSession session;
  EXPECT_FALSE(session.active());
  EXPECT_FALSE(trace_enabled());
}

#ifdef VDCE_TRACE_DISABLED
// The disabled-mode guarantee is compile-time: the whole API must be
// stateless (the header static_asserts is_empty on the no-op types) and
// a TraceSession must stay inert even when given a path.
TEST(TraceSessionTest, DisabledBuildIgnoresPath) {
  TraceSession session("/tmp/never_written.json");
  EXPECT_FALSE(session.active());
  EXPECT_FALSE(trace_enabled());
}
#endif

// ------------------------------------------------------------ metrics

TEST(MetricsTest, CounterGaugeBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(MetricsTest, HistogramSnapshotMatchesObservations) {
  Histogram h;
  EXPECT_EQ(h.snapshot().count, 0u);
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.mean, 50.5);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  EXPECT_DOUBLE_EQ(snap.p50, 50.0);
  EXPECT_DOUBLE_EQ(snap.p95, 95.0);
  h.reset();
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST(MetricsTest, RegistryReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.counter("test.counter");
  Counter& b = registry.counter("test.counter");
  EXPECT_EQ(&a, &b);
  a.add(7);
  // Force rebalancing pressure: more instruments must not move `a`.
  for (int i = 0; i < 100; ++i) {
    registry.counter("test.other" + std::to_string(i));
  }
  EXPECT_EQ(registry.counter("test.counter").value(), 7u);

  registry.gauge("test.gauge").set(1.0);
  registry.histogram("test.hist").observe(3.0);
  const std::string summary = registry.text_summary();
  EXPECT_NE(summary.find("test.counter"), std::string::npos);
  EXPECT_NE(summary.find("test.gauge"), std::string::npos);
  EXPECT_NE(summary.find("test.hist"), std::string::npos);

  registry.reset();
  EXPECT_EQ(a.value(), 0u);  // reference survived the reset
}

TEST(MetricsTest, ConcurrentCountersAreExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  {
    std::vector<std::jthread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&registry] {
        Counter& c = registry.counter("concurrent.hits");
        for (int i = 0; i < kPerThread; ++i) c.add();
      });
    }
  }
  EXPECT_EQ(registry.counter("concurrent.hits").value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ------------------------------------- engine spans (the end-to-end)

#ifndef VDCE_TRACE_DISABLED
TEST(EngineTraceTest, EveryAttemptBecomesADistinctSpan) {
  // A flaky task that fails once: with tracing on, the run must emit
  // one engine.task span per executed task, and the retried task's
  // attempts must appear as *distinct* spans (the gang attempt that
  // errored plus the recovery attempt), with the retry backoff visible
  // as an instant event.
  static std::atomic<int> calls{0};
  calls = 0;

  tasklib::TaskRegistry registry;
  tasklib::register_builtin_tasks(registry);
  tasklib::LibraryEntry flaky;
  flaky.name = "flaky_source";
  flaky.menu = "synthetic";
  flaky.description = "fails on the first call, succeeds after";
  flaky.min_inputs = 0;
  flaky.max_inputs = 0;
  flaky.fn = [](const std::vector<tasklib::Payload>&,
                const tasklib::TaskContext&) {
    if (calls.fetch_add(1) == 0) {
      throw StateError("transient fault");
    }
    return tasklib::Payload::of_scalar(42.0);
  };
  registry.add(std::move(flaky));

  afg::FlowGraph g("flaky-traced");
  const auto src = g.add_task("flaky_source", "flaky");
  const auto sink = g.add_task("synth_sink", "sink");
  g.add_link(src, sink, 0.1);

  sched::AllocationTable allocation("flaky-traced");
  for (const auto& [task, host] :
       {std::pair{src, HostId(0)}, std::pair{sink, HostId(1)}}) {
    sched::AllocationEntry entry;
    entry.task = task;
    entry.task_label = g.task(task).label;
    entry.library_task = g.task(task).library_task;
    entry.hosts = {host};
    entry.site = SiteId(0);
    allocation.add(entry);
  }

  FaultTolerance ft;
  ft.reschedule = [](const afg::TaskNode&, const std::vector<HostId>&)
      -> std::optional<sched::AllocationEntry> { return std::nullopt; };
  // Virtual sleep: record the naps instead of stalling the gang.
  std::atomic<int> virtual_naps{0};
  ft.sleep = [&virtual_naps](double) { ++virtual_naps; };

  TraceRecorder recorder;
  TraceRecorder::install(&recorder);
  EngineConfig config;
  config.retry_backoff_s = 0.001;
  config.attempt_timeout_s = 20.0;
  config.recv_timeout_s = 20.0;
  ExecutionEngine engine(registry, config);
  const auto result = engine.execute(g, allocation, nullptr, nullptr, &ft);
  TraceRecorder::install(nullptr);

  EXPECT_EQ(result.failures_recovered, 2u);
  EXPECT_GT(virtual_naps.load(), 0);

  std::size_t flaky_attempts = 0;
  std::size_t sink_attempts = 0;
  std::size_t backoff_instants = 0;
  bool saw_app_span = false;
  for (const auto& ev : recorder.snapshot()) {
    if (ev.category == "engine.task" && ev.name == "task:flaky") {
      ++flaky_attempts;
      EXPECT_EQ(ev.phase, 'X');
    }
    if (ev.category == "engine.task" && ev.name == "task:sink") {
      ++sink_attempts;
    }
    if (ev.name == "retry_backoff") ++backoff_instants;
    if (ev.name == "app:flaky-traced") saw_app_span = true;
  }
  // >= 1 span per executed task; the retried tasks carry one span per
  // attempt (gang + recovery).
  EXPECT_GE(flaky_attempts, 2u);
  EXPECT_GE(sink_attempts, 2u);
  EXPECT_GT(backoff_instants, 0u);
  EXPECT_TRUE(saw_app_span);

  // The same run also moved the global engine counters.
  auto& metrics = MetricsRegistry::global();
  EXPECT_GE(metrics.counter("engine.tasks_completed").value(), 2u);
  EXPECT_GE(metrics.counter("engine.retries").value(), 2u);
}
#endif  // !VDCE_TRACE_DISABLED

TEST(EngineTraceTest, BackoffIsCappedCumulatively) {
  // With a tiny cumulative cap, the total virtually slept time across
  // all retries must never exceed max_total_backoff_s, however large
  // the per-round schedule grows.
  static std::atomic<int> calls{0};
  calls = 0;

  tasklib::TaskRegistry registry;
  tasklib::register_builtin_tasks(registry);
  tasklib::LibraryEntry flaky;
  flaky.name = "very_flaky";
  flaky.menu = "synthetic";
  flaky.description = "fails three times, succeeds after";
  flaky.min_inputs = 0;
  flaky.max_inputs = 0;
  flaky.fn = [](const std::vector<tasklib::Payload>&,
                const tasklib::TaskContext&) {
    if (calls.fetch_add(1) < 3) {
      throw StateError("transient fault");
    }
    return tasklib::Payload::of_scalar(1.0);
  };
  registry.add(std::move(flaky));

  afg::FlowGraph g("capped");
  const auto src = g.add_task("very_flaky", "flaky");

  sched::AllocationTable allocation("capped");
  sched::AllocationEntry entry;
  entry.task = src;
  entry.task_label = "flaky";
  entry.library_task = "very_flaky";
  entry.hosts = {HostId(0)};
  entry.site = SiteId(0);
  allocation.add(entry);

  FaultTolerance ft;
  ft.reschedule = [](const afg::TaskNode&, const std::vector<HostId>&)
      -> std::optional<sched::AllocationEntry> { return std::nullopt; };
  double total_slept = 0.0;
  ft.sleep = [&total_slept](double s) { total_slept += s; };

  EngineConfig config;
  config.max_attempts = 5;
  config.retry_backoff_s = 10.0;  // would sleep 10+20+40s uncapped
  config.max_total_backoff_s = 0.05;
  config.attempt_timeout_s = 20.0;
  config.recv_timeout_s = 20.0;
  ExecutionEngine engine(registry, config);
  const auto result = engine.execute(g, allocation, nullptr, nullptr, &ft);

  EXPECT_EQ(result.records.at(0).attempts, 4);
  EXPECT_LE(total_slept, config.max_total_backoff_s + 1e-12);
  EXPECT_GT(total_slept, 0.0);
}

}  // namespace
}  // namespace vdce::common
