// Unit tests for vdce_common: ids, clocks, rng, serialization,
// statistics, queues, string helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/ids.hpp"
#include "common/queue.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"

namespace vdce::common {
namespace {

// ---------------------------------------------------------------- ids

TEST(Ids, DistinctTypesAreDistinct) {
  static_assert(!std::is_same_v<HostId, SiteId>);
  static_assert(!std::is_same_v<TaskId, AppId>);
}

TEST(Ids, DefaultIsInvalid) {
  HostId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, HostId::invalid());
}

TEST(Ids, ValueRoundTrip) {
  HostId id(42);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
}

TEST(Ids, Ordering) {
  EXPECT_LT(TaskId(1), TaskId(2));
  EXPECT_EQ(TaskId(7), TaskId(7));
  EXPECT_NE(TaskId(7), TaskId(8));
}

TEST(Ids, Hashable) {
  std::set<HostId> s{HostId(1), HostId(2)};
  EXPECT_EQ(s.size(), 2u);
  std::unordered_map<TaskId, int> m;
  m[TaskId(3)] = 9;
  EXPECT_EQ(m.at(TaskId(3)), 9);
}

// ---------------------------------------------------------------- clock

TEST(SteadyClockTest, Monotone) {
  SteadyClock clock;
  const TimePoint a = clock.now();
  const TimePoint b = clock.now();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(VirtualClockTest, StartsAtGivenTime) {
  VirtualClock clock(5.0);
  EXPECT_DOUBLE_EQ(clock.now(), 5.0);
}

TEST(VirtualClockTest, Advance) {
  VirtualClock clock;
  clock.advance(2.5);
  EXPECT_DOUBLE_EQ(clock.now(), 2.5);
  clock.advance_to(10.0);
  EXPECT_DOUBLE_EQ(clock.now(), 10.0);
}

TEST(VirtualClockTest, RejectsBackwardMotion) {
  VirtualClock clock(5.0);
  EXPECT_THROW(clock.advance(-1.0), StateError);
  EXPECT_THROW(clock.advance_to(4.0), StateError);
}

// ---------------------------------------------------------------- rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 5.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues reached
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.exponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.03);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(19);
  int hits = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.03);
}

TEST(RngTest, ReseedResets) {
  Rng rng(23);
  const auto first = rng();
  rng.reseed(23);
  EXPECT_EQ(rng(), first);
}

// ---------------------------------------------------------------- wire

TEST(WireTest, ScalarRoundTrip) {
  WireWriter w;
  w.write_u8(0xAB);
  w.write_u16(0x1234);
  w.write_u32(0xDEADBEEF);
  w.write_u64(0x0123456789ABCDEFull);
  w.write_i64(-42);
  w.write_f64(3.14159);

  WireReader r(w.bytes());
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u16(), 0x1234);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_DOUBLE_EQ(r.read_f64(), 3.14159);
  EXPECT_TRUE(r.done());
}

TEST(WireTest, BigEndianOnTheWire) {
  WireWriter w;
  w.write_u32(0x01020304);
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(static_cast<int>(b[0]), 1);
  EXPECT_EQ(static_cast<int>(b[1]), 2);
  EXPECT_EQ(static_cast<int>(b[2]), 3);
  EXPECT_EQ(static_cast<int>(b[3]), 4);
}

TEST(WireTest, StringRoundTrip) {
  WireWriter w;
  w.write_string("hello vdce");
  w.write_string("");
  WireReader r(w.bytes());
  EXPECT_EQ(r.read_string(), "hello vdce");
  EXPECT_EQ(r.read_string(), "");
}

TEST(WireTest, VectorRoundTrip) {
  WireWriter w;
  w.write_f64_vector(std::vector<double>{1.5, -2.5, 0.0});
  WireReader r(w.bytes());
  const auto v = r.read_f64_vector();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 1.5);
  EXPECT_DOUBLE_EQ(v[1], -2.5);
  EXPECT_DOUBLE_EQ(v[2], 0.0);
}

TEST(WireTest, SpecialFloats) {
  WireWriter w;
  w.write_f64(std::numeric_limits<double>::infinity());
  w.write_f64(-0.0);
  WireReader r(w.bytes());
  EXPECT_TRUE(std::isinf(r.read_f64()));
  EXPECT_EQ(std::signbit(r.read_f64()), true);
}

TEST(WireTest, TruncatedInputThrows) {
  WireWriter w;
  w.write_u32(7);
  WireReader r(w.bytes());
  EXPECT_EQ(r.read_u16(), 0u);
  EXPECT_THROW((void)r.read_u32(), ParseError);
}

TEST(WireTest, TruncatedStringThrows) {
  WireWriter w;
  w.write_u32(100);  // claims 100 bytes, provides none
  WireReader r(w.bytes());
  EXPECT_THROW((void)r.read_string(), ParseError);
}

TEST(WireTest, BytesRoundTrip) {
  WireWriter w;
  std::vector<std::byte> data{std::byte{1}, std::byte{2}, std::byte{3}};
  w.write_bytes(data);
  WireReader r(w.bytes());
  EXPECT_EQ(r.read_bytes(), data);
}

// ---------------------------------------------------------------- stats

TEST(RunningStatsTest, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownValues) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SlidingWindowTest, EvictsOldest) {
  SlidingWindowStats w(3);
  w.add(1.0);
  w.add(2.0);
  w.add(3.0);
  w.add(10.0);  // evicts 1.0
  EXPECT_EQ(w.count(), 3u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.last(), 10.0);
}

TEST(SlidingWindowTest, ConfidenceGrowsWithSpread) {
  SlidingWindowStats tight(8), wide(8);
  for (int i = 0; i < 8; ++i) {
    tight.add(5.0 + 0.01 * i);
    wide.add(5.0 + 2.0 * i);
  }
  EXPECT_LT(tight.confidence_halfwidth(), wide.confidence_halfwidth());
}

TEST(SlidingWindowTest, SingleSampleHasZeroCi) {
  SlidingWindowStats w(4);
  w.add(3.0);
  EXPECT_DOUBLE_EQ(w.confidence_halfwidth(), 0.0);
}

TEST(SlidingWindowTest, RejectsZeroCapacity) {
  EXPECT_THROW(SlidingWindowStats w(0), StateError);
}

TEST(ForecastTest, LastSample) {
  SlidingWindowStats w(4);
  w.add(1.0);
  w.add(9.0);
  EXPECT_DOUBLE_EQ(forecast(w, ForecastMethod::kLastSample), 9.0);
}

TEST(ForecastTest, WindowMean) {
  SlidingWindowStats w(4);
  w.add(1.0);
  w.add(9.0);
  EXPECT_DOUBLE_EQ(forecast(w, ForecastMethod::kWindowMean), 5.0);
}

TEST(ForecastTest, ExponentialSmoothing) {
  SlidingWindowStats w(4);
  w.add(0.0);
  w.add(10.0);
  // s = 0.5*10 + 0.5*0 = 5
  EXPECT_DOUBLE_EQ(
      forecast(w, ForecastMethod::kExponentialSmoothing, 0.5), 5.0);
}

TEST(ForecastTest, EmptyWindowIsZero) {
  SlidingWindowStats w(4);
  EXPECT_DOUBLE_EQ(forecast(w, ForecastMethod::kWindowMean), 0.0);
}

TEST(PercentileTest, NearestRank) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 10), 1.0);
}

TEST(PercentileTest, RejectsEmpty) {
  EXPECT_THROW((void)percentile({}, 50), StateError);
}

TEST(PercentileTest, RejectsOutOfRangeAndNanPct) {
  const std::vector<double> v{1, 2, 3};
  EXPECT_THROW((void)percentile(v, -1.0), StateError);
  EXPECT_THROW((void)percentile(v, 100.5), StateError);
  EXPECT_THROW((void)percentile(v, std::nan("")), StateError);
}

TEST(PercentileTest, SingleSampleIsEveryPercentile) {
  const std::vector<double> v{7.5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 7.5);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 7.5);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 7.5);
}

TEST(RunningStatsTest, VarianceGuardsSmallN) {
  // n < 2 has no sample variance (the n-1 denominator): both must be
  // exactly 0, never NaN or a division artefact.
  RunningStats s;
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, VarianceNeverNegativeUnderRoundoff) {
  // Regression: Welford's m2 can drift fractionally below zero for
  // near-identical large-magnitude samples; an unguarded variance would
  // then make stddev() NaN.
  RunningStats s;
  for (int i = 0; i < 1000; ++i) {
    s.add(1e15 + static_cast<double>(i % 2));
  }
  EXPECT_GE(s.variance(), 0.0);
  EXPECT_FALSE(std::isnan(s.stddev()));

  RunningStats identical;
  for (int i = 0; i < 100; ++i) identical.add(0.1 + 0.2);
  EXPECT_GE(identical.variance(), 0.0);
  EXPECT_FALSE(std::isnan(identical.stddev()));
}

TEST(SlidingWindowTest, VarianceGuardsSmallNAndRoundoff) {
  SlidingWindowStats w(8);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.stddev(), 0.0);
  w.add(5.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);  // single sample: no n-1 division
  EXPECT_DOUBLE_EQ(w.stddev(), 0.0);
  for (int i = 0; i < 8; ++i) w.add(1e15 + 0.5);
  EXPECT_GE(w.variance(), 0.0);
  EXPECT_FALSE(std::isnan(w.stddev()));
}

// ---------------------------------------------------------------- queue

TEST(QueueTest, FifoOrder) {
  MessageQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(QueueTest, CloseDrainsThenNullopt) {
  MessageQueue<int> q;
  q.push(1);
  q.close();
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(QueueTest, PushAfterCloseRejected) {
  MessageQueue<int> q;
  q.close();
  EXPECT_FALSE(q.push(1));
  EXPECT_EQ(q.size(), 0u);
}

TEST(QueueTest, TryPopNonBlocking) {
  MessageQueue<int> q;
  EXPECT_EQ(q.try_pop(), std::nullopt);
  q.push(5);
  EXPECT_EQ(q.try_pop(), 5);
}

TEST(QueueTest, PopForTimesOut) {
  MessageQueue<int> q;
  const auto result = q.pop_for(std::chrono::milliseconds(10));
  EXPECT_EQ(result, std::nullopt);
}

TEST(QueueTest, CrossThreadDelivery) {
  MessageQueue<int> q;
  std::jthread producer([&q] {
    for (int i = 0; i < 100; ++i) q.push(i);
    q.close();
  });
  int count = 0;
  while (auto v = q.pop()) {
    EXPECT_EQ(*v, count);
    ++count;
  }
  EXPECT_EQ(count, 100);
}

TEST(QueueTest, CloseWakesBlockedConsumer) {
  MessageQueue<int> q;
  std::jthread closer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
  });
  EXPECT_EQ(q.pop(), std::nullopt);  // returns instead of hanging
}

// ---------------------------------------------------------------- strings

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t x \n"), "x");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto f = split("a,,b", ',');
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "");
  EXPECT_EQ(f[2], "b");
}

TEST(StringsTest, SplitWsDropsEmpty) {
  const auto f = split_ws("  a  b\tc \n");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(starts_with("file:abc", "file:"));
  EXPECT_FALSE(starts_with("fil", "file:"));
}

TEST(StringsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("3.5", "test"), 3.5);
  EXPECT_DOUBLE_EQ(parse_double(" -2 ", "test"), -2.0);
  EXPECT_THROW((void)parse_double("abc", "test"), ParseError);
  EXPECT_THROW((void)parse_double("1.5x", "test"), ParseError);
  EXPECT_THROW((void)parse_double("", "test"), ParseError);
}

TEST(StringsTest, ParseUint) {
  EXPECT_EQ(parse_uint("42", "test"), 42ul);
  EXPECT_THROW((void)parse_uint("-1", "test"), ParseError);
  EXPECT_THROW((void)parse_uint("4.2", "test"), ParseError);
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

}  // namespace
}  // namespace vdce::common
