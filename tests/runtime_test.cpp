// Tests for the VDCE Runtime System: Monitor daemons, Group Managers
// (CI filtering, failure detection), Site Managers, the Control Manager
// wiring, the Site-Manager-backed scheduling directory, and the
// real-threaded execution engine.
#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "netsim/testbed.hpp"
#include "runtime/control_manager.hpp"
#include "runtime/engine.hpp"
#include "runtime/sm_directory.hpp"
#include "scheduler/site_scheduler.hpp"
#include "sim/workloads.hpp"
#include "tasklib/registry.hpp"

namespace vdce::rt {
namespace {

using common::HostId;
using common::SiteId;

/// One fully wired site over the campus testbed.
class RuntimeEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    testbed_ = std::make_unique<netsim::VirtualTestbed>(
        netsim::make_campus_testbed(13));
    for (const SiteId site : testbed_->sites()) {
      auto repository = std::make_unique<repo::SiteRepository>(site);
      tasklib::builtin_registry().install_defaults(repository->tasks());
      testbed_->populate_repository(*repository, site);
      auto forecaster = std::make_unique<predict::LoadForecaster>();
      auto manager =
          std::make_unique<SiteManager>(site, *repository, *forecaster);
      auto control =
          std::make_unique<ControlManager>(*testbed_, site, *manager);
      directory_.add_site(*manager);
      repositories_.push_back(std::move(repository));
      forecasters_.push_back(std::move(forecaster));
      managers_.push_back(std::move(manager));
      controls_.push_back(std::move(control));
    }
  }

  void warm_up(double until) {
    for (double t = 1.0; t <= until; t += 1.0) {
      for (auto& c : controls_) c->tick(t);
    }
  }

  std::unique_ptr<netsim::VirtualTestbed> testbed_;
  std::vector<std::unique_ptr<repo::SiteRepository>> repositories_;
  std::vector<std::unique_ptr<predict::LoadForecaster>> forecasters_;
  std::vector<std::unique_ptr<SiteManager>> managers_;
  std::vector<std::unique_ptr<ControlManager>> controls_;
  SiteManagerDirectory directory_;
};

// -------------------------------------------------------------- monitor

TEST(MonitorTest, FiresOnPeriod) {
  netsim::VirtualTestbed testbed(netsim::make_campus_testbed(1));
  Monitor monitor(testbed, testbed.all_hosts().front(), 2.0);
  EXPECT_TRUE(monitor.tick(0.0).has_value());   // due immediately
  EXPECT_FALSE(monitor.tick(1.0).has_value());  // not due
  EXPECT_TRUE(monitor.tick(2.0).has_value());
  EXPECT_EQ(monitor.measurements_taken(), 2u);
}

TEST(MonitorTest, GapYieldsOneReport) {
  netsim::VirtualTestbed testbed(netsim::make_campus_testbed(1));
  Monitor monitor(testbed, testbed.all_hosts().front(), 1.0);
  (void)monitor.tick(0.0);
  EXPECT_TRUE(monitor.tick(50.0).has_value());
  EXPECT_EQ(monitor.measurements_taken(), 2u);  // no burst of 50
}

TEST(MonitorTest, DeadHostProducesNothing) {
  netsim::VirtualTestbed testbed(netsim::make_campus_testbed(1));
  const auto host = testbed.all_hosts().front();
  testbed.fail_host(host, 5.0, 10.0);
  Monitor monitor(testbed, host, 1.0);
  EXPECT_TRUE(monitor.tick(1.0).has_value());
  EXPECT_FALSE(monitor.tick(6.0).has_value());
  EXPECT_TRUE(monitor.tick(20.0).has_value());
}

TEST(MonitorTest, RejectsBadPeriod) {
  netsim::VirtualTestbed testbed(netsim::make_campus_testbed(1));
  EXPECT_THROW(Monitor(testbed, testbed.all_hosts().front(), 0.0),
               common::StateError);
}

TEST(MonitorTest, ExactDueBoundaryFires) {
  // Boundary semantics: the very first tick (next_due_ == 0.0) fires
  // immediately, and a tick landing *exactly* on the due time fires --
  // the due check is inclusive, not strict.
  netsim::VirtualTestbed testbed(netsim::make_campus_testbed(1));
  Monitor monitor(testbed, testbed.all_hosts().front(), 1.5);
  EXPECT_TRUE(monitor.tick(0.0).has_value());   // t == next_due_ == 0.0
  EXPECT_FALSE(monitor.tick(1.4).has_value());
  EXPECT_TRUE(monitor.tick(1.5).has_value());   // exactly due
  EXPECT_FALSE(monitor.tick(2.9).has_value());
  EXPECT_TRUE(monitor.tick(3.0).has_value());
  EXPECT_EQ(monitor.measurements_taken(), 3u);
}

TEST(MonitorTest, DieAndReviveInsideFaultWindowResumesCleanly) {
  // A host that dies and revives between reports: every tick inside the
  // fault window yields nothing (but still advances the schedule), and
  // the first tick after revival yields exactly one report -- no burst
  // of catch-up reports for the missed periods.
  netsim::VirtualTestbed testbed(netsim::make_campus_testbed(1));
  const auto host = testbed.all_hosts().front();
  testbed.fail_host(host, /*start=*/2.5, /*length=*/3.0);  // dead [2.5, 5.5)
  Monitor monitor(testbed, host, 1.0);
  EXPECT_TRUE(monitor.tick(1.0).has_value());
  EXPECT_TRUE(monitor.tick(2.0).has_value());
  EXPECT_FALSE(monitor.tick(3.0).has_value());  // dead
  EXPECT_FALSE(monitor.tick(4.0).has_value());  // dead
  EXPECT_FALSE(monitor.tick(5.0).has_value());  // dead
  EXPECT_TRUE(monitor.tick(6.0).has_value());   // revived: one report
  EXPECT_FALSE(monitor.tick(6.5).has_value());  // not a catch-up burst
  EXPECT_EQ(monitor.measurements_taken(), 3u);
}

// -------------------------------------------------------- group manager

TEST(GroupManagerTest, CiFilterReducesForwarding) {
  netsim::VirtualTestbed testbed_a(netsim::make_campus_testbed(3));
  netsim::VirtualTestbed testbed_b(netsim::make_campus_testbed(3));

  GroupManagerConfig filtered;
  filtered.ci_filter = true;
  GroupManagerConfig unfiltered;
  unfiltered.ci_filter = false;

  GroupManager gm_filtered(testbed_a, common::GroupId(0), 1.0, filtered);
  GroupManager gm_unfiltered(testbed_b, common::GroupId(0), 1.0, unfiltered);

  for (double t = 1.0; t <= 200.0; t += 1.0) {
    (void)gm_filtered.tick(t);
    (void)gm_unfiltered.tick(t);
  }
  EXPECT_EQ(gm_filtered.stats().reports_received,
            gm_unfiltered.stats().reports_received);
  EXPECT_LT(gm_filtered.stats().updates_forwarded,
            gm_unfiltered.stats().updates_forwarded);
  // The unfiltered manager forwards everything.
  EXPECT_EQ(gm_unfiltered.stats().updates_forwarded,
            gm_unfiltered.stats().reports_received);
}

TEST(GroupManagerTest, DetectsFailureAndRecovery) {
  netsim::VirtualTestbed testbed(netsim::make_campus_testbed(5));
  const auto group = common::GroupId(0);
  const auto host = testbed.hosts_in_group(group).front();
  testbed.fail_host(host, 10.0, 10.0);

  GroupManagerConfig config;
  config.echo_period_s = 2.0;
  GroupManager gm(testbed, group, 1.0, config);

  bool saw_down = false;
  bool saw_up = false;
  for (double t = 1.0; t <= 40.0; t += 1.0) {
    const auto out = gm.tick(t);
    for (const auto& change : out.liveness_changes) {
      if (change.host == host && !change.alive) saw_down = true;
      if (change.host == host && change.alive) saw_up = true;
    }
  }
  EXPECT_TRUE(saw_down);
  EXPECT_TRUE(saw_up);
  EXPECT_EQ(gm.stats().failures_detected, 1u);
  EXPECT_EQ(gm.stats().recoveries_detected, 1u);
  // After recovery the host is believed alive again.
  const auto alive = gm.hosts_believed_alive();
  EXPECT_NE(std::find(alive.begin(), alive.end(), host), alive.end());
}

TEST(GroupManagerTest, EchoRoundsMeasureNetwork) {
  netsim::VirtualTestbed testbed(netsim::make_campus_testbed(5));
  GroupManager gm(testbed, common::GroupId(0), 1.0);
  bool saw_network = false;
  for (double t = 1.0; t <= 10.0; t += 1.0) {
    const auto out = gm.tick(t);
    if (!out.network_measurements.empty()) {
      saw_network = true;
      EXPECT_GT(out.network_measurements.front().transfer_mb_per_s, 0.0);
    }
  }
  EXPECT_TRUE(saw_network);
}

// --------------------------------------------------------- site manager

TEST_F(RuntimeEnv, WorkloadUpdatesReachRepositoryAndForecaster) {
  const auto host = testbed_->hosts_in_site(SiteId(0)).front();
  WorkloadUpdate update{host, 5.0, 2.5, 100.0};
  managers_[0]->handle_workload(update);
  const auto rec = repositories_[0]->resources().get(host);
  EXPECT_DOUBLE_EQ(rec.dynamic_attrs.cpu_load, 2.5);
  EXPECT_DOUBLE_EQ(rec.dynamic_attrs.last_update, 5.0);
  EXPECT_DOUBLE_EQ(forecasters_[0]->forecast(host).value(), 2.5);
}

TEST_F(RuntimeEnv, LivenessChangeMarksHost) {
  const auto host = testbed_->hosts_in_site(SiteId(0)).front();
  managers_[0]->handle_liveness(LivenessChange{host, 3.0, false});
  EXPECT_FALSE(
      repositories_[0]->resources().get(host).dynamic_attrs.alive);
  managers_[0]->handle_liveness(LivenessChange{host, 6.0, true});
  EXPECT_TRUE(repositories_[0]->resources().get(host).dynamic_attrs.alive);
}

TEST_F(RuntimeEnv, LoginWorks) {
  repositories_[0]->users().add_user("ops", "pw", 3, "wan");
  EXPECT_EQ(managers_[0]->login("ops", "pw").priority, 3);
  EXPECT_THROW((void)managers_[0]->login("ops", "bad"), common::AuthError);
}

TEST_F(RuntimeEnv, RecordTaskTimeAppendsHistory) {
  managers_[0]->record_task_time("fft_forward", 0.42);
  const auto rec = repositories_[0]->tasks().get("fft_forward");
  ASSERT_FALSE(rec.measured_history.empty());
  EXPECT_DOUBLE_EQ(rec.measured_history.back(), 0.42);
}

TEST_F(RuntimeEnv, DistributeAllocationSplitsPerHost) {
  sched::AllocationTable table("app");
  const auto hosts = testbed_->hosts_in_site(SiteId(0));
  for (int i = 0; i < 3; ++i) {
    sched::AllocationEntry e;
    e.task = common::TaskId(i);
    e.task_label = "t" + std::to_string(i);
    e.hosts = {hosts[i % 2]};
    e.site = SiteId(0);
    table.add(e);
  }
  // One row for the other site; must not appear in this site's portions.
  sched::AllocationEntry remote;
  remote.task = common::TaskId(9);
  remote.hosts = {testbed_->hosts_in_site(SiteId(1)).front()};
  remote.site = SiteId(1);
  table.add(remote);

  const auto portions = managers_[0]->distribute_allocation(table);
  std::size_t rows = 0;
  for (const auto& [host, entries] : portions) {
    rows += entries.size();
    EXPECT_EQ(
        repositories_[0]->resources().get(host).static_attrs.site,
        SiteId(0));
  }
  EXPECT_EQ(rows, 3u);
}

// ------------------------------------------------------ control manager

TEST_F(RuntimeEnv, MonitoringPipelineUpdatesRepository) {
  warm_up(20.0);
  const auto stats = controls_[0]->stats();
  EXPECT_GT(stats.reports_received, 0u);
  EXPECT_GT(stats.updates_forwarded, 0u);
  EXPECT_LE(stats.updates_forwarded, stats.reports_received);

  // Repository dynamic attributes were refreshed.
  for (const auto& rec :
       repositories_[0]->resources().hosts_in_site(SiteId(0))) {
    EXPECT_GT(rec.dynamic_attrs.last_update, 0.0);
  }
}

TEST_F(RuntimeEnv, FailureFlowsToRepository) {
  const auto host = testbed_->hosts_in_site(SiteId(0)).front();
  testbed_->fail_host(host, 5.0, 100.0);
  warm_up(20.0);
  EXPECT_FALSE(repositories_[0]->resources().get(host).dynamic_attrs.alive);
  // The scheduler no longer sees the host.
  EXPECT_EQ(repositories_[0]->resources().alive_hosts().size(),
            testbed_->host_count() - 1);
}

TEST_F(RuntimeEnv, RunUntilConvenience) {
  controls_[0]->run_until(0.0, 10.0, 1.0);
  EXPECT_GT(controls_[0]->stats().reports_received, 0u);
}

// ----------------------------------------------------------- directory

TEST_F(RuntimeEnv, DirectoryRoutesHostSelection) {
  warm_up(10.0);
  const auto graph = sim::make_c3i_graph();
  const auto result = directory_.host_selection(SiteId(1), graph);
  EXPECT_EQ(result.size(), graph.task_count());
  EXPECT_GT(directory_.stats().afg_multicasts, 0u);
  EXPECT_EQ(managers_[1]->stats().host_selection_requests, 1u);
}

TEST_F(RuntimeEnv, DirectoryAnswersWanQueries) {
  EXPECT_GT(directory_.transfer_time(SiteId(0), SiteId(1), 10.0), 0.0);
  EXPECT_DOUBLE_EQ(directory_.transfer_time(SiteId(0), SiteId(0), 10.0),
                   0.0);
  EXPECT_GT(directory_.base_time("lu_decomposition"), 0.0);
}

// --------------------------------------------------------------- engine

TEST_F(RuntimeEnv, EndToEndLinearSolver) {
  warm_up(10.0);
  const auto graph = sim::make_linear_solver_graph(0.5);
  sched::SiteScheduler scheduler(SiteId(0), directory_);
  const auto allocation = scheduler.schedule(graph);

  ExecutionEngine engine(tasklib::builtin_registry());
  const auto result = engine.execute(graph, allocation, managers_[0].get());

  EXPECT_EQ(result.records.size(), graph.task_count());
  EXPECT_GT(result.makespan_s, 0.0);
  const auto res_task = graph.find_by_label("residual");
  EXPECT_LT(result.outputs.at(*res_task).as_scalar(), 1e-9);

  // Measured times fed back into the task-performance database.
  EXPECT_FALSE(repositories_[0]->tasks()
                   .get("lu_decomposition")
                   .measured_history.empty());
}

TEST_F(RuntimeEnv, EngineOverTcpWithEveryLibrary) {
  warm_up(10.0);
  const auto graph = sim::make_c3i_graph(0.5);
  sched::SiteScheduler scheduler(SiteId(0), directory_);
  const auto allocation = scheduler.schedule(graph);

  for (const auto lib : {dm::MpLibrary::kP4, dm::MpLibrary::kPvm,
                         dm::MpLibrary::kMpi, dm::MpLibrary::kNcs}) {
    EngineConfig config;
    config.transport = dm::TransportKind::kTcp;
    config.library = lib;
    ExecutionEngine engine(tasklib::builtin_registry(), config);
    const auto result = engine.execute(graph, allocation);
    const auto rank = graph.find_by_label("rank");
    EXPECT_FALSE(result.outputs.at(*rank).as_threats().empty())
        << "library " << dm::to_string(lib);
  }
}

TEST_F(RuntimeEnv, EngineRejectsIncompleteAllocation) {
  const auto graph = sim::make_c3i_graph(0.5);
  sched::AllocationTable empty("x");
  ExecutionEngine engine(tasklib::builtin_registry());
  EXPECT_THROW((void)engine.execute(graph, empty), common::StateError);
}

TEST_F(RuntimeEnv, EngineDeterministicOutputsAcrossTransports) {
  warm_up(10.0);
  const auto graph = sim::make_linear_solver_graph(0.5);
  sched::SiteScheduler scheduler(SiteId(0), directory_);
  const auto allocation = scheduler.schedule(graph);

  EngineConfig inproc;
  inproc.seed = 7;
  EngineConfig tcp;
  tcp.seed = 7;
  tcp.transport = dm::TransportKind::kTcp;

  ExecutionEngine e1(tasklib::builtin_registry(), inproc);
  ExecutionEngine e2(tasklib::builtin_registry(), tcp);
  const auto r1 = e1.execute(graph, allocation);
  const auto r2 = e2.execute(graph, allocation);
  const auto x = graph.find_by_label("x");
  EXPECT_EQ(r1.outputs.at(*x).as_vector(), r2.outputs.at(*x).as_vector());
}

TEST_F(RuntimeEnv, ConsoleAbortFailsRun) {
  warm_up(5.0);
  const auto graph = sim::make_c3i_graph(0.5);
  sched::SiteScheduler scheduler(SiteId(0), directory_);
  const auto allocation = scheduler.schedule(graph);

  dm::ConsoleService console;
  console.abort();
  ExecutionEngine engine(tasklib::builtin_registry());
  EXPECT_THROW((void)engine.execute(graph, allocation, nullptr, &console),
               common::StateError);
}

TEST_F(RuntimeEnv, EngineFailurePropagatesWithoutHanging) {
  // A graph that is structurally valid but type-broken at runtime: the
  // failing task must be named and every peer unblocked.
  warm_up(5.0);
  afg::FlowGraph g("broken");
  const auto a = g.add_task("vector_generate", "vec");
  const auto b = g.add_task("lu_decomposition", "lu");  // wants a matrix
  const auto c = g.add_task("lu_lower", "lower");
  g.add_link(a, b, 0.1);
  g.add_link(b, c, 0.1);

  sched::SiteScheduler scheduler(SiteId(0), directory_);
  const auto allocation = scheduler.schedule(g);
  ExecutionEngine engine(tasklib::builtin_registry());
  try {
    (void)engine.execute(g, allocation);
    FAIL() << "expected StateError";
  } catch (const common::StateError& e) {
    EXPECT_NE(std::string(e.what()).find("lu"), std::string::npos);
  }
}

TEST_F(RuntimeEnv, EngineParallelTaskUsesAllAssignedHosts) {
  warm_up(5.0);
  afg::FlowGraph g("par");
  afg::TaskProperties props;
  props.mode = afg::ComputeMode::kParallel;
  props.num_processors = 2;
  const auto src = g.add_task("synth_source", "src", props);
  const auto sink = g.add_task("synth_sink", "sink");
  g.add_link(src, sink, 0.1);

  sched::SiteScheduler scheduler(SiteId(0), directory_);
  const auto allocation = scheduler.schedule(g);
  EXPECT_EQ(allocation.entry(src).hosts.size(), 2u);
  ExecutionEngine engine(tasklib::builtin_registry());
  const auto result = engine.execute(g, allocation);
  EXPECT_GT(result.outputs.at(sink).as_scalar(), 0.0);
}

TEST_F(RuntimeEnv, EngineMatchesSequentialReference) {
  // Property: the distributed execution computes exactly what a
  // sequential topological evaluation with the same per-task seeds
  // computes.
  warm_up(5.0);
  const auto& registry = tasklib::builtin_registry();
  common::Rng graph_rng(4242);
  for (int trial = 0; trial < 3; ++trial) {
    sim::SyntheticGraphParams params;
    params.family = sim::GraphFamily::kLayered;
    params.size = 3;
    params.width = 3;
    const auto graph = sim::make_synthetic_graph(params, graph_rng);

    sched::SiteScheduler scheduler(SiteId(0), directory_);
    const auto allocation = scheduler.schedule(graph);

    EngineConfig config;
    config.seed = 99;
    ExecutionEngine engine(tasklib::builtin_registry(), config);
    const auto result = engine.execute(graph, allocation);
    const auto app = result.app;

    // Sequential reference with the engine's seed derivation.
    std::map<common::TaskId, tasklib::Payload> reference;
    for (const auto id : graph.topological_order()) {
      const auto& node = graph.task(id);
      std::vector<tasklib::Payload> inputs;
      for (const auto parent : graph.ordered_parents(id)) {
        inputs.push_back(reference.at(parent));
      }
      common::Rng rng(config.seed ^
                      (static_cast<std::uint64_t>(app.value()) << 32) ^
                      id.value());
      tasklib::TaskContext ctx{node.props.input_size, &rng};
      reference.emplace(id, registry.run(node.library_task, inputs, ctx));
    }
    for (const auto& [id, payload] : result.outputs) {
      EXPECT_EQ(payload.to_wire(), reference.at(id).to_wire());
    }
  }
}

TEST_F(RuntimeEnv, DirectoryRejectsDuplicateSite) {
  SiteManagerDirectory dir;
  dir.add_site(*managers_[0]);
  EXPECT_THROW(dir.add_site(*managers_[0]), common::StateError);
}

// ----------------------------------------------------- app controller

TEST(AppControllerTest, LoadGuardRefusesOverloadedMachine) {
  dm::ChannelBroker broker(dm::TransportKind::kInProcess);
  ApplicationController controller(broker, dm::MpLibrary::kP4,
                                   common::AppId(1), HostId(0));
  controller.activate(dm::TaskWiring{common::AppId(1), common::TaskId(0),
                                     {}, {}});
  controller.set_load_guard([] { return 9.0; }, /*threshold=*/4.0);

  common::Rng rng(1);
  tasklib::TaskContext ctx{1.0, &rng};
  const auto outcome = controller.execute(tasklib::builtin_registry(),
                                          "synth_source", ctx);
  EXPECT_FALSE(outcome.completed);
  ASSERT_TRUE(outcome.reschedule.has_value());
  EXPECT_EQ(outcome.reschedule->host, HostId(0));
  EXPECT_DOUBLE_EQ(outcome.reschedule->observed_load, 9.0);
}

TEST(AppControllerTest, RunsWhenUnderThreshold) {
  dm::ChannelBroker broker(dm::TransportKind::kInProcess);
  ApplicationController controller(broker, dm::MpLibrary::kP4,
                                   common::AppId(1), HostId(0));
  controller.activate(dm::TaskWiring{common::AppId(1), common::TaskId(0),
                                     {}, {}});
  controller.set_load_guard([] { return 1.0; }, 4.0);
  common::Rng rng(1);
  tasklib::TaskContext ctx{1.0, &rng};
  const auto outcome = controller.execute(tasklib::builtin_registry(),
                                          "synth_source", ctx);
  EXPECT_TRUE(outcome.completed);
  EXPECT_GT(outcome.compute_elapsed_s, 0.0);
}

}  // namespace
}  // namespace vdce::rt
