// Tests for the Data Manager stack: channels (in-process and TCP),
// the rendezvous broker, message-passing library facades, services,
// and the send/receive/compute thread lifecycle.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "datamgr/broker.hpp"
#include "datamgr/channel.hpp"
#include "datamgr/data_manager.hpp"
#include "datamgr/event_loop.hpp"
#include "datamgr/frame.hpp"
#include "datamgr/mplib.hpp"
#include "datamgr/services.hpp"
#include "datamgr/tcp.hpp"

namespace vdce::dm {
namespace {

using common::AppId;
using common::StateError;
using common::TaskId;
using common::TransportError;

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out;
  for (char c : s) out.push_back(static_cast<std::byte>(c));
  return out;
}

std::string string_of(const std::vector<std::byte>& b) {
  std::string out;
  for (std::byte v : b) out.push_back(static_cast<char>(v));
  return out;
}

// ------------------------------------------------------------ channels

TEST(InProcChannel, DeliversInOrder) {
  auto pair = make_inproc_pair();
  pair.sender->send(bytes_of("one"));
  pair.sender->send(bytes_of("two"));
  EXPECT_EQ(string_of(*pair.receiver->receive()), "one");
  EXPECT_EQ(string_of(*pair.receiver->receive()), "two");
}

TEST(InProcChannel, CloseDrainsThenEof) {
  auto pair = make_inproc_pair();
  pair.sender->send(bytes_of("last"));
  pair.sender->close();
  EXPECT_EQ(string_of(*pair.receiver->receive()), "last");
  EXPECT_EQ(pair.receiver->receive(), std::nullopt);
}

TEST(InProcChannel, SendAfterCloseThrows) {
  auto pair = make_inproc_pair();
  pair.receiver->close();
  EXPECT_THROW(pair.sender->send(bytes_of("x")), TransportError);
}

TEST(InProcChannel, WrongDirectionThrows) {
  auto pair = make_inproc_pair();
  EXPECT_THROW((void)pair.sender->receive(), TransportError);
  EXPECT_THROW(pair.receiver->send(bytes_of("x")), TransportError);
}

TEST(InProcChannel, CountsBytes) {
  auto pair = make_inproc_pair();
  pair.sender->send(bytes_of("12345"));
  EXPECT_EQ(pair.sender->bytes_sent(), 5u);
}

TEST(TcpChannel, RoundTripOverLoopback) {
  TcpListener listener;
  EXPECT_GT(listener.port(), 0);

  std::unique_ptr<TcpChannel> server_end;
  std::jthread acceptor([&] { server_end = listener.accept(); });
  auto client_end = tcp_connect(listener.port());
  acceptor.join();
  ASSERT_TRUE(server_end);

  client_end->send(bytes_of("hello over tcp"));
  EXPECT_EQ(string_of(*server_end->receive()), "hello over tcp");

  // And the other direction.
  server_end->send(bytes_of("reply"));
  EXPECT_EQ(string_of(*client_end->receive()), "reply");
}

TEST(TcpChannel, LargeMessage) {
  TcpListener listener;
  std::unique_ptr<TcpChannel> server_end;
  std::jthread acceptor([&] { server_end = listener.accept(); });
  auto client_end = tcp_connect(listener.port());
  acceptor.join();

  common::Rng rng(1);
  std::vector<std::byte> big(1 << 20);
  for (auto& b : big) b = static_cast<std::byte>(rng() & 0xFF);
  client_end->send(big);
  const auto got = server_end->receive();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, big);
}

TEST(TcpChannel, EmptyMessage) {
  TcpListener listener;
  std::unique_ptr<TcpChannel> server_end;
  std::jthread acceptor([&] { server_end = listener.accept(); });
  auto client_end = tcp_connect(listener.port());
  acceptor.join();
  client_end->send({});
  const auto got = server_end->receive();
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->empty());
}

TEST(TcpChannel, OrderlyEofOnClose) {
  TcpListener listener;
  std::unique_ptr<TcpChannel> server_end;
  std::jthread acceptor([&] { server_end = listener.accept(); });
  auto client_end = tcp_connect(listener.port());
  acceptor.join();
  client_end->close();
  EXPECT_EQ(server_end->receive(), std::nullopt);
}

TEST(TcpChannel, ConnectToDeadPortThrows) {
  // Grab a port then close the listener so nothing is listening.
  std::uint16_t port;
  {
    TcpListener listener;
    port = listener.port();
  }
  EXPECT_THROW((void)tcp_connect(port), TransportError);
}

TEST(TcpChannel, RejectsOversizedSend) {
  // The 4-byte length header cannot carry messages above the frame
  // limit; send must refuse instead of silently truncating the length.
  TcpListener listener;
  std::unique_ptr<TcpChannel> server_end;
  std::jthread acceptor([&] { server_end = listener.accept(); });
  auto client_end = tcp_connect(listener.port());
  acceptor.join();

  client_end->set_max_message_bytes(64);
  EXPECT_THROW(client_end->send(std::vector<std::byte>(65)),
               TransportError);
  // At the limit is still fine.
  client_end->send(std::vector<std::byte>(64));
  EXPECT_EQ(server_end->receive()->size(), 64u);
}

TEST(TcpChannel, ReceiveBoundsChecksDecodedLength) {
  // A peer announcing a frame larger than the receiver's limit must be
  // rejected before the receiver allocates the announced size.
  TcpListener listener;
  std::unique_ptr<TcpChannel> server_end;
  std::jthread acceptor([&] { server_end = listener.accept(); });
  auto client_end = tcp_connect(listener.port());
  acceptor.join();

  server_end->set_max_message_bytes(16);
  client_end->send(std::vector<std::byte>(1024));
  EXPECT_THROW((void)server_end->receive(), TransportError);
}

TEST(TcpChannel, InvalidFrameLimitRejected) {
  TcpListener listener;
  std::unique_ptr<TcpChannel> server_end;
  std::jthread acceptor([&] { server_end = listener.accept(); });
  auto client_end = tcp_connect(listener.port());
  acceptor.join();
  EXPECT_THROW(client_end->set_max_message_bytes(0), StateError);
  EXPECT_THROW(client_end->set_max_message_bytes(std::size_t{1} << 40),
               StateError);
}

TEST(TcpChannel, ReceiveForTimesOutWithoutData) {
  TcpListener listener;
  std::unique_ptr<TcpChannel> server_end;
  std::jthread acceptor([&] { server_end = listener.accept(); });
  auto client_end = tcp_connect(listener.port());
  acceptor.join();
  EXPECT_THROW((void)server_end->receive_for(0.05), TransportError);
  // The channel is still usable after a timeout.
  client_end->send(bytes_of("late"));
  EXPECT_EQ(string_of(*server_end->receive_for(5.0)), "late");
}

TEST(TcpChannel, ReceiveForSeesOrderlyClose) {
  TcpListener listener;
  std::unique_ptr<TcpChannel> server_end;
  std::jthread acceptor([&] { server_end = listener.accept(); });
  auto client_end = tcp_connect(listener.port());
  acceptor.join();
  client_end->close();
  EXPECT_EQ(server_end->receive_for(5.0), std::nullopt);
}

TEST(InProcChannel, ReceiveForTimesOutWithoutData) {
  auto pair = make_inproc_pair();
  EXPECT_THROW((void)pair.receiver->receive_for(0.05), TransportError);
  pair.sender->send(bytes_of("late"));
  EXPECT_EQ(string_of(*pair.receiver->receive_for(5.0)), "late");
}

TEST(InProcChannel, ReceiveForSeesOrderlyClose) {
  auto pair = make_inproc_pair();
  pair.sender->close();
  EXPECT_EQ(pair.receiver->receive_for(5.0), std::nullopt);
}

// -------------------------------------------------------------- broker

class BrokerKinds : public ::testing::TestWithParam<TransportKind> {};

TEST_P(BrokerKinds, RendezvousDelivers) {
  ChannelBroker broker(GetParam());
  const LinkKey key{AppId(1), TaskId(0), TaskId(1)};

  auto receiver = broker.open_receive(key);
  std::jthread producer([&] {
    auto sender = broker.open_send(key);
    sender->send(bytes_of("payload"));
    sender->close();
  });
  EXPECT_EQ(string_of(*receiver->receive()), "payload");
}

TEST_P(BrokerKinds, SenderWaitsForReceiver) {
  ChannelBroker broker(GetParam());
  const LinkKey key{AppId(1), TaskId(0), TaskId(1)};
  std::shared_ptr<Channel> receiver;

  std::jthread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    receiver = broker.open_receive(key);
  });
  auto sender = broker.open_send(key, /*timeout_s=*/5.0);  // blocks, then ok
  consumer.join();
  sender->send(bytes_of("late ok"));
  EXPECT_EQ(string_of(*receiver->receive()), "late ok");
}

TEST_P(BrokerKinds, TimeoutWhenNoConsumer) {
  ChannelBroker broker(GetParam());
  const LinkKey key{AppId(1), TaskId(0), TaskId(1)};
  EXPECT_THROW((void)broker.open_send(key, 0.05), TransportError);
}

TEST_P(BrokerKinds, DuplicateReceiveRejected) {
  ChannelBroker broker(GetParam());
  const LinkKey key{AppId(1), TaskId(0), TaskId(1)};
  (void)broker.open_receive(key);
  EXPECT_THROW((void)broker.open_receive(key), StateError);
}

TEST_P(BrokerKinds, ClearAppFreesKeys) {
  ChannelBroker broker(GetParam());
  const LinkKey key{AppId(1), TaskId(0), TaskId(1)};
  (void)broker.open_receive(key);
  broker.clear_app(AppId(1));
  EXPECT_NO_THROW((void)broker.open_receive(key));
}

TEST_P(BrokerKinds, ClearAppAbortsPendingOpenSend) {
  // Regression (DESIGN.md D12): a feeder blocked in open_send while the
  // engine tears the app down must abort promptly, not sleep out its
  // full timeout -- and must never pair with the NEXT recovery round's
  // registration for the same key.
  ChannelBroker broker(GetParam());
  const LinkKey key{AppId(7), TaskId(0), TaskId(1)};

  std::atomic<bool> threw{false};
  const auto t0 = std::chrono::steady_clock::now();
  std::jthread feeder([&] {
    try {
      (void)broker.open_send(key, /*timeout_s=*/30.0);
    } catch (const TransportError&) {
      threw.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  broker.clear_app(AppId(7));
  feeder.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_TRUE(threw.load());
  EXPECT_LT(elapsed, 5.0) << "open_send waited out its timeout";
}

TEST_P(BrokerKinds, ClearAppIdempotentAndConcurrentSafe) {
  // clear_app twice in a row is a no-op the second time, and a storm of
  // concurrent clears racing blocked feeders neither crashes nor
  // strands a waiter.
  ChannelBroker broker(GetParam());
  constexpr int kFeeders = 4;
  std::atomic<int> aborted{0};
  {
    std::vector<std::jthread> feeders;
    for (int i = 0; i < kFeeders; ++i) {
      feeders.emplace_back([&broker, &aborted, i] {
        try {
          (void)broker.open_send(
              LinkKey{AppId(9), TaskId(i), TaskId(100 + i)},
              /*timeout_s=*/30.0);
        } catch (const TransportError&) {
          aborted.fetch_add(1);
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    std::jthread clearer_a([&] { broker.clear_app(AppId(9)); });
    std::jthread clearer_b([&] { broker.clear_app(AppId(9)); });
  }
  EXPECT_EQ(aborted.load(), kFeeders);

  // The broker stays usable for the same app after the clears: a fresh
  // registration pairs with a fresh open_send.
  const LinkKey key{AppId(9), TaskId(0), TaskId(100)};
  auto receiver = broker.open_receive(key);
  std::jthread producer([&] {
    auto sender = broker.open_send(key, /*timeout_s=*/5.0);
    sender->send(bytes_of("after clear"));
    sender->close();
  });
  EXPECT_EQ(string_of(*receiver->receive()), "after clear");
}

TEST_P(BrokerKinds, ClearAppLeavesOtherAppsWaiting) {
  // Clearing app A must not abort a feeder blocked on app B's link.
  ChannelBroker broker(GetParam());
  const LinkKey key{AppId(2), TaskId(0), TaskId(1)};
  std::shared_ptr<Channel> receiver;

  std::jthread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    receiver = broker.open_receive(key);
  });
  std::jthread other_clear([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    broker.clear_app(AppId(1));  // unrelated app
  });
  auto sender = broker.open_send(key, /*timeout_s=*/5.0);
  consumer.join();
  sender->send(bytes_of("unaffected"));
  EXPECT_EQ(string_of(*receiver->receive()), "unaffected");
}

INSTANTIATE_TEST_SUITE_P(Transports, BrokerKinds,
                         ::testing::Values(TransportKind::kInProcess,
                                           TransportKind::kTcp));

// ------------------------------------------------- ring channel (D16)

TEST(RingChannel, FifoOrderAndDrainToEos) {
  RingChannel ring(4);
  for (int i = 0; i < 4; ++i) {
    ring.push(FramePool::global().copy_of(bytes_of("f" + std::to_string(i))));
  }
  EXPECT_EQ(ring.size(), 4u);
  ring.close_send();
  EXPECT_TRUE(ring.eos());
  for (int i = 0; i < 4; ++i) {
    auto fv = ring.pop();
    ASSERT_TRUE(fv.has_value());
    EXPECT_EQ(string_of(fv->to_vector()), "f" + std::to_string(i));
  }
  EXPECT_FALSE(ring.pop().has_value());  // clean EOS
  EXPECT_FALSE(ring.pop().has_value());  // and it stays that way
}

TEST(RingChannel, TryPushReportsFullWithoutBlocking) {
  RingChannel ring(2);
  EXPECT_TRUE(ring.try_push(FramePool::global().copy_of(bytes_of("a"))));
  EXPECT_TRUE(ring.try_push(FramePool::global().copy_of(bytes_of("b"))));
  EXPECT_FALSE(ring.try_push(FramePool::global().copy_of(bytes_of("c"))));
  EXPECT_EQ(ring.stats().frames_pushed, 2u);
  (void)ring.pop();
  EXPECT_TRUE(ring.try_push(FramePool::global().copy_of(bytes_of("c"))));
}

TEST(RingChannel, ProducerParksOnFullUntilConsumerMakesRoom) {
  RingChannel ring(1);
  ring.push(FramePool::global().copy_of(bytes_of("first")));
  std::atomic<bool> delivered{false};
  std::jthread producer([&] {
    ring.push(FramePool::global().copy_of(bytes_of("second")));
    delivered.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(delivered.load());  // parked on the full ring
  EXPECT_EQ(string_of(ring.pop()->to_vector()), "first");
  producer.join();
  EXPECT_TRUE(delivered.load());
  EXPECT_EQ(string_of(ring.pop()->to_vector()), "second");
  EXPECT_GE(ring.stats().producer_parks, 1u);
}

TEST(RingChannel, PopForTimesOutWithTransportError) {
  RingChannel ring(2);
  const auto before =
      common::MetricsRegistry::global().counter("datamgr.deadline_expiries")
          .value();
  EXPECT_THROW((void)ring.pop_for(0.05), TransportError);
  EXPECT_GT(common::MetricsRegistry::global()
                .counter("datamgr.deadline_expiries")
                .value(),
            before);
}

TEST(RingChannel, MultiProducerEosNeedsEveryRetirement) {
  RingChannel ring(8);
  ring.add_producer();  // two producers now
  ring.push(FramePool::global().copy_of(bytes_of("x")));
  ring.close_send();
  EXPECT_FALSE(ring.eos());  // one producer still attached
  ring.close_send();
  EXPECT_TRUE(ring.eos());
  EXPECT_TRUE(ring.pop().has_value());
  EXPECT_FALSE(ring.pop().has_value());
  EXPECT_THROW(ring.add_producer(), StateError);
  EXPECT_THROW(ring.push(FramePool::global().copy_of(bytes_of("y"))),
               TransportError);
}

TEST(RingChannel, AbortDropsFramesAndWakesParkedProducer) {
  RingChannel ring(1);
  ring.push(FramePool::global().copy_of(bytes_of("stuck")));
  std::atomic<bool> threw{false};
  std::jthread producer([&] {
    try {
      ring.push(FramePool::global().copy_of(bytes_of("parked")));
    } catch (const TransportError&) {
      threw.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ring.abort();
  ring.abort();  // idempotent
  producer.join();
  EXPECT_TRUE(threw.load());
  EXPECT_TRUE(ring.aborted());
  EXPECT_EQ(ring.size(), 0u);  // the queued frame was dropped
  EXPECT_EQ(ring.stats().frames_dropped, 1u);
  EXPECT_THROW((void)ring.pop(), TransportError);
  EXPECT_THROW(ring.push(FramePool::global().copy_of(bytes_of("late"))),
               TransportError);
}

TEST(RingChannel, AbortWakesParkedConsumer) {
  RingChannel ring(2);
  std::atomic<bool> threw{false};
  std::jthread consumer([&] {
    try {
      (void)ring.pop();  // parks: empty, no EOS
    } catch (const TransportError&) {
      threw.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ring.abort();
  consumer.join();
  EXPECT_TRUE(threw.load());
}

TEST(RingChannel, ChannelInterfaceRoundTrip) {
  RingChannel ring(4);
  Channel& ch = ring;
  ch.send(bytes_of("via channel"));
  EXPECT_EQ(ch.bytes_sent(), bytes_of("via channel").size());
  EXPECT_EQ(string_of(*ch.receive()), "via channel");
  ch.close();
  EXPECT_FALSE(ch.receive().has_value());
}

// -------------------------------------- broker streaming links (D16)

TEST(ChannelBrokerStream, RendezvousSharesOneRing) {
  ChannelBroker broker(TransportKind::kInProcess);
  const LinkKey key{AppId(1), TaskId(0), TaskId(1)};
  auto receiver = broker.open_stream_receive(key, 4);
  auto sender = broker.open_stream_send(key);
  EXPECT_EQ(receiver.get(), sender.get());  // one bounded ring, two ends
  sender->push(FramePool::global().copy_of(bytes_of("hello")));
  sender->close_send();
  EXPECT_EQ(string_of(receiver->pop()->to_vector()), "hello");
  EXPECT_FALSE(receiver->pop().has_value());
}

TEST(ChannelBrokerStream, FanInAttachesOneProducerPerOpen) {
  ChannelBroker broker(TransportKind::kInProcess);
  const LinkKey key{AppId(1), TaskId(0), TaskId(1)};
  auto receiver = broker.open_stream_receive(key, 4);
  auto a = broker.open_stream_send(key);
  auto b = broker.open_stream_send(key);
  a->push(FramePool::global().copy_of(bytes_of("from a")));
  a->close_send();
  EXPECT_FALSE(receiver->eos());  // b is still attached
  b->close_send();
  EXPECT_TRUE(receiver->eos());
  EXPECT_TRUE(receiver->pop().has_value());
  EXPECT_FALSE(receiver->pop().has_value());
}

TEST(ChannelBrokerStream, BatchAndStreamRegistrationsDoNotMix) {
  ChannelBroker broker(TransportKind::kInProcess);
  const LinkKey batch_key{AppId(1), TaskId(0), TaskId(1)};
  const LinkKey stream_key{AppId(1), TaskId(1), TaskId(2)};
  (void)broker.open_receive(batch_key);
  (void)broker.open_stream_receive(stream_key, 2);
  EXPECT_THROW((void)broker.open_stream_send(batch_key, 0.2), StateError);
  EXPECT_THROW((void)broker.open_stream_receive(stream_key, 2), StateError);
}

TEST(ChannelBrokerStream, ClearAppWakesProducerParkedOnFullRing) {
  // Satellite regression: PR 5's clear-generation bump frees feeders
  // blocked in open_send, but a STREAMING producer can be parked deeper
  // -- inside push() on a full ring it already holds.  clear_app must
  // abort the ring so that producer wakes with TransportError instead
  // of sleeping until its consumer (torn down with the app) drains.
  ChannelBroker broker(TransportKind::kInProcess);
  const LinkKey key{AppId(7), TaskId(0), TaskId(1)};
  auto receiver = broker.open_stream_receive(key, 2);
  auto sender = broker.open_stream_send(key);
  sender->push(FramePool::global().copy_of(bytes_of("a")));
  sender->push(FramePool::global().copy_of(bytes_of("b")));  // ring full

  std::atomic<bool> threw{false};
  const auto t0 = std::chrono::steady_clock::now();
  std::jthread producer([&] {
    try {
      sender->push(FramePool::global().copy_of(bytes_of("c")));  // parks
    } catch (const TransportError&) {
      threw.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  broker.clear_app(AppId(7));
  producer.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_TRUE(threw.load());
  EXPECT_LT(elapsed, 5.0) << "parked producer slept through clear_app";
  EXPECT_TRUE(receiver->aborted());
  EXPECT_THROW((void)receiver->pop(), TransportError);
}

TEST(ChannelBrokerStream, ClearAppWakesConsumerParkedOnEmptyRing) {
  ChannelBroker broker(TransportKind::kInProcess);
  const LinkKey key{AppId(8), TaskId(0), TaskId(1)};
  auto receiver = broker.open_stream_receive(key, 2);
  std::atomic<bool> threw{false};
  std::jthread consumer([&] {
    try {
      (void)receiver->pop();  // parks: nothing queued, no EOS
    } catch (const TransportError&) {
      threw.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  broker.clear_app(AppId(8));
  consumer.join();
  EXPECT_TRUE(threw.load());
}

TEST(ChannelBrokerStream, ClearAppAbortsPendingOpenStreamSend) {
  // The clear-generation bump covers streaming rendezvous too: a
  // producer waiting for a consumer that will never register aborts
  // promptly.
  ChannelBroker broker(TransportKind::kInProcess);
  std::atomic<bool> threw{false};
  std::jthread feeder([&] {
    try {
      (void)broker.open_stream_send(LinkKey{AppId(9), TaskId(0), TaskId(1)},
                                    /*timeout_s=*/30.0);
    } catch (const TransportError&) {
      threw.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  broker.clear_app(AppId(9));
  feeder.join();
  EXPECT_TRUE(threw.load());
}

// --------------------------------------------------------------- mplib

class MpLibSweep : public ::testing::TestWithParam<MpLibrary> {};

TEST_P(MpLibSweep, TaggedRoundTrip) {
  auto pair = make_inproc_pair();
  MessageEndpoint tx(GetParam(), pair.sender);
  MessageEndpoint rx(GetParam(), pair.receiver);
  tx.send(42, bytes_of("tagged message"));
  const auto msg = rx.receive();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->tag, 42);
  EXPECT_EQ(string_of(msg->data), "tagged message");
}

TEST_P(MpLibSweep, EofPropagates) {
  auto pair = make_inproc_pair();
  MessageEndpoint tx(GetParam(), pair.sender);
  MessageEndpoint rx(GetParam(), pair.receiver);
  tx.close();
  EXPECT_EQ(rx.receive(), std::nullopt);
}

TEST_P(MpLibSweep, LargePayloadRoundTrip) {
  auto pair = make_inproc_pair();
  MessageEndpoint tx(GetParam(), pair.sender);
  MessageEndpoint rx(GetParam(), pair.receiver);
  common::Rng rng(2);
  std::vector<std::byte> big(100000);
  for (auto& b : big) b = static_cast<std::byte>(rng() & 0xFF);
  tx.send(7, big);
  const auto msg = rx.receive();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->data, big);
}

INSTANTIATE_TEST_SUITE_P(Libraries, MpLibSweep,
                         ::testing::Values(MpLibrary::kP4, MpLibrary::kPvm,
                                           MpLibrary::kMpi, MpLibrary::kNcs));

TEST(MpLib, LibraryMismatchDetected) {
  auto pair = make_inproc_pair();
  MessageEndpoint tx(MpLibrary::kP4, pair.sender);
  MessageEndpoint rx(MpLibrary::kMpi, pair.receiver);
  tx.send(1, bytes_of("x"));
  EXPECT_THROW((void)rx.receive(), TransportError);
}

TEST(MpLib, MpiCommunicatorChecked) {
  auto pair = make_inproc_pair();
  MessageEndpoint tx(MpLibrary::kMpi, pair.sender, /*communicator=*/1);
  MessageEndpoint rx(MpLibrary::kMpi, pair.receiver, /*communicator=*/2);
  tx.send(1, bytes_of("x"));
  EXPECT_THROW((void)rx.receive(), TransportError);
}

TEST(MpLib, PvmFragmentsLargeMessages) {
  auto pair = make_inproc_pair();
  MessageEndpoint tx(MpLibrary::kPvm, pair.sender);
  std::vector<std::byte> data(MessageEndpoint::kPvmFragment * 2 + 100);
  tx.send(1, data);
  tx.close();
  // On the raw channel: one header frame + three fragment frames.
  int frames = 0;
  while (pair.receiver->receive()) ++frames;
  EXPECT_EQ(frames, 4);
}

TEST(MpLib, PvmMissingFragmentDetected) {
  auto pair = make_inproc_pair();
  MessageEndpoint tx(MpLibrary::kPvm, pair.sender);
  MessageEndpoint rx(MpLibrary::kPvm, pair.receiver);
  std::vector<std::byte> data(MessageEndpoint::kPvmFragment + 10);
  tx.send(1, data);
  // Swallow the last fragment: read the header + first fragment through
  // a raw side-channel is not possible here, so instead close the
  // channel mid-message by sending a fresh header claiming fragments
  // that never arrive.
  auto pair2 = make_inproc_pair();
  MessageEndpoint tx2(MpLibrary::kPvm, pair2.sender);
  MessageEndpoint rx2(MpLibrary::kPvm, pair2.receiver);
  tx2.send(1, data);
  // Receive normally works:
  EXPECT_EQ(rx2.receive()->data.size(), data.size());
  // Truncated: header only, then close.
  common::WireWriter header;
  header.write_u8(static_cast<std::uint8_t>(MpLibrary::kPvm));
  header.write_u32(1);
  header.write_u32(3);  // claims 3 fragments
  header.write_u64(100);
  pair2.sender->send(header.bytes());
  pair2.sender->close();
  EXPECT_THROW((void)rx2.receive(), TransportError);
}

TEST(MpLib, NcsSequenceViolationDetected) {
  auto tx_pair = make_inproc_pair();
  MessageEndpoint tx(MpLibrary::kNcs, tx_pair.sender);
  MessageEndpoint rx(MpLibrary::kNcs, tx_pair.receiver);
  tx.send(1, bytes_of("a"));
  // Drop one message by consuming it at the raw level... instead send
  // two and read both fine first:
  tx.send(2, bytes_of("b"));
  EXPECT_EQ(rx.receive()->tag, 1);
  EXPECT_EQ(rx.receive()->tag, 2);
  // Now fake an out-of-order frame by constructing a second sender whose
  // sequence numbers restart at 0.
  MessageEndpoint rogue(MpLibrary::kNcs, tx_pair.sender);
  rogue.send(3, bytes_of("c"));  // seq 0, receiver expects 2
  EXPECT_THROW((void)rx.receive(), TransportError);
}

// ------------------------------------------------------------ services

TEST(IoServiceTest, FileRoundTrip) {
  IoService io("/tmp");
  const auto payload = tasklib::Payload::of_vector({1.0, 2.0, 3.0});
  io.write_output("/tmp/vdce_io_test.bin", payload);
  const auto reread = io.read_input("file:/tmp/vdce_io_test.bin");
  EXPECT_EQ(reread.as_vector(), payload.as_vector());
}

TEST(IoServiceTest, UrlResolvesAgainstDocRoot) {
  IoService io("/tmp");
  const auto payload = tasklib::Payload::of_scalar(4.5);
  io.write_output("/tmp/vdce_url_test.bin", payload);
  EXPECT_DOUBLE_EQ(io.read_input("url:vdce_url_test.bin").as_scalar(), 4.5);
}

TEST(IoServiceTest, BadSpecThrows) {
  IoService io;
  EXPECT_THROW((void)io.read_input("ftp:whatever"), common::ParseError);
  EXPECT_THROW((void)io.read_input("file:/tmp/definitely_missing_xyz"),
               common::NotFoundError);
}

TEST(ConsoleServiceTest, SuspendBlocksCheckpoint) {
  ConsoleService console;
  console.suspend();
  EXPECT_TRUE(console.suspended());

  std::atomic<bool> passed{false};
  std::jthread worker([&] {
    console.checkpoint();
    passed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(passed);
  console.resume();
  worker.join();
  EXPECT_TRUE(passed);
}

TEST(ConsoleServiceTest, AbortThrowsInCheckpoint) {
  ConsoleService console;
  console.abort();
  EXPECT_TRUE(console.aborted());
  EXPECT_THROW(console.checkpoint(), StateError);
}

TEST(ConsoleServiceTest, AbortWakesSuspended) {
  ConsoleService console;
  console.suspend();
  std::atomic<bool> threw{false};
  std::jthread worker([&] {
    try {
      console.checkpoint();
    } catch (const StateError&) {
      threw = true;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  console.abort();
  worker.join();
  EXPECT_TRUE(threw);
}

// -------------------------------------------------------- data manager

class DataManagerKinds : public ::testing::TestWithParam<TransportKind> {};

TEST_P(DataManagerKinds, TwoTaskPipeline) {
  ChannelBroker broker(GetParam());
  const auto& registry = tasklib::builtin_registry();

  // synth_source -> synth_sink, each on its own "machine" thread.
  TaskWiring source_wiring{AppId(1), TaskId(0), {}, {TaskId(1)}};
  TaskWiring sink_wiring{AppId(1), TaskId(1), {TaskId(0)}, {}};

  tasklib::Payload sink_out;
  std::string error;
  std::jthread sink_machine([&] {
    try {
      DataManager dm(broker);
      dm.setup(sink_wiring);
      common::Rng rng(2);
      tasklib::TaskContext ctx{1.0, &rng};
      sink_out = dm.run(registry, "synth_sink", ctx);
      dm.teardown();
    } catch (const std::exception& e) {
      error = e.what();
    }
  });
  std::jthread source_machine([&] {
    try {
      DataManager dm(broker);
      dm.setup(source_wiring);
      common::Rng rng(1);
      tasklib::TaskContext ctx{1.0, &rng};
      (void)dm.run(registry, "synth_source", ctx);
      dm.teardown();
    } catch (const std::exception& e) {
      error = e.what();
    }
  });
  sink_machine.join();
  source_machine.join();
  ASSERT_TRUE(error.empty()) << error;
  // 1024 doubles + payload framing -> sink counted the bytes.
  EXPECT_GT(sink_out.as_scalar(), 8000.0);
}

TEST_P(DataManagerKinds, RecvTimeoutFailsInsteadOfHanging) {
  // A dead peer (registered link, sender never connects) must fail the
  // receive within the armed timeout, not hang the machine thread.
  ChannelBroker broker(GetParam());
  DataManager dm(broker);
  dm.set_recv_timeout(0.1);
  dm.setup(TaskWiring{AppId(1), TaskId(1), {TaskId(0)}, {}});
  common::Rng rng(1);
  tasklib::TaskContext ctx{1.0, &rng};
  EXPECT_THROW((void)dm.run(tasklib::builtin_registry(), "synth_sink", ctx),
               TransportError);
  dm.teardown();
}

INSTANTIATE_TEST_SUITE_P(Transports, DataManagerKinds,
                         ::testing::Values(TransportKind::kInProcess,
                                           TransportKind::kTcp));

TEST(DataManagerTest, RunBeforeSetupThrows) {
  ChannelBroker broker(TransportKind::kInProcess);
  DataManager dm(broker);
  common::Rng rng(1);
  tasklib::TaskContext ctx{1.0, &rng};
  EXPECT_THROW((void)dm.run(tasklib::builtin_registry(), "synth_source", ctx),
               StateError);
}

TEST(DataManagerTest, DoubleSetupThrows) {
  ChannelBroker broker(TransportKind::kInProcess);
  DataManager dm(broker);
  dm.setup(TaskWiring{AppId(1), TaskId(0), {}, {}});
  EXPECT_THROW(dm.setup(TaskWiring{AppId(1), TaskId(0), {}, {}}), StateError);
}

TEST(DataManagerTest, StatsAccumulate) {
  ChannelBroker broker(TransportKind::kInProcess);
  DataManager dm(broker);
  dm.setup(TaskWiring{AppId(1), TaskId(0), {}, {}});
  common::Rng rng(1);
  tasklib::TaskContext ctx{1.0, &rng};
  (void)dm.run(tasklib::builtin_registry(), "synth_source", ctx);
  EXPECT_EQ(dm.stats().messages_received, 0u);
  EXPECT_EQ(dm.stats().messages_sent, 0u);
}

TEST(DataManagerTest, InputChannelClosedIsError) {
  ChannelBroker broker(TransportKind::kInProcess);
  const auto& registry = tasklib::builtin_registry();
  TaskWiring wiring{AppId(1), TaskId(1), {TaskId(0)}, {}};

  std::string error;
  std::jthread consumer([&] {
    try {
      DataManager dm(broker);
      dm.setup(wiring);
      common::Rng rng(1);
      tasklib::TaskContext ctx{1.0, &rng};
      (void)dm.run(registry, "synth_sink", ctx);
    } catch (const std::exception& e) {
      error = e.what();
    }
  });
  // The producer connects but closes without sending.
  auto sender =
      broker.open_send(LinkKey{AppId(1), TaskId(0), TaskId(1)}, 5.0);
  sender->close();
  consumer.join();
  EXPECT_NE(error.find("closed"), std::string::npos) << error;
}

// ----------------------------------------------------- frame pool (D13)

TEST(FramePool, SizeClassesRoundUpToPowersOfTwo) {
  FramePool pool;
  EXPECT_EQ(pool.allocate(1).capacity(), 256u);
  EXPECT_EQ(pool.allocate(256).capacity(), 256u);
  EXPECT_EQ(pool.allocate(257).capacity(), 512u);
  EXPECT_EQ(pool.allocate(5000).capacity(), 8192u);

  Frame f = pool.allocate(300);
  EXPECT_EQ(f.size(), 300u);
  f.resize(100);
  EXPECT_EQ(f.size(), 100u);
  f.resize(512);  // re-grow within capacity is fine
  EXPECT_EQ(f.size(), 512u);
  EXPECT_THROW(f.resize(513), StateError);
}

TEST(FramePool, ReusesRecycledSlabs) {
  FramePool pool;
  { Frame f = pool.allocate(1000); }  // heap miss, recycled on drop
  const auto s1 = pool.stats();
  EXPECT_EQ(s1.reuse_misses, 1u);
  EXPECT_EQ(s1.slabs_allocated, 1u);
  EXPECT_EQ(s1.free_slabs, 1u);

  { Frame f = pool.allocate(900); }  // same 1024-byte class: a hit
  const auto s2 = pool.stats();
  EXPECT_EQ(s2.reuse_hits, 1u);
  EXPECT_EQ(s2.slabs_allocated, 1u);

  pool.trim();
  EXPECT_EQ(pool.stats().free_slabs, 0u);
}

TEST(FramePool, ViewPinsSlabAcrossChurn) {
  FramePool pool;
  Frame f = pool.allocate(512);
  for (std::size_t i = 0; i < f.size(); ++i) {
    f.data()[i] = static_cast<std::byte>(i & 0xFF);
  }
  const std::vector<std::byte> expected = f.view().to_vector();
  FrameView pinned = f.view();
  f.reset();  // the view alone now keeps the slab out of the free list

  for (int i = 0; i < 64; ++i) {
    Frame churn = pool.allocate(512);
    std::fill_n(churn.data(), churn.size(), std::byte{0xEE});
  }
  EXPECT_EQ(pinned.to_vector(), expected);

  const auto before = pool.stats();
  pinned.reset();  // last reference: only now does the slab park
  EXPECT_EQ(pool.stats().free_slabs, before.free_slabs + 1);
}

TEST(FramePool, SubviewSharesTheSlab) {
  FramePool pool;
  Frame f = pool.allocate(64);
  for (std::size_t i = 0; i < f.size(); ++i) {
    f.data()[i] = static_cast<std::byte>(i);
  }
  const FrameView whole = f.view();
  const FrameView mid = whole.subview(16, 32);
  EXPECT_EQ(mid.size(), 32u);
  EXPECT_EQ(mid.data(), whole.data() + 16);  // zero-copy: same bytes

  const FrameView nested = mid.subview(8, 8);
  EXPECT_EQ(nested.data(), whole.data() + 24);
  EXPECT_THROW((void)whole.subview(60, 8), StateError);
}

TEST(FramePool, HighWaterTracksPeakUse) {
  FramePool pool;
  {
    Frame a = pool.allocate(1024);
    Frame b = pool.allocate(1024);
    EXPECT_EQ(pool.stats().bytes_in_use, 2048u);
  }
  EXPECT_EQ(pool.stats().bytes_in_use, 0u);
  EXPECT_EQ(pool.stats().high_water_bytes, 2048u);
}

TEST(FramePool, CopyOfMatchesSource) {
  const auto src = bytes_of("copied into the pool");
  const FrameView v = FramePool::global().copy_of(src);
  EXPECT_EQ(v.to_vector(), src);
}

TEST(FramePool, GlobalPoolExportsMetrics) {
  auto& registry = common::MetricsRegistry::global();
  FramePool::global().trim();  // force the next allocation to the heap
  const auto misses_before =
      registry.counter("datamgr.pool.reuse_misses").value();
  const auto slabs_before =
      registry.counter("datamgr.pool.slabs_allocated").value();
  Frame f = FramePool::global().allocate(1 << 14);
  EXPECT_GT(registry.counter("datamgr.pool.reuse_misses").value(),
            misses_before);
  EXPECT_GT(registry.counter("datamgr.pool.slabs_allocated").value(),
            slabs_before);
}

TEST(FramePool, ConcurrentChurnIsSafe) {
  // TSan target: allocation, view copying, subviews, and release racing
  // across threads on one pool.
  FramePool pool;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&pool, t] {
        std::vector<FrameView> held;
        for (int i = 0; i < kIters; ++i) {
          Frame f = pool.allocate(
              static_cast<std::size_t>((t * 37 + i) % 5000) + 1);
          f.data()[0] = static_cast<std::byte>(i);
          FrameView v = f.view();
          FrameView copy = v;  // refcount bump
          if (i % 7 == 0) held.push_back(copy.subview(0, f.size() / 2));
          if (held.size() > 16) held.erase(held.begin());
        }
      });
    }
  }
  EXPECT_EQ(pool.stats().bytes_in_use, 0u);
}

// --------------------------------------------- zero-copy channel paths

TEST(InProcChannel, FrameDeliveryIsZeroCopy) {
  auto pair = make_inproc_pair();
  const FrameView sent = FramePool::global().copy_of(bytes_of("no copies"));
  pair.sender->send_frame(sent);
  const auto got = pair.receiver->receive_frame();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->data(), sent.data());  // the very same slab bytes
  EXPECT_EQ(got->to_vector(), sent.to_vector());
}

TEST(TcpChannel, FrameLimitExactBoundary) {
  TcpListener listener;
  std::unique_ptr<TcpChannel> server_end;
  std::jthread acceptor([&] { server_end = listener.accept(); });
  auto client_end = tcp_connect(listener.port());
  acceptor.join();

  server_end->set_max_message_bytes(64);
  client_end->send(std::vector<std::byte>(64));  // exactly at the limit
  EXPECT_EQ(server_end->receive()->size(), 64u);
  client_end->send(std::vector<std::byte>(65));  // one over
  EXPECT_THROW((void)server_end->receive(), TransportError);
}

TEST(TcpChannel, HugeFrameRoundTripThroughPool) {
  // > 64 MiB through the pooled scatter/gather send and the event-loop
  // receive (exercising backpressure pause/rearm on the way).
  constexpr std::size_t kBytes = (std::size_t{64} << 20) + 4097;
  TcpListener listener;
  std::unique_ptr<TcpChannel> server_end;
  std::jthread acceptor([&] { server_end = listener.accept(); });
  auto client_end = tcp_connect(listener.port());
  acceptor.join();

  Frame big = FramePool::global().allocate(kBytes);
  std::fill_n(big.data(), big.size(), std::byte{0});
  for (std::size_t i = 0; i < kBytes; i += 4093) {
    big.data()[i] = static_cast<std::byte>((i * 2654435761u) >> 13);
  }
  const FrameView sent = big.view();

  std::jthread sender([&] { client_end->send_frame(sent); });
  const auto got = server_end->receive_frame();
  sender.join();
  ASSERT_TRUE(got.has_value());
  ASSERT_EQ(got->size(), kBytes);
  EXPECT_TRUE(std::equal(got->begin(), got->end(), sent.begin()));
  FramePool::global().trim();  // don't keep two 128 MiB slabs parked
}

TEST(TcpChannel, EventLoopKeepsThreadCountFlat) {
  const auto thread_count = [] {
    std::size_t n = 0;
    for ([[maybe_unused]] const auto& entry :
         std::filesystem::directory_iterator("/proc/self/task")) {
      ++n;
    }
    return n;
  };

  TcpListener listener;
  std::vector<std::unique_ptr<TcpChannel>> ends;
  const auto connect_pair = [&] {
    std::unique_ptr<TcpChannel> server_end;
    std::jthread acceptor([&] { server_end = listener.accept(); });
    auto client_end = tcp_connect(listener.port());
    acceptor.join();
    ends.push_back(std::move(server_end));
    ends.push_back(std::move(client_end));
  };

  connect_pair();  // forces the event loop (and its one thread) up
  const std::size_t baseline_threads = thread_count();
  const std::size_t baseline_channels =
      TcpEventLoop::global().channel_count();

  for (int i = 0; i < 16; ++i) connect_pair();

  // 32 more registered connections, zero more threads.
  EXPECT_EQ(TcpEventLoop::global().channel_count(),
            baseline_channels + 32);
  EXPECT_LE(thread_count(), baseline_threads);

  // And they all still move bytes through the one loop.
  ends[1]->send(bytes_of("ping"));
  EXPECT_EQ(string_of(*ends[0]->receive()), "ping");
  ends[33]->send(bytes_of("pong"));
  EXPECT_EQ(string_of(*ends[32]->receive()), "pong");
}

TEST_P(MpLibSweep, FrameRoundTrip) {
  auto pair = make_inproc_pair();
  MessageEndpoint tx(GetParam(), pair.sender);
  MessageEndpoint rx(GetParam(), pair.receiver);
  const auto payload = bytes_of("zero copy tagged");
  tx.send_frame(9, FramePool::global().copy_of(payload));
  const auto msg = rx.receive_frame();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->tag, 9);
  EXPECT_EQ(msg->data.to_vector(), payload);
}

TEST(MpLib, PreparedFrameFansOutToAllConsumers) {
  // The engine's fan-out: one prepare() + serialize, N send_prepared()
  // calls shipping the SAME slab to every consumer link.
  auto a = make_inproc_pair();
  auto b = make_inproc_pair();
  MessageEndpoint tx_a(MpLibrary::kNcs, a.sender);
  MessageEndpoint tx_b(MpLibrary::kNcs, b.sender);
  MessageEndpoint rx_a(MpLibrary::kNcs, a.receiver);
  MessageEndpoint rx_b(MpLibrary::kNcs, b.receiver);

  const auto body = bytes_of("fan-out body");
  PreparedFrame prep = tx_a.prepare(5, body.size());
  ASSERT_EQ(prep.body().size(), body.size());
  std::memcpy(prep.body().data(), body.data(), body.size());
  const FrameView full = prep.frame.view();
  tx_a.send_prepared(full);
  tx_b.send_prepared(full);

  for (auto* rx : {&rx_a, &rx_b}) {
    const auto msg = rx->receive_frame();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->tag, 5);
    EXPECT_EQ(msg->data.to_vector(), body);
    // Zero-copy end to end: the delivered body aliases the prepared slab.
    EXPECT_EQ(msg->data.data(), full.data() + prep.body_offset);
  }

  // Both NCS endpoints advanced their sequence numbers in lockstep, so
  // a follow-up message still passes the receiver's sequence check.
  tx_a.send(6, body);
  EXPECT_EQ(rx_a.receive()->tag, 6);
}

TEST(MpLib, PvmHasNoSingleEnvelope) {
  auto pair = make_inproc_pair();
  MessageEndpoint tx(MpLibrary::kPvm, pair.sender);
  EXPECT_THROW((void)tx.prepare(1, 16), StateError);
}

}  // namespace
}  // namespace vdce::dm
