// Unit and property tests for the task libraries: matrix algebra, FFT,
// C3I kernels, payload encoding and the registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "tasklib/c3i.hpp"
#include "tasklib/fft.hpp"
#include "tasklib/matrix.hpp"
#include "tasklib/payload.hpp"
#include "tasklib/registry.hpp"

namespace vdce::tasklib {
namespace {

using common::Rng;
using common::StateError;

// -------------------------------------------------------------- matrix

TEST(MatrixTest, IdentityMultiplication) {
  Rng rng(1);
  const auto a = Matrix::random(5, 5, rng);
  const auto i = Matrix::identity(5);
  EXPECT_EQ(multiply(a, i), a);
  EXPECT_EQ(multiply(i, a), a);
}

TEST(MatrixTest, MultiplyKnownValues) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  double av[] = {1, 2, 3, 4, 5, 6};
  double bv[] = {7, 8, 9, 10, 11, 12};
  a.data().assign(av, av + 6);
  b.data().assign(bv, bv + 6);
  const auto c = multiply(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
}

TEST(MatrixTest, MultiplyDimensionMismatch) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW((void)multiply(a, b), StateError);
}

TEST(MatrixTest, TransposeInvolution) {
  Rng rng(2);
  const auto a = Matrix::random(3, 7, rng);
  EXPECT_EQ(transpose(transpose(a)), a);
  EXPECT_DOUBLE_EQ(transpose(a).at(4, 2), a.at(2, 4));
}

TEST(LuTest, ReconstructsPA) {
  Rng rng(3);
  const std::size_t n = 8;
  const auto a = Matrix::random(n, n, rng, /*diag_boost=*/2.0);
  const auto f = lu_decompose(a);
  // Rebuild L and U, check L*U == P*A.
  Matrix l = Matrix::identity(n);
  Matrix u(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) l.at(i, j) = f.lu.at(i, j);
    for (std::size_t j = i; j < n; ++j) u.at(i, j) = f.lu.at(i, j);
  }
  const auto lu = multiply(l, u);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(lu.at(i, j), a.at(f.perm[i], j), 1e-9);
    }
  }
}

TEST(LuTest, SolveRecoversKnownSolution) {
  Rng rng(4);
  const std::size_t n = 16;
  const auto a = Matrix::random(n, n, rng, 4.0);
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.uniform(-2.0, 2.0);
  const auto b = multiply(a, x_true);
  const auto x = lu_solve(lu_decompose(a), b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(LuTest, SingularMatrixThrows) {
  Matrix a(3, 3, 0.0);  // all zeros
  EXPECT_THROW((void)lu_decompose(a), StateError);
  Matrix b(2, 2);
  b.at(0, 0) = 1.0;
  b.at(0, 1) = 2.0;
  b.at(1, 0) = 2.0;
  b.at(1, 1) = 4.0;  // rank 1
  EXPECT_THROW((void)lu_decompose(b), StateError);
}

TEST(LuTest, NonSquareThrows) {
  Matrix a(2, 3);
  EXPECT_THROW((void)lu_decompose(a), StateError);
}

TEST(LuTest, PivotingHandlesZeroDiagonal) {
  // [[0, 1], [1, 0]] requires a row swap.
  Matrix a(2, 2);
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  const auto f = lu_decompose(a);
  const auto x = lu_solve(f, std::vector<double>{3.0, 5.0});
  EXPECT_NEAR(x[0], 5.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(InvertTest, InverseTimesOriginalIsIdentity) {
  Rng rng(5);
  const std::size_t n = 10;
  const auto a = Matrix::random(n, n, rng, 3.0);
  const auto inv = invert(a);
  const auto prod = multiply(a, inv);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(prod.at(i, j), i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(DeterminantTest, KnownValues) {
  Matrix a(2, 2);
  a.at(0, 0) = 3.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  EXPECT_NEAR(determinant(a), 10.0, 1e-12);
  EXPECT_NEAR(determinant(Matrix::identity(5)), 1.0, 1e-12);
}

TEST(ResidualTest, ExactSolutionHasTinyResidual) {
  Rng rng(6);
  const auto a = Matrix::random(12, 12, rng, 3.0);
  std::vector<double> x(12, 1.0);
  const auto b = multiply(a, x);
  EXPECT_LT(residual(a, x, b), 1e-12);
  // A perturbed solution has a visible residual.
  x[0] += 0.1;
  EXPECT_GT(residual(a, x, b), 1e-4);
}

// Property: solve works across sizes.
class LuSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuSizeSweep, SolveAccurate) {
  Rng rng(100 + GetParam());
  const std::size_t n = GetParam();
  const auto a = Matrix::random(n, n, rng, static_cast<double>(n));
  std::vector<double> x_true(n, 0.5);
  const auto b = multiply(a, x_true);
  const auto x = lu_solve(lu_decompose(a), b);
  EXPECT_LT(residual(a, x, b), 1e-8 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSizeSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33, 64));

TEST(CholeskyTest, ReconstructsSpd) {
  Rng rng(21);
  const auto a = random_spd(10, rng);
  const auto l = cholesky(a);
  const auto llt = multiply(l, transpose(l));
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      EXPECT_NEAR(llt.at(i, j), a.at(i, j), 1e-9);
    }
  }
  // Strictly lower-triangular factor.
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = i + 1; j < 10; ++j) {
      EXPECT_DOUBLE_EQ(l.at(i, j), 0.0);
    }
  }
}

TEST(CholeskyTest, RejectsNonSpd) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(1, 1) = -1.0;  // negative eigenvalue
  EXPECT_THROW((void)cholesky(a), StateError);
  EXPECT_THROW((void)cholesky(Matrix(2, 3)), StateError);
}

TEST(JacobiSolveTest, ConvergesOnDominantSystem) {
  Rng rng(22);
  const auto a = Matrix::random(12, 12, rng, /*diag_boost=*/14.0);
  std::vector<double> x_true(12, 1.5);
  const auto b = multiply(a, x_true);
  const auto result = jacobi_solve(a, b, 1e-10, 500);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.residual, 1e-9);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_NEAR(result.x[i], 1.5, 1e-7);
  }
}

TEST(JacobiSolveTest, ReportsNonConvergence) {
  // Not diagonally dominant: Jacobi diverges.
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 5.0;
  a.at(1, 0) = 5.0;
  a.at(1, 1) = 1.0;
  const auto result = jacobi_solve(a, {1.0, 1.0}, 1e-10, 50);
  EXPECT_FALSE(result.converged);
}

TEST(JacobiSolveTest, RejectsZeroDiagonal) {
  Matrix a(2, 2);
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  EXPECT_THROW((void)jacobi_solve(a, {1.0, 1.0}), StateError);
}

// ----------------------------------------------------------------- fft

TEST(FftTest, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(48));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(5), 8u);
  EXPECT_EQ(next_pow2(64), 64u);
}

TEST(FftTest, NonPow2Throws) {
  std::vector<Complex> v(6);
  EXPECT_THROW(fft_inplace(v), StateError);
}

TEST(FftTest, DeltaHasFlatSpectrum) {
  std::vector<Complex> v(8, {0.0, 0.0});
  v[0] = {1.0, 0.0};
  const auto spec = fft(v);
  for (const auto& c : spec) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, InverseRecovers) {
  Rng rng(7);
  std::vector<Complex> v(64);
  for (auto& c : v) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const auto rt = ifft(fft(v));
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(rt[i].real(), v[i].real(), 1e-10);
    EXPECT_NEAR(rt[i].imag(), v[i].imag(), 1e-10);
  }
}

TEST(FftTest, SinglePureToneSpectrum) {
  constexpr std::size_t kN = 128;
  constexpr double kFreq = 5.0;
  std::vector<double> signal(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    signal[i] = std::sin(2.0 * M_PI * kFreq * i / kN);
  }
  const auto power = power_spectrum(signal);
  // Peak exactly at bins 5 and N-5.
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < kN / 2; ++i) {
    if (power[i] > power[argmax]) argmax = i;
  }
  EXPECT_EQ(argmax, 5u);
  EXPECT_NEAR(power[5], power[kN - 5], 1e-6);
}

TEST(FftTest, ParsevalHolds) {
  Rng rng(8);
  std::vector<double> signal(256);
  for (auto& s : signal) s = rng.uniform(-1, 1);
  double time_energy = 0.0;
  for (double s : signal) time_energy += s * s;
  const auto power = power_spectrum(signal);
  double freq_energy = 0.0;
  for (double p : power) freq_energy += p;
  EXPECT_NEAR(freq_energy / signal.size(), time_energy, 1e-8);
}

TEST(FftTest, RealInputPadsToPow2) {
  std::vector<double> signal(100, 1.0);
  const auto spec = fft_real(signal);
  EXPECT_EQ(spec.size(), 128u);
}

TEST(FftTest, ConvolutionIdentity) {
  // Convolving with a delta returns the signal.
  std::vector<double> a{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<double> delta{1, 0, 0, 0, 0, 0, 0, 0};
  const auto c = circular_convolve(a, delta);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(c[i], a[i], 1e-10);
}

TEST(FftTest, ConvolutionMatchesDirect) {
  Rng rng(9);
  std::vector<double> a(16), b(16);
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  const auto fast = circular_convolve(a, b);
  for (std::size_t k = 0; k < 16; ++k) {
    double direct = 0.0;
    for (std::size_t j = 0; j < 16; ++j) {
      direct += a[j] * b[(k + 16 - j) % 16];
    }
    EXPECT_NEAR(fast[k], direct, 1e-9);
  }
}

TEST(LowpassTest, RemovesHighTonesKeepsLow) {
  constexpr std::size_t kN = 256;
  std::vector<double> low(kN), high(kN), mixed(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const double t = static_cast<double>(i) / kN;
    low[i] = std::sin(2.0 * M_PI * 4.0 * t);    // bin 4 (kept)
    high[i] = std::sin(2.0 * M_PI * 100.0 * t); // bin 100 (cut)
    mixed[i] = low[i] + high[i];
  }
  const auto filtered = lowpass_filter(mixed, 0.25);  // cutoff bin 32
  double err = 0.0;
  for (std::size_t i = 0; i < kN; ++i) {
    err = std::max(err, std::abs(filtered[i] - low[i]));
  }
  EXPECT_LT(err, 1e-9);
}

TEST(LowpassTest, FullBandIsIdentity) {
  std::vector<double> sig{1, 2, 3, 4, 5, 6, 7, 8};
  const auto out = lowpass_filter(sig, 1.0);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    EXPECT_NEAR(out[i], sig[i], 1e-10);
  }
}

TEST(LowpassTest, RejectsBadCutoff) {
  EXPECT_THROW((void)lowpass_filter({1, 2}, 0.0), StateError);
  EXPECT_THROW((void)lowpass_filter({1, 2}, 1.5), StateError);
}

// ----------------------------------------------------------------- c3i

TEST(C3iTest, ScenarioShape) {
  Rng rng(10);
  ScenarioParams params;
  params.num_targets = 3;
  params.clutter_per_scan = 5;
  const auto scans = generate_scenario(params, 4, 1.0, rng);
  ASSERT_EQ(scans.size(), 4u);
  for (const auto& scan : scans) EXPECT_EQ(scan.size(), 8u);
  EXPECT_DOUBLE_EQ(scans[2].front().time_s, 2.0);
}

TEST(C3iTest, DetectionSeparatesTargetsFromClutter) {
  Rng rng(11);
  ScenarioParams params;  // target intensity 10, clutter < 4
  const auto scans = generate_scenario(params, 3, 1.0, rng);
  for (const auto& scan : scans) {
    const auto dets = detect(scan, 5.0);
    EXPECT_EQ(dets.size(), params.num_targets);
  }
}

TEST(C3iTest, DetectThresholdBoundary) {
  std::vector<SensorReport> reports{{0, 0, 4.999, 0}, {0, 0, 5.0, 0}};
  EXPECT_EQ(detect(reports, 5.0).size(), 1u);
  EXPECT_EQ(detect(reports, 0.0).size(), 2u);
}

TEST(C3iTest, AssociationClaimsClosest) {
  Track t;
  t.id = 1;
  t.x = 0.0;
  t.y = 0.0;
  std::vector<Detection> dets{{5.0, 0.0, 9, 0}, {0.5, 0.0, 9, 0}};
  const auto assoc = associate({t}, dets, 2.0);
  ASSERT_TRUE(assoc.track_to_detection[0].has_value());
  EXPECT_EQ(*assoc.track_to_detection[0], 1u);
  ASSERT_EQ(assoc.unassociated.size(), 1u);
  EXPECT_EQ(assoc.unassociated[0], 0u);
}

TEST(C3iTest, AssociationRespectsGate) {
  Track t;
  t.id = 1;
  std::vector<Detection> dets{{50.0, 50.0, 9, 0}};
  const auto assoc = associate({t}, dets, 2.0);
  EXPECT_FALSE(assoc.track_to_detection[0].has_value());
  EXPECT_EQ(assoc.unassociated.size(), 1u);
}

TEST(C3iTest, TrackerInitiatesFromUnassociated) {
  std::uint32_t next_id = 1;
  FilterParams params;
  std::vector<Detection> dets{{1.0, 2.0, 9, 0.0}, {30.0, 40.0, 9, 0.0}};
  const auto tracks = track_update({}, dets, 0.0, params, next_id);
  EXPECT_EQ(tracks.size(), 2u);
  EXPECT_EQ(next_id, 3u);
}

TEST(C3iTest, TrackerDropsAfterMaxMisses) {
  std::uint32_t next_id = 1;
  FilterParams params;
  params.max_misses = 2;
  std::vector<Track> tracks =
      track_update({}, {{0.0, 0.0, 9, 0.0}}, 0.0, params, next_id);
  ASSERT_EQ(tracks.size(), 1u);
  // Miss repeatedly.
  for (int scan = 1; scan <= 3; ++scan) {
    tracks = track_update(tracks, {}, scan, params, next_id);
  }
  EXPECT_TRUE(tracks.empty());
}

TEST(C3iTest, TrackerConvergesOnStraightMover) {
  std::uint32_t next_id = 1;
  FilterParams params;
  std::vector<Track> tracks;
  // Target moves +1 km/s in x; perfect detections.
  for (int scan = 0; scan < 20; ++scan) {
    const double t = scan;
    tracks = track_update(
        tracks, {{1.0 * t, 5.0, 9.0, t}}, t, params, next_id);
    ASSERT_EQ(tracks.size(), 1u);
  }
  EXPECT_NEAR(tracks[0].x, 19.0, 0.5);
  EXPECT_NEAR(tracks[0].vx, 1.0, 0.2);
  EXPECT_NEAR(tracks[0].vy, 0.0, 0.2);
  EXPECT_EQ(tracks[0].hits, 20);
}

TEST(C3iTest, ThreatRankingOrders) {
  Track near_track;  // close to the defended point
  near_track.id = 1;
  near_track.x = 1.0;
  near_track.y = 0.0;
  Track far_track;
  far_track.id = 2;
  far_track.x = 90.0;
  far_track.y = 90.0;
  const auto threats = rank_threats({far_track, near_track}, 0.0, 0.0);
  ASSERT_EQ(threats.size(), 2u);
  EXPECT_EQ(threats[0].track_id, 1u);
  EXPECT_GT(threats[0].score, threats[1].score);
}

TEST(C3iTest, ClosingSpeedRaisesThreat) {
  Track inbound;
  inbound.id = 1;
  inbound.x = 10.0;
  inbound.vx = -1.0;  // heading for the origin
  Track outbound = inbound;
  outbound.id = 2;
  outbound.vx = +1.0;
  const auto threats = rank_threats({outbound, inbound}, 0.0, 0.0);
  EXPECT_EQ(threats[0].track_id, 1u);
}

TEST(C3iFuseTest, MergesNearbyReports) {
  std::vector<std::vector<SensorReport>> a{{{10.0, 10.0, 5.0, 0.0}}};
  std::vector<std::vector<SensorReport>> b{{{10.2, 10.0, 6.0, 0.0}}};
  const auto fused = fuse_scans(a, b, 0.5);
  ASSERT_EQ(fused.size(), 1u);
  ASSERT_EQ(fused[0].size(), 1u);  // merged into one
  EXPECT_NEAR(fused[0][0].x, 10.1, 1e-12);
  EXPECT_DOUBLE_EQ(fused[0][0].intensity, 11.0);  // reinforced
}

TEST(C3iFuseTest, KeepsDistantReports) {
  std::vector<std::vector<SensorReport>> a{{{10.0, 10.0, 5.0, 0.0}}};
  std::vector<std::vector<SensorReport>> b{{{50.0, 50.0, 6.0, 0.0}}};
  const auto fused = fuse_scans(a, b, 0.5);
  EXPECT_EQ(fused[0].size(), 2u);
}

TEST(C3iFuseTest, RejectsMismatchedScanCounts) {
  std::vector<std::vector<SensorReport>> a(2), b(3);
  EXPECT_THROW((void)fuse_scans(a, b), StateError);
}

TEST(C3iFuseTest, FusionImprovesDetection) {
  // Two noisy sensors, each below threshold alone; fused, the target
  // crosses it.
  std::vector<std::vector<SensorReport>> a{{{10.0, 10.0, 3.0, 0.0}}};
  std::vector<std::vector<SensorReport>> b{{{10.1, 10.0, 3.0, 0.0}}};
  EXPECT_TRUE(detect(a[0], 5.0).empty());
  const auto fused = fuse_scans(a, b);
  EXPECT_EQ(detect(fused[0], 5.0).size(), 1u);
}

// ------------------------------------------------------------- payload

TEST(PayloadTest, ScalarRoundTrip) {
  const auto p = Payload::of_scalar(2.75);
  EXPECT_EQ(p.type(), PayloadType::kScalar);
  EXPECT_DOUBLE_EQ(p.as_scalar(), 2.75);
}

TEST(PayloadTest, TypeMismatchThrows) {
  const auto p = Payload::of_scalar(1.0);
  EXPECT_THROW((void)p.as_matrix(), StateError);
  EXPECT_THROW((void)p.as_tracks(), StateError);
}

TEST(PayloadTest, MatrixRoundTrip) {
  Rng rng(12);
  const auto m = Matrix::random(4, 7, rng);
  EXPECT_EQ(Payload::of_matrix(m).as_matrix(), m);
}

TEST(PayloadTest, LuRoundTrip) {
  Rng rng(13);
  const auto f = lu_decompose(Matrix::random(6, 6, rng, 2.0));
  const auto rt = Payload::of_lu(f).as_lu();
  EXPECT_EQ(rt.lu, f.lu);
  EXPECT_EQ(rt.perm, f.perm);
  EXPECT_EQ(rt.perm_sign, f.perm_sign);
}

TEST(PayloadTest, ComplexVectorRoundTrip) {
  std::vector<Complex> v{{1, 2}, {-3, 4}};
  const auto rt = Payload::of_complex_vector(v).as_complex_vector();
  ASSERT_EQ(rt.size(), 2u);
  EXPECT_EQ(rt[0], v[0]);
  EXPECT_EQ(rt[1], v[1]);
}

TEST(PayloadTest, ReportScansRoundTrip) {
  std::vector<std::vector<SensorReport>> scans{
      {{1, 2, 3, 0}}, {}, {{4, 5, 6, 1}, {7, 8, 9, 1}}};
  EXPECT_EQ(Payload::of_report_scans(scans).as_report_scans(), scans);
}

TEST(PayloadTest, TracksAndThreatsRoundTrip) {
  std::vector<Track> tracks{{1, 2, 3, 4, 5, 6, 1, 9}};
  EXPECT_EQ(Payload::of_tracks(tracks).as_tracks(), tracks);
  std::vector<Threat> threats{{4, 0.5}, {2, 0.25}};
  EXPECT_EQ(Payload::of_threats(threats).as_threats(), threats);
}

TEST(PayloadTest, TextRoundTrip) {
  EXPECT_EQ(Payload::of_text("hello").as_text(), "hello");
}

TEST(PayloadTest, WireImageRoundTrip) {
  const auto p = Payload::of_vector({1.0, 2.0, 3.0});
  const auto wire = p.to_wire();
  const auto rt = Payload::from_wire(wire);
  EXPECT_EQ(rt.type(), PayloadType::kVector);
  EXPECT_EQ(rt.as_vector(), p.as_vector());
  // size_mb matches the body size.
  EXPECT_NEAR(p.size_mb() * 1024.0 * 1024.0,
              static_cast<double>(p.size_bytes()), 1e-9);
}

TEST(PayloadTest, BadWireImageThrows) {
  EXPECT_THROW((void)Payload::from_wire({}), common::ParseError);
  EXPECT_THROW((void)Payload::from_wire({std::byte{0xFF}}),
               common::ParseError);
}

// ------------------------------------------------------------ registry

TEST(RegistryTest, BuiltinsPresent) {
  const auto& reg = builtin_registry();
  EXPECT_GE(reg.size(), 20u);
  const auto menus = reg.menus();
  EXPECT_NE(std::find(menus.begin(), menus.end(), "matrix"), menus.end());
  EXPECT_NE(std::find(menus.begin(), menus.end(), "fourier"), menus.end());
  EXPECT_NE(std::find(menus.begin(), menus.end(), "c3i"), menus.end());
  EXPECT_NE(std::find(menus.begin(), menus.end(), "synthetic"), menus.end());
}

TEST(RegistryTest, MenuGrouping) {
  const auto& reg = builtin_registry();
  const auto matrix_tasks = reg.tasks_in_menu("matrix");
  EXPECT_NE(std::find(matrix_tasks.begin(), matrix_tasks.end(),
                      "lu_decomposition"),
            matrix_tasks.end());
  EXPECT_TRUE(reg.tasks_in_menu("nonexistent").empty());
}

TEST(RegistryTest, DuplicateRejected) {
  TaskRegistry reg;
  register_builtin_tasks(reg);
  EXPECT_THROW(register_builtin_tasks(reg), StateError);
}

TEST(RegistryTest, UnknownTaskThrows) {
  EXPECT_THROW((void)builtin_registry().get("warp_drive"),
               common::NotFoundError);
}

TEST(RegistryTest, ArityEnforced) {
  const auto& reg = builtin_registry();
  Rng rng(14);
  TaskContext ctx{1.0, &rng};
  // lu_decomposition needs exactly one input.
  EXPECT_THROW((void)reg.run("lu_decomposition", {}, ctx), StateError);
  const auto m = Payload::of_matrix(Matrix::identity(4));
  EXPECT_THROW((void)reg.run("lu_decomposition", {m, m}, ctx), StateError);
}

TEST(RegistryTest, InstallDefaultsPopulatesDb) {
  repo::TaskPerformanceDb db;
  builtin_registry().install_defaults(db);
  EXPECT_EQ(db.size(), builtin_registry().size());
  EXPECT_GT(db.get("matrix_inversion").base_time_s,
            db.get("matrix_transpose").base_time_s);
}

TEST(RegistryTest, LinearSolverPipelineComputesCorrectly) {
  const auto& reg = builtin_registry();
  Rng rng(15);
  TaskContext ctx{0.5, &rng};  // 16x16

  const auto a = reg.run("matrix_generate", {}, ctx);
  const auto b = reg.run("vector_generate", {}, ctx);
  const auto lu = reg.run("lu_decomposition", {a}, ctx);
  const auto low = reg.run("lu_lower", {lu}, ctx);
  const auto up = reg.run("lu_upper", {lu}, ctx);
  const auto li = reg.run("matrix_inversion", {low}, ctx);
  const auto ui = reg.run("matrix_inversion", {up}, ctx);
  const auto pb = reg.run("permute_vector", {lu, b}, ctx);
  const auto y = reg.run("matrix_vector_multiply", {li, pb}, ctx);
  const auto x = reg.run("matrix_vector_multiply", {ui, y}, ctx);
  const auto res = reg.run("residual_check", {a, x, b}, ctx);
  EXPECT_LT(res.as_scalar(), 1e-9);
}

TEST(RegistryTest, DirectSolveAgreesWithFactoredPath) {
  const auto& reg = builtin_registry();
  Rng rng(16);
  TaskContext ctx{0.5, &rng};
  const auto a = reg.run("matrix_generate", {}, ctx);
  const auto b = reg.run("vector_generate", {}, ctx);
  const auto x1 = reg.run("linear_solve", {a, b}, ctx);
  const auto lu = reg.run("lu_decomposition", {a}, ctx);
  const auto x2 = reg.run("triangular_solve", {lu, b}, ctx);
  const auto v1 = x1.as_vector();
  const auto v2 = x2.as_vector();
  ASSERT_EQ(v1.size(), v2.size());
  for (std::size_t i = 0; i < v1.size(); ++i) EXPECT_NEAR(v1[i], v2[i], 1e-9);
}

TEST(RegistryTest, C3iChainProducesThreats) {
  const auto& reg = builtin_registry();
  Rng rng(17);
  TaskContext ctx{1.0, &rng};
  const auto scans = reg.run("sensor_ingest", {}, ctx);
  const auto dets = reg.run("target_detect", {scans}, ctx);
  const auto tracks = reg.run("track_filter", {dets}, ctx);
  const auto threats = reg.run("threat_rank", {tracks}, ctx);
  EXPECT_FALSE(threats.as_threats().empty());
  const auto summary = reg.run("c3i_display", {threats}, ctx);
  EXPECT_NE(summary.as_text().find("threats="), std::string::npos);
}

TEST(RegistryTest, SourceScalesWithInputSize) {
  const auto& reg = builtin_registry();
  Rng rng(18);
  TaskContext small{0.5, &rng};
  TaskContext large{2.0, &rng};
  const auto a = reg.run("synth_source", {}, small);
  const auto b = reg.run("synth_source", {}, large);
  EXPECT_LT(a.size_bytes(), b.size_bytes());
}

TEST(RegistryTest, DeterministicGivenSeed) {
  const auto& reg = builtin_registry();
  Rng r1(42), r2(42);
  TaskContext c1{1.0, &r1}, c2{1.0, &r2};
  const auto a = reg.run("matrix_generate", {}, c1);
  const auto b = reg.run("matrix_generate", {}, c2);
  EXPECT_EQ(a.as_matrix(), b.as_matrix());
}

}  // namespace
}  // namespace vdce::tasklib
