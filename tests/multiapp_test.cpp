// Multi-application runtime tests: concurrent AFG admission through the
// AppSubmissionService, residual-capacity QoS, bounded fair-share
// queueing, and the per-app isolation invariant (an app's outputs are a
// pure function of (graph, seed, app id) -- never of what else ran).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "netsim/testbed.hpp"
#include "runtime/submission.hpp"
#include "scheduler/qos.hpp"
#include "scheduler/site_scheduler.hpp"
#include "sim/workloads.hpp"
#include "tasklib/registry.hpp"

namespace vdce::rt {
namespace {

using common::AppId;
using common::HostId;
using common::SiteId;

class MultiAppEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    testbed_ = std::make_unique<netsim::VirtualTestbed>(
        netsim::make_campus_testbed(13));
    repository_ = std::make_unique<repo::SiteRepository>(SiteId(0));
    tasklib::builtin_registry().install_defaults(repository_->tasks());
    testbed_->populate_repository(*repository_, SiteId(0));
    directory_.add_site(SiteId(0), repository_.get());
  }

  /// A cheap two-task pipeline (the fair-share tests run many of them
  /// back to back).
  [[nodiscard]] static afg::FlowGraph tiny_graph(const std::string& name) {
    afg::FlowGraph g(name);
    const auto src = g.add_task("synth_source", "src");
    const auto sink = g.add_task("synth_sink", "sink");
    g.add_link(src, sink, 0.01);
    return g;
  }

  [[nodiscard]] static SubmissionRequest request_for(
      afg::FlowGraph graph, double deadline_s, std::string user,
      double weight = 1.0, std::uint64_t seed = 1) {
    SubmissionRequest request;
    request.graph = std::move(graph);
    request.qos.deadline_s = deadline_s;
    request.user = std::move(user);
    request.weight = weight;
    request.seed = seed;
    return request;
  }

  std::unique_ptr<netsim::VirtualTestbed> testbed_;
  std::unique_ptr<repo::SiteRepository> repository_;
  sched::RepositoryDirectory directory_;
};

// ---------------------------------------------------------- admission

TEST_F(MultiAppEnv, AdmittedAppsMeetDeadlinesAcrossSeeds) {
  // A mixed batch of real applications over shared slots: every
  // admitted app completes, meets its deadline, and executes all of its
  // tasks -- across several engine seeds.
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    AppSubmissionConfig config;
    config.slots = 2;
    AppSubmissionService service(SiteId(0), directory_,
                                 tasklib::builtin_registry(), config);

    const std::vector<afg::FlowGraph> graphs = {
        sim::make_linear_solver_graph(0.25),
        sim::make_c3i_graph(0.25),
        sim::make_fourier_graph(0.25),
        tiny_graph("tiny"),
    };
    constexpr double kDeadline = 1e9;
    std::vector<AppId> apps;
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      apps.push_back(service.submit(request_for(
          graphs[i], kDeadline, "user" + std::to_string(i), 1.0,
          seed + i)));
    }

    for (std::size_t i = 0; i < apps.size(); ++i) {
      const auto status = service.wait(apps[i]);
      EXPECT_EQ(status.state, SubmissionState::kCompleted)
          << "seed " << seed << " app " << i << ": " << status.error;
      EXPECT_TRUE(status.admission.admitted);
      EXPECT_GE(status.admission.slack_s, 0.0);
      EXPECT_LE(status.result.makespan_s, kDeadline);
      EXPECT_EQ(status.result.records.size(), graphs[i].task_count());
      EXPECT_GE(status.grant_index, 1u);
    }

    const auto stats = service.stats();
    EXPECT_EQ(stats.submitted, 4u);
    EXPECT_EQ(stats.completed, 4u);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_EQ(stats.submitted,
              stats.admitted + stats.rejected + stats.queued);
    EXPECT_EQ(stats.queued, stats.queued_then_admitted);
  }
}

TEST_F(MultiAppEnv, WaitOnUnknownTicketThrows) {
  AppSubmissionService service(SiteId(0), directory_,
                               tasklib::builtin_registry());
  EXPECT_THROW((void)service.wait(AppId(999)), common::NotFoundError);
  EXPECT_THROW((void)service.status(AppId(999)), common::NotFoundError);
}

// ---------------------------------------------------------- isolation

TEST_F(MultiAppEnv, ConcurrentAppsAreBitIdenticalToSoloRuns) {
  // The isolation invariant: each app's outputs under 4-way concurrency
  // equal, bit for bit, the outputs of the same (graph, seed, app id)
  // replayed alone on a fresh engine with the same allocation.
  const auto graph = sim::make_linear_solver_graph(0.25);
  const std::vector<std::uint64_t> seeds = {11, 22, 33, 44};

  AppSubmissionConfig config;
  config.slots = 4;
  AppSubmissionService service(SiteId(0), directory_,
                               tasklib::builtin_registry(), config);
  std::vector<AppId> apps;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    apps.push_back(service.submit(request_for(
        graph, 1e9, "user" + std::to_string(i), 1.0, seeds[i])));
  }

  std::vector<SubmissionStatus> statuses;
  for (const AppId app : apps) {
    statuses.push_back(service.wait(app));
    ASSERT_EQ(statuses.back().state, SubmissionState::kCompleted)
        << statuses.back().error;
  }

  for (std::size_t i = 0; i < statuses.size(); ++i) {
    const auto& concurrent = statuses[i];
    EngineConfig engine_config;
    engine_config.seed = seeds[i];
    ExecutionEngine engine(tasklib::builtin_registry(), engine_config);
    const auto solo = engine.execute(graph, concurrent.allocation,
                                     nullptr, nullptr, nullptr,
                                     concurrent.app);
    ASSERT_EQ(solo.outputs.size(), concurrent.result.outputs.size());
    for (const auto& [task, payload] : solo.outputs) {
      EXPECT_EQ(payload.to_wire(),
                concurrent.result.outputs.at(task).to_wire())
          << "app " << i << " task " << task.value();
    }
  }

  // Different seeds genuinely produce different numbers (the invariant
  // above is not vacuous).
  std::vector<std::byte> wire0, wire1;
  for (const auto& [task, payload] : statuses[0].result.outputs) {
    const auto w = payload.to_wire();
    wire0.insert(wire0.end(), w.begin(), w.end());
  }
  for (const auto& [task, payload] : statuses[1].result.outputs) {
    const auto w = payload.to_wire();
    wire1.insert(wire1.end(), w.begin(), w.end());
  }
  EXPECT_NE(wire0, wire1);
}

// ---------------------------------------------------------- fair share

TEST_F(MultiAppEnv, FairShareWeightsOrderGrants) {
  // One slot, paused service: fix the queue, then release and check the
  // stride-scheduling grant order.  alice (weight 2) owns a 0.5 stride,
  // bob (weight 1) a 1.0 stride; hand-simulating the stride race gives
  // A1 B1 A2 A3 B2 A4 B3 B4.
  AppSubmissionConfig config;
  config.slots = 1;
  config.start_paused = true;
  AppSubmissionService service(SiteId(0), directory_,
                               tasklib::builtin_registry(), config);

  std::vector<AppId> alice, bob;
  for (int i = 0; i < 4; ++i) {
    alice.push_back(service.submit(
        request_for(tiny_graph("a" + std::to_string(i)), 1e9, "alice",
                    2.0, 100 + i)));
  }
  for (int i = 0; i < 4; ++i) {
    bob.push_back(service.submit(
        request_for(tiny_graph("b" + std::to_string(i)), 1e9, "bob",
                    1.0, 200 + i)));
  }
  EXPECT_EQ(service.stats().queue_depth, 8u);

  service.resume();
  service.drain();

  std::map<std::size_t, std::string> by_grant;
  for (int i = 0; i < 4; ++i) {
    by_grant[service.status(alice[i]).grant_index] =
        "A" + std::to_string(i + 1);
    by_grant[service.status(bob[i]).grant_index] =
        "B" + std::to_string(i + 1);
  }
  std::vector<std::string> order;
  for (const auto& [grant, label] : by_grant) order.push_back(label);
  const std::vector<std::string> expected = {"A1", "B1", "A2", "A3",
                                             "B2", "A4", "B3", "B4"};
  EXPECT_EQ(order, expected);

  const auto stats = service.stats();
  EXPECT_EQ(stats.queued, 8u);
  EXPECT_EQ(stats.queued_then_admitted, 8u);
  EXPECT_EQ(stats.admitted, 0u);
  EXPECT_EQ(stats.completed, 8u);
}

// --------------------------------------------------------- backpressure

TEST_F(MultiAppEnv, BackpressureBoundsTheReadyQueue) {
  auto& metrics = common::MetricsRegistry::global();
  const auto submitted0 = metrics.counter("submission.submitted").value();
  const auto rejected0 = metrics.counter("submission.rejected").value();
  const auto completed0 = metrics.counter("submission.completed").value();

  AppSubmissionConfig config;
  config.slots = 1;
  config.start_paused = true;
  config.max_queue = 3;
  AppSubmissionService service(SiteId(0), directory_,
                               tasklib::builtin_registry(), config);

  std::vector<AppId> apps;
  for (int i = 0; i < 4; ++i) {
    apps.push_back(service.submit(request_for(
        tiny_graph("bp" + std::to_string(i)), 1e9, "carol", 1.0,
        10 + i)));
  }

  // Queued submissions carry a drain ETA; the overflow one is rejected
  // by backpressure even though its QoS admission held.
  EXPECT_EQ(service.status(apps[1]).state, SubmissionState::kQueued);
  EXPECT_GT(service.status(apps[1]).queue_eta_s, 0.0);
  const auto overflow = service.status(apps[3]);
  EXPECT_EQ(overflow.state, SubmissionState::kRejected);
  EXPECT_TRUE(overflow.admission.admitted);
  EXPECT_NE(overflow.error.find("backpressure"), std::string::npos);
  EXPECT_STREQ(to_string(overflow.state), "rejected");

  service.resume();
  service.drain();

  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.queued, 3u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.admitted, 0u);
  EXPECT_EQ(stats.queued_then_admitted, 3u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.running, 0u);
  // The reconciliation invariants, and their global-registry mirror.
  EXPECT_EQ(stats.submitted,
            stats.admitted + stats.rejected + stats.queued);
  EXPECT_EQ(stats.queued, stats.queued_then_admitted);
  EXPECT_EQ(stats.admitted + stats.queued_then_admitted,
            stats.completed + stats.failed);
  EXPECT_EQ(metrics.counter("submission.submitted").value() - submitted0,
            stats.submitted);
  EXPECT_EQ(metrics.counter("submission.rejected").value() - rejected0,
            stats.rejected);
  EXPECT_EQ(metrics.counter("submission.completed").value() - completed0,
            stats.completed);
}

// --------------------------------------------------- residual admission

TEST_F(MultiAppEnv, ResidualAdmissionReflectsCommittedLoad) {
  // The same deadline that holds on an idle system is refused while an
  // admitted app still owns the hosts, and holds again once it
  // finishes.  Independent same-shape tasks + the queue-blind scheduler
  // stack everything on the best host, so the committed occupancy
  // roughly doubles the second app's estimate.
  common::Rng rng(5);
  sim::SyntheticGraphParams params;
  params.family = sim::GraphFamily::kIndependent;
  params.size = 3;
  params.min_transfer_mb = 0.001;
  params.max_transfer_mb = 0.01;
  const auto graph = sim::make_synthetic_graph(params, rng);

  sched::SiteScheduler scheduler(SiteId(0), directory_);
  const auto baseline_allocation = scheduler.schedule(graph);
  const double idle_estimate = sched::predicted_makespan(
      graph, baseline_allocation, directory_);
  ASSERT_GT(idle_estimate, 0.0);

  AppSubmissionConfig config;
  config.slots = 1;
  config.start_paused = true;
  AppSubmissionService service(SiteId(0), directory_,
                               tasklib::builtin_registry(), config);

  const AppId first =
      service.submit(request_for(graph, 10.0 * idle_estimate, "dan"));
  const auto first_status = service.status(first);
  ASSERT_EQ(first_status.state, SubmissionState::kQueued);
  EXPECT_NEAR(first_status.admission.predicted_makespan_s, idle_estimate,
              1e-9);

  // Second app, same graph, deadline comfortably above the idle
  // estimate -- but the first app's committed host-seconds push the
  // residual estimate past it.
  const double tight_deadline = 1.5 * idle_estimate;
  const AppId second =
      service.submit(request_for(graph, tight_deadline, "erin"));
  const auto second_status = service.status(second);
  EXPECT_EQ(second_status.state, SubmissionState::kRejected);
  EXPECT_FALSE(second_status.admission.admitted);
  EXPECT_GT(second_status.admission.predicted_makespan_s, tight_deadline);
  EXPECT_LT(second_status.admission.slack_s, 0.0);

  service.resume();
  service.drain();

  // The occupancy was released with the first app: the same tight
  // deadline is admitted now.
  const AppId third =
      service.submit(request_for(graph, tight_deadline, "erin"));
  const auto third_status = service.wait(third);
  EXPECT_EQ(third_status.state, SubmissionState::kCompleted)
      << third_status.error;
  EXPECT_NEAR(third_status.admission.predicted_makespan_s, idle_estimate,
              1e-9);
}

// ----------------------------------------------- forecaster commitments

TEST_F(MultiAppEnv, AdmittedAppsRegisterForecasterCommitments) {
  predict::LoadForecaster forecaster;

  AppSubmissionConfig config;
  config.slots = 1;
  config.start_paused = true;
  config.admitted_load_bias = 0.75;
  AppSubmissionService service(SiteId(0), directory_,
                               tasklib::builtin_registry(), config);
  service.add_forecaster(&forecaster);

  const auto version0 = forecaster.version();
  const AppId app =
      service.submit(request_for(tiny_graph("bias"), 1e9, "fred"));
  const auto status = service.status(app);
  ASSERT_EQ(status.state, SubmissionState::kQueued);

  // Every allocated row contributes admitted_load_bias to its primary
  // host while the app is admitted-but-unfinished.
  std::map<HostId, double> expected;
  for (const auto& row : status.allocation.rows()) {
    expected[row.primary_host()] += config.admitted_load_bias;
  }
  ASSERT_FALSE(expected.empty());
  for (const auto& [host, bias] : expected) {
    EXPECT_DOUBLE_EQ(forecaster.load_bias(host), bias);
    const auto forecast = forecaster.forecast(host);
    ASSERT_TRUE(forecast.has_value());
    EXPECT_GE(*forecast, bias);
  }
  EXPECT_GT(forecaster.version(), version0);

  service.resume();
  service.drain();

  // Completion releases every commitment.
  for (const auto& [host, bias] : expected) {
    EXPECT_DOUBLE_EQ(forecaster.load_bias(host), 0.0);
  }
}

}  // namespace
}  // namespace vdce::rt
