// Tests for the D16 streaming execution mode: the streaming tasklib
// family, the StreamingEngine's bounded-channel pipeline, the
// differential wall pinning a finite stream bit-identical to the batch
// ExecutionEngine, windowed checkpoint resume, and the chaos soak
// (host crash mid-stream -> resume from the last window with zero
// re-emitted frames and exact metric reconciliation).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "netsim/chaos.hpp"
#include "netsim/testbed.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/engine.hpp"
#include "runtime/streaming.hpp"
#include "scheduler/allocation.hpp"
#include "tasklib/registry.hpp"
#include "tasklib/streaming.hpp"

namespace vdce::rt {
namespace {

using common::AppId;
using common::HostId;
using common::SiteId;
using common::TaskId;

std::uint64_t counter_value(const char* name) {
  return common::MetricsRegistry::global().counter(name).value();
}

/// The canonical streaming pipeline: windowed source -> 3/2 resampler
/// -> power spectrum -> digesting sink (the C3I sensor chain's shape).
afg::FlowGraph make_pipeline() {
  afg::FlowGraph g("stream_pipeline");
  const TaskId src = g.add_task("stream_window_source", "src");
  const TaskId rs = g.add_task("stream_resample", "rs");
  const TaskId fft = g.add_task("stream_window_fft", "fft");
  const TaskId sink = g.add_task("stream_sink", "sink");
  g.add_link(src, rs, 0.001);
  g.add_link(rs, fft, 0.001);
  g.add_link(fft, sink, 0.001);
  return g;
}

/// One allocation row per task on the given hosts (round-robin).
sched::AllocationTable make_alloc(const afg::FlowGraph& g,
                                  const std::vector<HostId>& hosts) {
  sched::AllocationTable table(g.name());
  std::size_t i = 0;
  for (const auto& node : g.tasks()) {
    sched::AllocationEntry e;
    e.task = node.id;
    e.task_label = node.label;
    e.library_task = node.library_task;
    e.hosts = {hosts[i++ % hosts.size()]};
    e.site = SiteId(0);
    table.add(e);
  }
  return table;
}

/// Distinct synthetic hosts, one per pipeline stage.
std::vector<HostId> fake_hosts() {
  return {HostId(1), HostId(2), HostId(3), HostId(4)};
}

TaskId id_of(const afg::FlowGraph& g, const std::string& label) {
  return *g.find_by_label(label);
}

// ------------------------------------------------- streaming tasklib

TEST(StreamingMenu, RegisteredWithTheBuiltins) {
  const auto& reg = tasklib::builtin_registry();
  for (const char* name : {"stream_window_source", "stream_resample",
                           "stream_window_fft", "stream_sink"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
    EXPECT_EQ(reg.get(name).menu, "streaming");
  }
  const auto menus = reg.menus();
  EXPECT_NE(std::find(menus.begin(), menus.end(), "streaming"), menus.end());
}

TEST(StreamingMenu, WindowedSincHasUnitDcGain) {
  const auto h = tasklib::windowed_sinc_fir(33, 0.25);
  double sum = 0.0;
  for (const double v : h) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_THROW((void)tasklib::windowed_sinc_fir(0, 0.25), common::StateError);
  EXPECT_THROW((void)tasklib::windowed_sinc_fir(8, 0.0), common::StateError);
  EXPECT_THROW((void)tasklib::windowed_sinc_fir(8, 0.7), common::StateError);
}

TEST(StreamingMenu, RationalResamplePreservesLevelAndLength) {
  // A constant signal through a 3/2 converter stays (approximately)
  // constant away from the filter edges, at 3/2 the length.
  const std::vector<double> flat(64, 1.0);
  const auto out = tasklib::rational_resample(flat, 3, 2);
  EXPECT_EQ(out.size(), 96u);
  for (std::size_t i = 32; i < 64; ++i) {
    EXPECT_NEAR(out[i], 1.0, 0.05) << "at " << i;
  }
  EXPECT_TRUE(tasklib::rational_resample({}, 3, 2).empty());
  EXPECT_THROW((void)tasklib::rational_resample(flat, 0, 2),
               common::StateError);
}

// ------------------------------------------------- finite streams

TEST(StreamingEngine, FiniteStreamRunsToEos) {
  const auto graph = make_pipeline();
  const auto alloc = make_alloc(graph, fake_hosts());
  StreamingConfig cfg;
  cfg.seed = 5;
  cfg.frames = 12;
  cfg.channel_capacity = 4;
  StreamingEngine engine(tasklib::builtin_registry(), cfg);

  const auto run = engine.execute(graph, alloc, nullptr, AppId(31));

  EXPECT_EQ(run.source_frames, 12u);
  EXPECT_EQ(run.restarts, 0);
  for (const auto& node : graph.tasks()) {
    EXPECT_EQ(run.stage_frames.at(node.id), 12u) << node.label;
  }
  ASSERT_EQ(run.sinks.size(), 1u);
  const auto& sink = run.sinks.at(id_of(graph, "sink"));
  EXPECT_EQ(sink.label, "sink");
  EXPECT_EQ(sink.frames_emitted, 12u);
  EXPECT_EQ(sink.frames_skipped, 0u);
  EXPECT_GT(sink.bytes_emitted, 0u);
  EXPECT_NE(sink.digest, 0u);
  EXPECT_LE(run.max_ring_occupancy, cfg.channel_capacity);
  EXPECT_GT(run.elapsed_s, 0.0);
}

TEST(StreamingEngine, DeterministicAcrossRuns) {
  const auto graph = make_pipeline();
  const auto alloc = make_alloc(graph, fake_hosts());
  StreamingConfig cfg;
  cfg.seed = 99;
  cfg.frames = 8;
  cfg.collect_outputs = true;

  StreamingEngine a(tasklib::builtin_registry(), cfg);
  StreamingEngine b(tasklib::builtin_registry(), cfg);
  const auto ra = a.execute(graph, alloc, nullptr, AppId(42));
  const auto rb = b.execute(graph, alloc, nullptr, AppId(42));

  const TaskId sink = id_of(graph, "sink");
  EXPECT_EQ(ra.sinks.at(sink).digest, rb.sinks.at(sink).digest);
  EXPECT_EQ(ra.sinks.at(sink).outputs, rb.sinks.at(sink).outputs);
}

TEST(StreamingEngine, BackpressureParksFastProducers) {
  const auto graph = make_pipeline();
  const auto alloc = make_alloc(graph, fake_hosts());
  StreamingConfig cfg;
  cfg.seed = 3;
  cfg.frames = 30;
  cfg.channel_capacity = 2;
  // A deliberately slow sink: upstream stages must fill their bounded
  // rings and park instead of buffering ahead without limit.
  cfg.on_sink_frame = [](TaskId, std::uint64_t k) {
    if (k < 10) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  };
  StreamingEngine engine(tasklib::builtin_registry(), cfg);

  const auto run = engine.execute(graph, alloc, nullptr, AppId(33));

  EXPECT_EQ(run.sinks.at(id_of(graph, "sink")).frames_emitted, 30u);
  EXPECT_LE(run.max_ring_occupancy, 2u);
  EXPECT_GT(run.producer_parks, 0u);
}

TEST(StreamingEngine, TracksSourceToSinkLatency) {
  const auto graph = make_pipeline();
  const auto alloc = make_alloc(graph, fake_hosts());
  StreamingConfig cfg;
  cfg.seed = 4;
  cfg.frames = 10;
  cfg.track_latency = true;
  StreamingEngine engine(tasklib::builtin_registry(), cfg);

  const auto run = engine.execute(graph, alloc, nullptr, AppId(34));

  ASSERT_EQ(run.sink_latencies_s.size(), 10u);
  for (const double s : run.sink_latencies_s) EXPECT_GT(s, 0.0);
}

TEST(StreamingEngine, RequestStopEndsAnUnboundedStream) {
  const auto graph = make_pipeline();
  const auto alloc = make_alloc(graph, fake_hosts());
  StreamingEngine* engine_ptr = nullptr;
  StreamingConfig cfg;
  cfg.seed = 6;
  cfg.frames = 0;  // unbounded
  cfg.on_sink_frame = [&engine_ptr](TaskId, std::uint64_t k) {
    if (k >= 5) engine_ptr->request_stop();
  };
  StreamingEngine engine(tasklib::builtin_registry(), cfg);
  engine_ptr = &engine;

  const auto run = engine.execute(graph, alloc, nullptr, AppId(35));

  const auto& sink = run.sinks.at(id_of(graph, "sink"));
  EXPECT_GE(sink.frames_emitted, 6u);   // frames 0..5 at least
  EXPECT_EQ(sink.frames_emitted, run.stage_frames.at(id_of(graph, "sink")));
}

// --------------------------------------------- differential test wall

/// A finite stream must be bit-identical to the batch ExecutionEngine:
/// frame k of the stream equals a batch run of the same AFG with
/// EngineConfig.seed = stream_frame_seed(seed, k) and the same app id,
/// output wire for output wire.
class StreamBatchDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamBatchDifferential, FiniteStreamMatchesBatchEngine) {
  const std::uint64_t seed = GetParam();
  constexpr std::uint64_t kFrames = 5;
  const auto graph = make_pipeline();
  const auto alloc = make_alloc(graph, fake_hosts());
  const TaskId sink = id_of(graph, "sink");
  const AppId app(55);

  StreamingConfig cfg;
  cfg.seed = seed;
  cfg.frames = kFrames;
  cfg.collect_outputs = true;
  StreamingEngine streaming(tasklib::builtin_registry(), cfg);
  const auto stream_run = streaming.execute(graph, alloc, nullptr, app);

  const auto& sink_res = stream_run.sinks.at(sink);
  ASSERT_EQ(sink_res.outputs.size(), kFrames);
  EXPECT_EQ(sink_res.frames_emitted, kFrames);
  EXPECT_EQ(stream_run.source_frames, kFrames);

  for (std::uint64_t k = 0; k < kFrames; ++k) {
    EngineConfig batch_cfg;
    batch_cfg.seed = stream_frame_seed(seed, k);
    ExecutionEngine batch(tasklib::builtin_registry(), batch_cfg);
    const auto batch_run =
        batch.execute(graph, alloc, nullptr, nullptr, nullptr, app);
    EXPECT_EQ(batch_run.outputs.at(sink).to_wire(), sink_res.outputs[k])
        << "frame " << k << " diverged from the batch engine";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamBatchDifferential,
                         ::testing::Values(11u, 29u, 47u));

// ------------------------------------- faults, checkpoints, resume

/// Kills one synthetic host on cue from the sink.
struct FaultPlan {
  std::atomic<bool> dead{false};
  HostId victim;

  FaultTolerance hooks() {
    FaultTolerance ft;
    ft.host_alive = [this](HostId h) {
      return !(dead.load(std::memory_order_relaxed) && h == victim);
    };
    ft.reschedule = [](const afg::TaskNode& node,
                       const std::vector<HostId>&)
        -> std::optional<sched::AllocationEntry> {
      sched::AllocationEntry e;
      e.task = node.id;
      e.task_label = node.label;
      e.library_task = node.library_task;
      e.hosts = {HostId(90 + node.id.value())};  // a fresh standby
      e.site = SiteId(0);
      return e;
    };
    ft.sleep = [](double) {};  // virtual backoff
    return ft;
  }
};

TEST(StreamingEngine, ResumesFromTheLastCheckpointWindowAfterACrash) {
  const auto graph = make_pipeline();
  const auto alloc = make_alloc(graph, fake_hosts());
  const TaskId sink = id_of(graph, "sink");
  constexpr std::uint64_t kFrames = 24;
  constexpr std::uint64_t kWindow = 4;
  const AppId app(60);

  // Fault-free reference digest (same app id => same per-frame seeds).
  std::uint64_t reference_digest = 0;
  {
    StreamingConfig cfg;
    cfg.seed = 7;
    cfg.frames = kFrames;
    cfg.channel_capacity = 2;
    StreamingEngine engine(tasklib::builtin_registry(), cfg);
    reference_digest =
        engine.execute(graph, alloc, nullptr, app).sinks.at(sink).digest;
  }

  FaultPlan plan;
  plan.victim = alloc.entry(id_of(graph, "rs")).primary_host();
  StreamingConfig cfg;
  cfg.seed = 7;
  cfg.frames = kFrames;
  cfg.channel_capacity = 2;  // keeps frames in flight past the crash
  cfg.checkpoint_window = kWindow;
  cfg.on_sink_frame = [&plan](TaskId, std::uint64_t k) {
    if (k == 10) plan.dead.store(true, std::memory_order_relaxed);
  };
  const FaultTolerance ft = plan.hooks();
  CheckpointStore store;
  StreamingEngine engine(tasklib::builtin_registry(), cfg);

  const auto run = engine.execute(graph, alloc, &ft, app, &store);

  const auto& s = run.sinks.at(sink);
  EXPECT_EQ(run.restarts, 1);
  EXPECT_GE(run.reschedules, 1u);
  // Exactly-once emission: every frame counted once, despite the
  // re-flow below the watermark after the resume.
  EXPECT_EQ(s.frames_emitted, kFrames);
  EXPECT_EQ(s.frames_rolled_back, 0u);  // the sink's host survived
  EXPECT_EQ(run.stage_frames.at(sink), kFrames + s.frames_skipped);
  // The resume started at a durable window boundary, not frame zero:
  // the sink had emitted past frame 10 when the crash hit, so at least
  // windows 1 and 2 (frames 0..7) were durable.
  EXPECT_GE(run.frames_resumed, 8u);
  EXPECT_EQ(run.frames_resumed % kWindow, 0u);
  EXPECT_GE(s.windows_captured, kFrames / kWindow);
  // Bit-identical to the fault-free stream.
  EXPECT_EQ(s.digest, reference_digest);
}

TEST(StreamingEngine, WithoutACheckpointStoreTheStreamReplaysFromZero) {
  const auto graph = make_pipeline();
  const auto alloc = make_alloc(graph, fake_hosts());
  const TaskId sink = id_of(graph, "sink");
  constexpr std::uint64_t kFrames = 24;

  FaultPlan plan;
  plan.victim = alloc.entry(id_of(graph, "rs")).primary_host();
  StreamingConfig cfg;
  cfg.seed = 8;
  cfg.frames = kFrames;
  cfg.channel_capacity = 2;
  cfg.on_sink_frame = [&plan](TaskId, std::uint64_t k) {
    if (k == 10) plan.dead.store(true, std::memory_order_relaxed);
  };
  const FaultTolerance ft = plan.hooks();
  StreamingEngine engine(tasklib::builtin_registry(), cfg);

  const auto run = engine.execute(graph, alloc, &ft, AppId(61));

  const auto& s = run.sinks.at(sink);
  EXPECT_EQ(run.restarts, 1);
  EXPECT_EQ(run.frames_resumed, 0u);  // no durable window to resume from
  EXPECT_EQ(s.frames_emitted, kFrames);  // still exactly once (watermark)
  // The whole emitted prefix re-flowed and was skipped: the cost the
  // windowed checkpoints exist to avoid.
  EXPECT_GE(s.frames_skipped, 11u);
}

TEST(StreamingEngine, ResumeSpansSeparateExecuteCalls) {
  // Process-restart shape: a first run streams 12 frames and captures
  // its windows; a second run of the same app with a larger target
  // resumes at the durable watermark instead of frame zero.
  const auto graph = make_pipeline();
  const auto alloc = make_alloc(graph, fake_hosts());
  const TaskId sink = id_of(graph, "sink");
  const AppId app(62);
  CheckpointStore store;

  StreamingConfig first;
  first.seed = 21;
  first.frames = 12;
  first.checkpoint_window = 4;
  {
    StreamingEngine engine(tasklib::builtin_registry(), first);
    const auto run = engine.execute(graph, alloc, nullptr, app, &store);
    EXPECT_EQ(run.sinks.at(sink).frames_emitted, 12u);
  }

  StreamingConfig second = first;
  second.frames = 24;
  StreamingEngine engine(tasklib::builtin_registry(), second);
  const auto resumed = engine.execute(graph, alloc, nullptr, app, &store);
  EXPECT_EQ(resumed.source_frames, 12u);  // only the tail was streamed
  EXPECT_EQ(resumed.sinks.at(sink).frames_emitted, 24u);
  EXPECT_EQ(resumed.sinks.at(sink).frames_skipped, 0u);

  // Digest continuity: identical to one uninterrupted 24-frame run.
  StreamingConfig whole = second;
  StreamingEngine reference(tasklib::builtin_registry(), whole);
  const auto ref = reference.execute(graph, alloc, nullptr, app);
  EXPECT_EQ(resumed.sinks.at(sink).digest, ref.sinks.at(sink).digest);
}

TEST(StreamingEngine, FailureWithoutReschedulerThrowsAfterUnparking) {
  const auto graph = make_pipeline();
  const auto alloc = make_alloc(graph, fake_hosts());

  FaultPlan plan;
  plan.victim = alloc.entry(id_of(graph, "rs")).primary_host();
  StreamingConfig cfg;
  cfg.seed = 9;
  cfg.frames = 20;
  cfg.channel_capacity = 2;
  cfg.on_sink_frame = [&plan](TaskId, std::uint64_t k) {
    if (k == 3) plan.dead.store(true, std::memory_order_relaxed);
  };
  FaultTolerance ft = plan.hooks();
  ft.reschedule = nullptr;  // detection without recovery
  StreamingEngine engine(tasklib::builtin_registry(), cfg);

  // Every stage must be unparked and joined before the throw; a hang
  // here is the bug this guards against.
  EXPECT_THROW((void)engine.execute(graph, alloc, &ft, AppId(63)),
               common::StateError);
}

// ------------------------------------------------------- chaos soak

TEST(StreamingChaos, HostCrashMidStreamResumesWithExactReconciliation) {
  netsim::VirtualTestbed bed(netsim::make_campus_testbed(13));
  const auto graph = make_pipeline();
  const auto site_hosts = bed.hosts_in_site(SiteId(0));
  ASSERT_GE(site_hosts.size(), 4u);
  const auto alloc = make_alloc(graph, site_hosts);
  const TaskId sink = id_of(graph, "sink");
  constexpr std::uint64_t kFrames = 30;
  constexpr std::uint64_t kWindow = 5;
  const AppId app(64);

  // Fault-free reference first (its metrics are not part of the
  // deltas measured around the chaos run).
  std::uint64_t reference_digest = 0;
  {
    StreamingConfig cfg;
    cfg.seed = 17;
    cfg.frames = kFrames;
    cfg.channel_capacity = 2;
    StreamingEngine engine(tasklib::builtin_registry(), cfg);
    reference_digest =
        engine.execute(graph, alloc, nullptr, app).sinks.at(sink).digest;
  }

  // The resampler's host crashes at t=10 and never comes back; the
  // sink advances the testbed clock into the crash window mid-stream.
  const HostId victim = alloc.entry(id_of(graph, "rs")).primary_host();
  netsim::ChaosSchedule schedule;
  netsim::ChaosEvent crash;
  crash.kind = netsim::ChaosEventKind::kHostCrash;
  crash.host = victim;
  crash.start = 10.0;
  crash.length = 1e9;
  schedule.add(crash);
  schedule.apply(bed);
  bed.set_live_time(0.0);

  StreamingConfig cfg;
  cfg.seed = 17;
  cfg.frames = kFrames;
  cfg.channel_capacity = 2;
  cfg.checkpoint_window = kWindow;
  cfg.on_sink_frame = [&bed](TaskId, std::uint64_t k) {
    if (k == 12) bed.set_live_time(15.0);  // into the crash window
  };
  FaultTolerance ft;
  ft.host_alive = bed.liveness_probe();
  ft.reschedule = [&](const afg::TaskNode& node,
                      const std::vector<HostId>& excluded)
      -> std::optional<sched::AllocationEntry> {
    for (const HostId h : site_hosts) {
      if (std::find(excluded.begin(), excluded.end(), h) != excluded.end()) {
        continue;
      }
      if (!bed.is_alive(h, bed.live_time())) continue;
      sched::AllocationEntry e;
      e.task = node.id;
      e.task_label = node.label;
      e.library_task = node.library_task;
      e.hosts = {h};
      e.site = SiteId(0);
      return e;
    }
    return std::nullopt;
  };
  ft.sleep = [](double) {};
  CheckpointStore store;
  StreamingEngine engine(tasklib::builtin_registry(), cfg);

  const std::uint64_t emitted0 = counter_value("streaming.frames_emitted");
  const std::uint64_t skipped0 = counter_value("streaming.frames_skipped");
  const std::uint64_t resumed0 = counter_value("streaming.frames_resumed");
  const std::uint64_t restarts0 = counter_value("streaming.restarts");
  const std::uint64_t windows0 = counter_value("streaming.windows_captured");
  const std::uint64_t rolled0 = counter_value("streaming.frames_rolled_back");

  const auto run = engine.execute(graph, alloc, &ft, app, &store);

  const auto& s = run.sinks.at(sink);
  EXPECT_GE(run.restarts, 1);
  EXPECT_GE(run.reschedules, 1u);
  // Zero re-emitted frames at the sink: the final count is exact.
  EXPECT_EQ(s.frames_emitted, kFrames);
  // Resume came from a durable window boundary (sink was past frame
  // 12 when the crash hit => windows for frames 0..9 were durable).
  EXPECT_GE(run.frames_resumed, 10u);
  EXPECT_EQ(run.frames_resumed % kWindow, 0u);
  // Bit-identical to the fault-free stream.
  EXPECT_EQ(s.digest, reference_digest);

  // Exact metric reconciliation: the global counters moved by exactly
  // what this run reports.
  EXPECT_EQ(counter_value("streaming.frames_emitted") - emitted0, kFrames);
  EXPECT_EQ(counter_value("streaming.frames_skipped") - skipped0,
            s.frames_skipped);
  EXPECT_EQ(counter_value("streaming.frames_resumed") - resumed0,
            run.frames_resumed);
  EXPECT_EQ(counter_value("streaming.restarts") - restarts0,
            static_cast<std::uint64_t>(run.restarts));
  EXPECT_EQ(counter_value("streaming.windows_captured") - windows0,
            s.windows_captured);
  EXPECT_EQ(counter_value("streaming.frames_rolled_back") - rolled0,
            s.frames_rolled_back);
  EXPECT_EQ(s.frames_rolled_back, 0u);  // the sink's host survived
}

}  // namespace
}  // namespace vdce::rt
