// Admission front-door tests (DESIGN.md D15): the sharded stride
// fair-share queue (grant order, fairness properties, returning-user
// clamp, pass renormalization, idle-share eviction), batched QoS
// admission, the load-shedding tiers (early shed, priority preemption,
// bulk shed), and terminal-record retirement.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "netsim/testbed.hpp"
#include "runtime/fair_share.hpp"
#include "runtime/submission.hpp"
#include "scheduler/qos.hpp"
#include "scheduler/site_scheduler.hpp"
#include "sim/workloads.hpp"
#include "tasklib/registry.hpp"

namespace vdce::rt {
namespace {

using common::AppId;
using common::SiteId;

/// Jain's fairness index over per-user grant counts: (sum x)^2 /
/// (n * sum x^2); 1.0 is perfectly even, 1/n is maximally skewed.
[[nodiscard]] double jain_index(const std::vector<std::size_t>& grants) {
  double sum = 0.0, sum_sq = 0.0;
  for (const std::size_t g : grants) {
    const double x = static_cast<double>(g);
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(grants.size()) * sum_sq);
}

[[nodiscard]] FairShareEntry entry_of(std::uint64_t seq, int priority = 0,
                                      double weight = 1.0,
                                      bool preemptible = true) {
  FairShareEntry entry;
  entry.app = AppId(static_cast<std::uint32_t>(seq));
  entry.seq = seq;
  entry.priority = priority;
  entry.weight = weight;
  entry.preemptible = preemptible;
  return entry;
}

class AdmissionEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    testbed_ = std::make_unique<netsim::VirtualTestbed>(
        netsim::make_campus_testbed(13));
    repository_ = std::make_unique<repo::SiteRepository>(SiteId(0));
    tasklib::builtin_registry().install_defaults(repository_->tasks());
    testbed_->populate_repository(*repository_, SiteId(0));
    directory_.add_site(SiteId(0), repository_.get());
  }

  [[nodiscard]] static afg::FlowGraph tiny_graph(const std::string& name) {
    afg::FlowGraph g(name);
    const auto src = g.add_task("synth_source", "src");
    const auto sink = g.add_task("synth_sink", "sink");
    g.add_link(src, sink, 0.01);
    return g;
  }

  [[nodiscard]] static SubmissionRequest request_for(
      afg::FlowGraph graph, std::string user, double weight = 1.0,
      int priority = 0, double deadline_s = 1e9) {
    SubmissionRequest request;
    request.graph = std::move(graph);
    request.qos.deadline_s = deadline_s;
    request.user = std::move(user);
    request.weight = weight;
    request.priority = priority;
    return request;
  }

  std::unique_ptr<netsim::VirtualTestbed> testbed_;
  std::unique_ptr<repo::SiteRepository> repository_;
  sched::RepositoryDirectory directory_;
};

// ------------------------------------------------ queue: fairness laws

TEST(FairShareQueue, EqualWeightsAreNearPerfectlyFair) {
  // 64 equal-weight users with deep backlogs; 10k grants must split
  // almost exactly evenly (stride scheduling is deterministic, so the
  // index should be essentially 1).
  constexpr std::size_t kUsers = 64;
  constexpr std::size_t kPerUser = 200;
  constexpr std::size_t kGrants = 10000;
  FairShareQueue queue;
  std::uint64_t seq = 1;
  for (std::size_t e = 0; e < kPerUser; ++e) {
    for (std::size_t u = 0; u < kUsers; ++u) {
      queue.push("user" + std::to_string(u), entry_of(seq++));
    }
  }

  std::map<std::uint32_t, std::size_t> by_app_user;
  std::vector<std::size_t> grants(kUsers, 0);
  for (std::size_t g = 0; g < kGrants; ++g) {
    const auto entry = queue.pop();
    ASSERT_TRUE(entry.has_value());
    // Recover the user from the round-robin push order.
    grants[(entry->seq - 1) % kUsers]++;
  }
  const double jain = jain_index(grants);
  EXPECT_GE(jain, 0.95);
  // Stronger than the property bound: stride keeps every user within
  // one grant of the ideal share.
  for (const std::size_t g : grants) {
    EXPECT_NEAR(static_cast<double>(g),
                static_cast<double>(kGrants) / kUsers, 1.0);
  }
}

TEST(FairShareQueue, WeightedUsersReceiveProportionalGrants) {
  // Weights 1:2:4 with deep backlogs; over 700 grants each user's count
  // must sit within 5% of its weighted share.
  const std::vector<double> weights = {1.0, 2.0, 4.0};
  constexpr std::size_t kPerUser = 500;
  constexpr std::size_t kGrants = 700;
  FairShareQueue queue;
  std::uint64_t seq = 1;
  for (std::size_t e = 0; e < kPerUser; ++e) {
    for (std::size_t u = 0; u < weights.size(); ++u) {
      queue.push("w" + std::to_string(u),
                 entry_of(seq++, 0, weights[u]));
    }
  }

  std::vector<std::size_t> grants(weights.size(), 0);
  for (std::size_t g = 0; g < kGrants; ++g) {
    const auto entry = queue.pop();
    ASSERT_TRUE(entry.has_value());
    grants[(entry->seq - 1) % weights.size()]++;
  }
  const double total_weight = 7.0;
  for (std::size_t u = 0; u < weights.size(); ++u) {
    const double expected = kGrants * weights[u] / total_weight;
    EXPECT_NEAR(static_cast<double>(grants[u]), expected,
                0.05 * expected)
        << "user " << u;
  }
}

// -------------------------------------- queue: returning-user clamp

TEST(FairShareQueue, ReturningUserIsClampedToGrantClock) {
  // The PR 8 starvation fix at queue level: bob races alone for a
  // while, then alice returns.  Her stale pass must be clamped to the
  // grant clock -- she may not bank the grants she did not contend for.
  FairShareQueue queue;
  queue.push("alice", entry_of(1));
  queue.push("bob", entry_of(2));
  EXPECT_EQ(queue.pop()->seq, 1u);  // tie at 0, alice's seq is lower
  EXPECT_EQ(queue.pop()->seq, 2u);
  // Bob alone: six grants walk the clock to 6.
  for (std::uint64_t s = 3; s <= 8; ++s) queue.push("bob", entry_of(s));
  for (std::uint64_t s = 3; s <= 8; ++s) EXPECT_EQ(queue.pop()->seq, s);
  EXPECT_DOUBLE_EQ(queue.grant_pass(), 6.0);

  // Alice returns (weight 2, stride 0.5) against bob (weight 1).  With
  // the clamp she re-joins at 6 and the race interleaves 2:1; with the
  // seed logic she would keep pass 1.0 and sweep all four first.
  for (std::uint64_t s = 9; s <= 12; ++s) {
    queue.push("alice", entry_of(s, 0, 2.0));
  }
  for (std::uint64_t s = 13; s <= 16; ++s) queue.push("bob", entry_of(s));
  std::vector<std::uint64_t> order;
  while (const auto entry = queue.pop()) order.push_back(entry->seq);
  const std::vector<std::uint64_t> expected = {9, 10, 11, 13,
                                               12, 14, 15, 16};
  EXPECT_EQ(order, expected);
}

TEST_F(AdmissionEnv, ReturningUserCannotSweepGrantsAfterAbsence) {
  // Service-level regression for the returning-user stride burst: the
  // grant order after alice's absence must interleave, not hand alice
  // a banked backlog of wins.
  AppSubmissionConfig config;
  config.slots = 1;
  config.start_paused = true;
  AppSubmissionService service(SiteId(0), directory_,
                               tasklib::builtin_registry(), config);

  // Phase 1: one app each; alice (weight 2) and bob (weight 1) tie at
  // pass 0, the clock stays 0.
  (void)service.submit(request_for(tiny_graph("p1a"), "alice", 2.0));
  (void)service.submit(request_for(tiny_graph("p1b"), "bob", 1.0));
  service.resume();
  service.drain();

  // Phase 2: bob races alone for six grants; the clock walks to 6
  // while alice sits out.
  service.pause();
  for (int i = 0; i < 6; ++i) {
    (void)service.submit(
        request_for(tiny_graph("p2b" + std::to_string(i)), "bob", 1.0));
  }
  service.resume();
  service.drain();

  // Phase 3: both return with four apps each.  Clamped to the clock,
  // alice interleaves 2:1 with bob; with the seed logic her stale pass
  // 0.5 would win all four grants before bob got one.
  service.pause();
  std::vector<AppId> alice, bob;
  for (int i = 0; i < 4; ++i) {
    alice.push_back(service.submit(
        request_for(tiny_graph("p3a" + std::to_string(i)), "alice", 2.0)));
  }
  for (int i = 0; i < 4; ++i) {
    bob.push_back(service.submit(
        request_for(tiny_graph("p3b" + std::to_string(i)), "bob", 1.0)));
  }
  service.resume();
  service.drain();

  std::map<std::size_t, std::string> by_grant;
  for (int i = 0; i < 4; ++i) {
    by_grant[service.status(alice[i]).grant_index] =
        "A" + std::to_string(i + 1);
    by_grant[service.status(bob[i]).grant_index] =
        "B" + std::to_string(i + 1);
  }
  std::vector<std::string> order;
  for (const auto& [grant, label] : by_grant) order.push_back(label);
  const std::vector<std::string> expected = {"A1", "A2", "A3", "B1",
                                             "A4", "B2", "B3", "B4"};
  EXPECT_EQ(order, expected);
}

// ------------------------------------------- queue: renormalization

TEST(FairShareQueue, RenormalizationSurvivesExtremeWeightRatios) {
  // Long-horizon precision: at a grant clock near 2^53 a heavy user's
  // stride of 1e-6 is smaller than the float spacing, so without
  // renormalization the pass would silently stop advancing and the
  // weighted race would collapse into FIFO.  The clock crossing the
  // threshold must renormalize every pass and keep the 1e6:1 ratio
  // effective.
  FairShareQueue queue;  // renorm_threshold = 1e9
  queue.set_grant_pass_for_test(9.1e15);  // past 2^53

  for (std::uint64_t s = 1; s <= 100; ++s) {
    queue.push("light", entry_of(s, 0, 1.0));
  }
  for (std::uint64_t s = 101; s <= 200; ++s) {
    queue.push("heavy", entry_of(s, 0, 1e6));
  }

  std::size_t heavy_done_at = 0;
  for (std::size_t pos = 1; pos <= 200; ++pos) {
    const auto entry = queue.pop();
    ASSERT_TRUE(entry.has_value());
    if (entry->seq > 100) heavy_done_at = pos;
  }
  // The first pop crosses the threshold and renormalizes; from then on
  // the heavy user's 1e-6 strides land, so its entire backlog drains
  // within a handful of light grants.  (Un-renormalized, heavy_done_at
  // would be pinned near 200 by the swallowed increments.)
  EXPECT_GE(queue.stats().renormalizations, 1u);
  EXPECT_LT(queue.grant_pass(), 1e9);
  EXPECT_LE(heavy_done_at, 110u);
}

TEST(FairShareQueue, RenormalizationPreservesRelativeOrder) {
  // Renormalizing must not reorder users: relative pass distances are
  // preserved (modulo the clamp at zero).
  FairShareConfig config;
  config.renorm_threshold = 10.0;
  FairShareQueue queue(config);
  // Walk the clock past the threshold with a throwaway user.
  for (std::uint64_t s = 1; s <= 12; ++s) queue.push("walker", entry_of(s));
  for (std::uint64_t s = 1; s <= 12; ++s) (void)queue.pop();
  EXPECT_GE(queue.stats().renormalizations, 1u);

  // Post-renorm, a fresh weighted race behaves exactly as from zero.
  for (std::uint64_t s = 20; s < 24; ++s) {
    queue.push("fast", entry_of(s, 0, 2.0));
  }
  for (std::uint64_t s = 30; s < 34; ++s) {
    queue.push("slow", entry_of(s, 0, 1.0));
  }
  std::vector<std::uint64_t> order;
  while (const auto entry = queue.pop()) order.push_back(entry->seq);
  const std::vector<std::uint64_t> expected = {20, 30, 21, 22,
                                               31, 23, 32, 33};
  EXPECT_EQ(order, expected);
}

// ---------------------------------------- queue: idle-share eviction

TEST(FairShareQueue, IdleSharesAreEvictedUnderCapAndOvertake) {
  FairShareConfig config;
  config.shards = 1;
  config.max_shares_per_shard = 4;
  FairShareQueue queue(config);

  // Ten one-shot users: each goes idle after its single grant.  The
  // per-shard cap must evict the least-indebted idle shares; active
  // users are never candidates.
  for (std::uint64_t s = 1; s <= 10; ++s) {
    queue.push("once" + std::to_string(s), entry_of(s));
    (void)queue.pop();
  }
  EXPECT_LE(queue.user_count(), 4u);
  EXPECT_GE(queue.stats().shares_evicted, 6u);

  // Overtake eviction: advance the clock past the idle users' passes
  // with a busy user; the sweep drops every overtaken idle share --
  // invisible, because a returning user is clamped to the clock anyway.
  for (std::uint64_t s = 11; s <= 16; ++s) queue.push("busy", entry_of(s));
  for (std::uint64_t s = 11; s <= 16; ++s) (void)queue.pop();
  EXPECT_DOUBLE_EQ(queue.grant_pass(), 5.0);
  EXPECT_LE(queue.user_count(), 1u);  // only "busy" may survive
  EXPECT_EQ(queue.size(), 0u);
}

// --------------------------------------------- queue: concurrency

TEST(FairShareQueue, ConcurrentPushPopPreemptShedReconciles) {
  // 4 pushers, 2 poppers, 1 preempt/shed thread hammer one queue; every
  // entry must leave exactly once (granted, preempted or shed).
  constexpr std::size_t kPushers = 4;
  constexpr std::size_t kPerPusher = 500;
  constexpr std::size_t kTotal = kPushers * kPerPusher;
  FairShareConfig config;
  config.shards = 4;
  FairShareQueue queue(config);

  std::atomic<std::uint64_t> next_seq{1};
  std::atomic<std::size_t> popped{0};
  std::atomic<std::size_t> removed{0};
  std::atomic<bool> done{false};
  {
    std::vector<std::jthread> threads;
    for (std::size_t p = 0; p < kPushers; ++p) {
      threads.emplace_back([&, p] {
        for (std::size_t i = 0; i < kPerPusher; ++i) {
          const std::uint64_t seq = next_seq.fetch_add(1);
          queue.push("u" + std::to_string((p * 7 + i) % 16),
                     entry_of(seq, static_cast<int>(i % 3),
                              1.0 + static_cast<double>(i % 2)));
        }
      });
    }
    for (int c = 0; c < 2; ++c) {
      threads.emplace_back([&] {
        while (!done.load()) {
          if (queue.pop()) {
            popped.fetch_add(1);
          } else {
            std::this_thread::yield();
          }
        }
      });
    }
    threads.emplace_back([&] {
      for (int round = 0; round < 50 && !done.load(); ++round) {
        if (queue.preempt_below(2)) removed.fetch_add(1);
        removed.fetch_add(queue.shed_below(1).size());
        std::this_thread::yield();
      }
    });

    while (popped.load() + removed.load() < kTotal) {
      if (queue.pop()) {
        popped.fetch_add(1);
      } else {
        std::this_thread::yield();
      }
    }
    done.store(true);
  }
  EXPECT_EQ(popped.load() + removed.load(), kTotal);
  EXPECT_EQ(queue.size(), 0u);
}

// ----------------------------------------------- service: shedding

TEST_F(AdmissionEnv, PriorityPreemptsYoungestOfLowestQueuedTier) {
  AppSubmissionConfig config;
  config.slots = 1;
  config.start_paused = true;
  config.max_queue = 2;
  AppSubmissionService service(SiteId(0), directory_,
                               tasklib::builtin_registry(), config);

  const AppId low_old =
      service.submit(request_for(tiny_graph("low_old"), "u0", 1.0, 0));
  const AppId low_young =
      service.submit(request_for(tiny_graph("low_young"), "u1", 1.0, 0));
  ASSERT_EQ(service.stats().queue_depth, 2u);

  // Tier 1 arrival at a full queue: the youngest tier-0 entry loses.
  const AppId mid =
      service.submit(request_for(tiny_graph("mid"), "u2", 1.0, 1));
  const auto victim = service.status(low_young);
  EXPECT_EQ(victim.state, SubmissionState::kRejected);
  EXPECT_NE(victim.error.find("preempted"), std::string::npos);
  EXPECT_EQ(service.status(mid).state, SubmissionState::kQueued);
  EXPECT_EQ(service.stats().preempted, 1u);
  EXPECT_EQ(service.stats().queue_depth, 2u);

  // Same-tier arrival at a full queue cannot preempt: backpressure,
  // with the QoS estimate intact on the rejection.
  const AppId same =
      service.submit(request_for(tiny_graph("same"), "u3", 1.0, 0));
  const auto overflow = service.status(same);
  EXPECT_EQ(overflow.state, SubmissionState::kRejected);
  EXPECT_TRUE(overflow.admission.admitted);
  EXPECT_NE(overflow.error.find("backpressure"), std::string::npos);

  // Tier 2 preempts the remaining tier-0 entry, never the tier-1 one.
  const AppId high =
      service.submit(request_for(tiny_graph("high"), "u4", 1.0, 2));
  EXPECT_EQ(service.status(low_old).state, SubmissionState::kRejected);
  EXPECT_EQ(service.status(mid).state, SubmissionState::kQueued);
  EXPECT_EQ(service.status(high).state, SubmissionState::kQueued);

  service.resume();
  service.drain();
  EXPECT_EQ(service.wait(mid).state, SubmissionState::kCompleted);
  EXPECT_EQ(service.wait(high).state, SubmissionState::kCompleted);

  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.preempted, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.submitted,
            stats.admitted + stats.rejected + stats.queued);
  EXPECT_EQ(stats.queued,
            stats.queued_then_admitted + stats.preempted + stats.shed);
  EXPECT_EQ(stats.admitted + stats.queued_then_admitted,
            stats.completed + stats.failed);
}

TEST_F(AdmissionEnv, ShedQueuedDropsEverythingBelowCutoff) {
  AppSubmissionConfig config;
  config.slots = 1;
  config.start_paused = true;
  config.max_queue = 16;
  AppSubmissionService service(SiteId(0), directory_,
                               tasklib::builtin_registry(), config);

  std::vector<AppId> low, mid;
  for (int i = 0; i < 3; ++i) {
    low.push_back(service.submit(
        request_for(tiny_graph("low" + std::to_string(i)),
                    "u" + std::to_string(i), 1.0, 0)));
  }
  for (int i = 0; i < 2; ++i) {
    mid.push_back(service.submit(request_for(
        tiny_graph("mid" + std::to_string(i)), "m", 1.0, 1)));
  }
  const AppId keeper =
      service.submit(request_for(tiny_graph("keep"), "k", 1.0, 5));

  EXPECT_EQ(service.shed_queued(5), 5u);
  for (const AppId app : low) {
    const auto status = service.status(app);
    EXPECT_EQ(status.state, SubmissionState::kRejected);
    EXPECT_NE(status.error.find("shed"), std::string::npos);
  }
  for (const AppId app : mid) {
    EXPECT_EQ(service.status(app).state, SubmissionState::kRejected);
  }
  EXPECT_EQ(service.status(keeper).state, SubmissionState::kQueued);
  EXPECT_EQ(service.stats().shed, 5u);
  EXPECT_EQ(service.stats().queue_depth, 1u);

  service.resume();
  service.drain();
  EXPECT_EQ(service.wait(keeper).state, SubmissionState::kCompleted);

  const auto stats = service.stats();
  EXPECT_EQ(stats.queued,
            stats.queued_then_admitted + stats.preempted + stats.shed);
  EXPECT_EQ(stats.admitted + stats.queued_then_admitted,
            stats.completed + stats.failed);
}

TEST_F(AdmissionEnv, EarlyShedRejectsBeforeSchedulingWork) {
  AppSubmissionConfig config;
  config.slots = 1;
  config.start_paused = true;
  config.max_queue = 1;
  config.early_shed = true;
  AppSubmissionService service(SiteId(0), directory_,
                               tasklib::builtin_registry(), config);

  const AppId first =
      service.submit(request_for(tiny_graph("first"), "u0", 1.0, 0));
  ASSERT_EQ(service.status(first).state, SubmissionState::kQueued);

  // Same priority at a full queue: tier-0 early shed -- rejected before
  // any scheduling or QoS work, so the admission estimate stays empty.
  const AppId shed =
      service.submit(request_for(tiny_graph("shed"), "u1", 1.0, 0));
  const auto shed_status = service.status(shed);
  EXPECT_EQ(shed_status.state, SubmissionState::kRejected);
  EXPECT_NE(shed_status.error.find("early shed"), std::string::npos);
  EXPECT_FALSE(shed_status.admission.admitted);
  EXPECT_EQ(shed_status.admission.predicted_makespan_s, 0.0);
  EXPECT_EQ(service.stats().early_shed, 1u);

  // A higher priority can preempt, so it bypasses the early tier and
  // takes the queued slot through the full admission path.
  const AppId high =
      service.submit(request_for(tiny_graph("high"), "u2", 1.0, 1));
  EXPECT_EQ(service.status(high).state, SubmissionState::kQueued);
  EXPECT_EQ(service.status(first).state, SubmissionState::kRejected);
  EXPECT_EQ(service.stats().preempted, 1u);

  service.resume();
  service.drain();
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.rejected, 1u);  // the early shed (preemption is not
                                  // a rejection of the *arrival*)
  EXPECT_EQ(stats.early_shed, 1u);
  EXPECT_EQ(stats.submitted,
            stats.admitted + stats.rejected + stats.queued);
  EXPECT_EQ(stats.queued,
            stats.queued_then_admitted + stats.preempted + stats.shed);
}

// -------------------------------------------- service: batched submit

TEST_F(AdmissionEnv, SubmitBatchMatchesSequentialSubmits) {
  // The burst API must be observably identical to a submit() loop:
  // same outcomes, same estimates, same grant order, same counters.
  const auto make_requests = [&] {
    std::vector<SubmissionRequest> requests;
    for (int i = 0; i < 3; ++i) {
      requests.push_back(request_for(
          tiny_graph("ok" + std::to_string(i)),
          "user" + std::to_string(i % 2), 1.0 + i % 2, 0));
    }
    // One impossible deadline (QoS reject, takes no queue slot) ...
    auto tight = request_for(tiny_graph("tight"), "user9", 1.0, 0);
    tight.qos.deadline_s = 1e-12;
    requests.push_back(std::move(tight));
    // ... then two more: one queued (slot freed by the QoS reject),
    // one backpressured.
    for (int i = 0; i < 2; ++i) {
      requests.push_back(request_for(
          tiny_graph("tail" + std::to_string(i)), "user0", 1.0, 0));
    }
    return requests;
  };

  AppSubmissionConfig config;
  config.slots = 1;
  config.start_paused = true;
  config.max_queue = 4;
  AppSubmissionService loop_service(SiteId(0), directory_,
                                    tasklib::builtin_registry(), config);
  AppSubmissionService batch_service(SiteId(0), directory_,
                                     tasklib::builtin_registry(), config);

  std::vector<AppId> loop_apps;
  for (auto& request : make_requests()) {
    loop_apps.push_back(loop_service.submit(std::move(request)));
  }
  const std::vector<AppId> batch_apps =
      batch_service.submit_batch(make_requests());
  ASSERT_EQ(loop_apps.size(), batch_apps.size());

  for (std::size_t i = 0; i < loop_apps.size(); ++i) {
    const auto a = loop_service.status(loop_apps[i]);
    const auto b = batch_service.status(batch_apps[i]);
    EXPECT_EQ(a.state, b.state) << "request " << i;
    EXPECT_EQ(a.admission.admitted, b.admission.admitted);
    EXPECT_NEAR(a.admission.predicted_makespan_s,
                b.admission.predicted_makespan_s, 1e-9);
    EXPECT_NEAR(a.queue_eta_s, b.queue_eta_s, 1e-9);
    EXPECT_EQ(a.error, b.error);
  }

  loop_service.resume();
  batch_service.resume();
  loop_service.drain();
  batch_service.drain();
  for (std::size_t i = 0; i < loop_apps.size(); ++i) {
    EXPECT_EQ(loop_service.status(loop_apps[i]).grant_index,
              batch_service.status(batch_apps[i]).grant_index)
        << "request " << i;
  }
  const auto a = loop_service.stats();
  const auto b = batch_service.stats();
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.queued, b.queued);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.queued_then_admitted, b.queued_then_admitted);
}

TEST_F(AdmissionEnv, CheckQosBatchMatchesSequentialChecks) {
  // The batched admission primitive must reproduce the sequential
  // check-then-charge loop exactly, including the cumulative charging
  // of admitted items within the burst.
  std::vector<afg::FlowGraph> graphs;
  graphs.push_back(tiny_graph("q0"));
  graphs.push_back(sim::make_c3i_graph(0.25));
  graphs.push_back(tiny_graph("q1"));
  graphs.push_back(sim::make_fourier_graph(0.25));
  graphs.push_back(tiny_graph("q2"));

  sched::SiteScheduler scheduler(SiteId(0), directory_);
  std::vector<sched::AllocationTable> allocations;
  std::vector<sched::QosRequirement> qos;
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    allocations.push_back(scheduler.schedule(graphs[i]));
    const double idle = sched::predicted_makespan(
        graphs[i], allocations.back(), directory_);
    sched::QosRequirement requirement;
    // Alternate generous and tight deadlines so the burst mixes
    // admissions (which charge) and rejections (which must not).
    requirement.deadline_s = (i % 2 == 0) ? 50.0 * idle : 1.2 * idle;
    qos.push_back(requirement);
  }

  sched::HostOccupancy busy;
  busy[allocations[0].rows().front().primary_host()] = 0.5;

  // Sequential reference: check, then charge admitted occupancy.
  sched::HostOccupancy rolling = busy;
  std::vector<sched::QosAdmission> expected;
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    expected.push_back(sched::check_qos(graphs[i], allocations[i],
                                        directory_, qos[i], rolling));
    if (expected.back().admitted) {
      for (const auto& [host, busy_s] : allocations[i].host_occupancy()) {
        rolling[host] += busy_s;
      }
    }
  }

  std::vector<sched::QosBatchItem> items;
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    items.push_back(
        sched::QosBatchItem{&graphs[i], &allocations[i], qos[i]});
  }
  const auto batch = sched::check_qos_batch(items, directory_, busy);
  ASSERT_EQ(batch.size(), expected.size());
  bool saw_rejection = false;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].admitted, expected[i].admitted) << "item " << i;
    EXPECT_NEAR(batch[i].predicted_makespan_s,
                expected[i].predicted_makespan_s, 1e-9);
    EXPECT_NEAR(batch[i].slack_s, expected[i].slack_s, 1e-9);
    saw_rejection |= !expected[i].admitted;
  }
  // The scenario genuinely exercises the mixed path.
  EXPECT_TRUE(saw_rejection);
  EXPECT_TRUE(expected.front().admitted);
}

// --------------------------------------- service: record retirement

TEST_F(AdmissionEnv, TerminalRecordsRetireIntoStubs) {
  AppSubmissionConfig config;
  config.slots = 1;
  config.terminal_record_cap = 4;
  AppSubmissionService service(SiteId(0), directory_,
                               tasklib::builtin_registry(), config);

  std::vector<AppId> apps;
  for (int i = 0; i < 10; ++i) {
    const AppId app = service.submit(
        request_for(tiny_graph("r" + std::to_string(i)), "ruth"));
    ASSERT_EQ(service.wait(app).state, SubmissionState::kCompleted);
    apps.push_back(app);
  }

  const auto stats = service.stats();
  EXPECT_EQ(stats.completed, 10u);
  EXPECT_EQ(stats.retired, 6u);
  EXPECT_EQ(stats.records_retained, 4u);

  // Retired submissions still answer status()/wait() from the stub:
  // terminal state, grant order and restart count survive; the heavy
  // allocation/result payloads do not.
  const auto oldest = service.status(apps[0]);
  EXPECT_TRUE(oldest.retired);
  EXPECT_EQ(oldest.state, SubmissionState::kCompleted);
  EXPECT_EQ(oldest.grant_index, 1u);
  EXPECT_TRUE(oldest.result.records.empty());
  EXPECT_EQ(service.wait(apps[0]).grant_index, 1u);

  const auto newest = service.status(apps[9]);
  EXPECT_FALSE(newest.retired);
  EXPECT_EQ(newest.result.records.size(), 2u);
}

TEST_F(AdmissionEnv, RetiredStubCapForgetsTheOldest) {
  AppSubmissionConfig config;
  config.slots = 1;
  config.terminal_record_cap = 2;
  config.retired_stub_cap = 3;
  AppSubmissionService service(SiteId(0), directory_,
                               tasklib::builtin_registry(), config);

  std::vector<AppId> apps;
  for (int i = 0; i < 10; ++i) {
    const AppId app = service.submit(
        request_for(tiny_graph("s" + std::to_string(i)), "sam"));
    ASSERT_EQ(service.wait(app).state, SubmissionState::kCompleted);
    apps.push_back(app);
  }

  // Retirement order is completion order: apps 0..7 retired, stubs
  // keep only the 3 most recent of those, and the oldest are gone.
  EXPECT_EQ(service.stats().retired, 8u);
  EXPECT_THROW((void)service.status(apps[0]), common::NotFoundError);
  EXPECT_THROW((void)service.wait(apps[2]), common::NotFoundError);
  EXPECT_TRUE(service.status(apps[5]).retired);
  EXPECT_TRUE(service.status(apps[7]).retired);
  EXPECT_FALSE(service.status(apps[9]).retired);
}

}  // namespace
}  // namespace vdce::rt
