// Unit tests for the site repository: the four databases and their
// persistence round-trip.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "repository/repository.hpp"

namespace vdce::repo {
namespace {

using common::AuthError;
using common::HostId;
using common::NotFoundError;
using common::SiteId;
using common::StateError;

// ------------------------------------------------------------- users

TEST(UserDb, AddAndAuthenticate) {
  UserAccountsDb db;
  const auto id = db.add_user("alice", "secret", 2, "wan");
  EXPECT_TRUE(id.valid());
  const auto acct = db.authenticate("alice", "secret");
  EXPECT_EQ(acct.user_name, "alice");
  EXPECT_EQ(acct.priority, 2);
  EXPECT_EQ(acct.access_domain, "wan");
  EXPECT_EQ(acct.user_id, id);
}

TEST(UserDb, WrongPasswordRejected) {
  UserAccountsDb db;
  db.add_user("alice", "secret", 1, "local");
  EXPECT_THROW((void)db.authenticate("alice", "wrong"), AuthError);
}

TEST(UserDb, UnknownUserRejected) {
  UserAccountsDb db;
  EXPECT_THROW((void)db.authenticate("bob", "x"), AuthError);
}

TEST(UserDb, DuplicateNameRejected) {
  UserAccountsDb db;
  db.add_user("alice", "a", 1, "local");
  EXPECT_THROW(db.add_user("alice", "b", 1, "local"), StateError);
}

TEST(UserDb, PasswordNotStoredInPlaintext) {
  UserAccountsDb db;
  db.add_user("alice", "secret", 1, "local");
  const auto acct = db.find("alice");
  ASSERT_TRUE(acct.has_value());
  // Only the salted hash is retained.
  EXPECT_NE(acct->password_hash, 0u);
}

TEST(UserDb, SetPassword) {
  UserAccountsDb db;
  db.add_user("alice", "old", 1, "local");
  db.set_password("alice", "new");
  EXPECT_THROW((void)db.authenticate("alice", "old"), AuthError);
  EXPECT_NO_THROW((void)db.authenticate("alice", "new"));
}

TEST(UserDb, RemoveUser) {
  UserAccountsDb db;
  db.add_user("alice", "a", 1, "local");
  db.remove_user("alice");
  EXPECT_EQ(db.size(), 0u);
  EXPECT_THROW(db.remove_user("alice"), NotFoundError);
}

TEST(UserDb, UniqueIds) {
  UserAccountsDb db;
  const auto a = db.add_user("a", "x", 1, "local");
  const auto b = db.add_user("b", "x", 1, "local");
  EXPECT_NE(a, b);
}

TEST(UserDb, SaltsDifferPerUser) {
  UserAccountsDb db;
  db.add_user("a", "same", 1, "local");
  db.add_user("b", "same", 1, "local");
  EXPECT_NE(db.find("a")->password_hash, db.find("b")->password_hash);
}

// ---------------------------------------------------------- resources

HostStaticAttrs host_attrs(const std::string& name, SiteId site = SiteId(0),
                           common::GroupId group = common::GroupId(0)) {
  HostStaticAttrs a;
  a.host_name = name;
  a.ip_address = "10.0.0.1";
  a.arch = ArchType::kSparc;
  a.os = OsType::kSolaris;
  a.total_memory_mb = 128.0;
  a.site = site;
  a.group = group;
  return a;
}

TEST(ResourceDb, RegisterAndGet) {
  ResourcePerformanceDb db;
  const auto id = db.register_host(host_attrs("h1"));
  const auto rec = db.get(id);
  EXPECT_EQ(rec.static_attrs.host_name, "h1");
  // Initial available memory = total.
  EXPECT_DOUBLE_EQ(rec.dynamic_attrs.available_memory_mb, 128.0);
  EXPECT_TRUE(rec.dynamic_attrs.alive);
}

TEST(ResourceDb, DuplicateNameRejected) {
  ResourcePerformanceDb db;
  db.register_host(host_attrs("h1"));
  EXPECT_THROW(db.register_host(host_attrs("h1")), StateError);
}

TEST(ResourceDb, UpdateDynamic) {
  ResourcePerformanceDb db;
  const auto id = db.register_host(host_attrs("h1"));
  HostDynamicAttrs dyn;
  dyn.cpu_load = 2.5;
  dyn.available_memory_mb = 64.0;
  dyn.last_update = 10.0;
  db.update_dynamic(id, dyn);
  EXPECT_DOUBLE_EQ(db.get(id).dynamic_attrs.cpu_load, 2.5);
}

TEST(ResourceDb, MarkDownExcludesFromAlive) {
  ResourcePerformanceDb db;
  const auto a = db.register_host(host_attrs("h1"));
  db.register_host(host_attrs("h2"));
  db.set_alive(a, false, 5.0);
  EXPECT_EQ(db.alive_hosts().size(), 1u);
  EXPECT_EQ(db.all_hosts().size(), 2u);
  db.set_alive(a, true, 9.0);
  EXPECT_EQ(db.alive_hosts().size(), 2u);
}

TEST(ResourceDb, FindByName) {
  ResourcePerformanceDb db;
  const auto id = db.register_host(host_attrs("syr-sparc-0"));
  const auto rec = db.find_by_name("syr-sparc-0");
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->host, id);
  EXPECT_FALSE(db.find_by_name("nope").has_value());
}

TEST(ResourceDb, SiteAndGroupFilters) {
  ResourcePerformanceDb db;
  db.register_host(host_attrs("a", SiteId(0), common::GroupId(0)));
  db.register_host(host_attrs("b", SiteId(0), common::GroupId(1)));
  db.register_host(host_attrs("c", SiteId(1), common::GroupId(2)));
  EXPECT_EQ(db.hosts_in_site(SiteId(0)).size(), 2u);
  EXPECT_EQ(db.hosts_in_site(SiteId(1)).size(), 1u);
  EXPECT_EQ(db.hosts_in_group(common::GroupId(1)).size(), 1u);
}

TEST(ResourceDb, RemoveHost) {
  ResourcePerformanceDb db;
  const auto id = db.register_host(host_attrs("h1"));
  db.remove_host(id);
  EXPECT_EQ(db.size(), 0u);
  EXPECT_THROW(db.remove_host(id), NotFoundError);
  // The name is free again.
  EXPECT_NO_THROW(db.register_host(host_attrs("h1")));
}

TEST(ResourceDb, NetworkAttrsSymmetric) {
  ResourcePerformanceDb db;
  NetworkAttrs attrs;
  attrs.latency_s = 0.02;
  attrs.transfer_mb_per_s = 4.0;
  db.update_site_network(SiteId(0), SiteId(1), attrs);
  const auto forward = db.site_network(SiteId(0), SiteId(1));
  const auto backward = db.site_network(SiteId(1), SiteId(0));
  ASSERT_TRUE(forward && backward);
  EXPECT_DOUBLE_EQ(forward->latency_s, backward->latency_s);
  EXPECT_FALSE(db.site_network(SiteId(0), SiteId(2)).has_value());
}

TEST(ResourceDb, UnknownHostThrows) {
  ResourcePerformanceDb db;
  EXPECT_THROW((void)db.get(HostId(99)), NotFoundError);
  EXPECT_FALSE(db.find(HostId(99)).has_value());
}

// -------------------------------------------------------------- tasks

TaskPerformanceRecord task_rec(const std::string& name, double base = 1.0) {
  TaskPerformanceRecord r;
  r.task_name = name;
  r.base_time_s = base;
  r.computation_size = 2.0;
  r.communication_size_mb = 0.5;
  r.memory_req_mb = 16.0;
  return r;
}

TEST(TaskDb, RegisterAndGet) {
  TaskPerformanceDb db;
  db.register_task(task_rec("fft", 0.3));
  const auto rec = db.get("fft");
  EXPECT_DOUBLE_EQ(rec.base_time_s, 0.3);
  EXPECT_TRUE(db.contains("fft"));
  EXPECT_FALSE(db.contains("nope"));
  EXPECT_THROW((void)db.get("nope"), NotFoundError);
}

TEST(TaskDb, PowerWeightResolutionOrder) {
  TaskPerformanceDb db;
  db.register_task(task_rec("fft"));
  // No weights: 1.0.
  EXPECT_DOUBLE_EQ(db.power_weight("fft", HostId(0), ArchType::kSparc), 1.0);
  // Arch fallback.
  db.set_arch_weight("fft", ArchType::kSparc, 1.5);
  EXPECT_DOUBLE_EQ(db.power_weight("fft", HostId(0), ArchType::kSparc), 1.5);
  // Host-specific wins.
  db.set_power_weight("fft", HostId(0), 2.5);
  EXPECT_DOUBLE_EQ(db.power_weight("fft", HostId(0), ArchType::kSparc), 2.5);
  // Other hosts still fall back.
  EXPECT_DOUBLE_EQ(db.power_weight("fft", HostId(1), ArchType::kSparc), 1.5);
}

TEST(TaskDb, RejectsNonPositiveWeight) {
  TaskPerformanceDb db;
  EXPECT_THROW(db.set_power_weight("fft", HostId(0), 0.0), StateError);
  EXPECT_THROW(db.set_arch_weight("fft", ArchType::kSparc, -1.0), StateError);
}

TEST(TaskDb, MeasurementHistoryBounded) {
  TaskPerformanceDb db;
  db.register_task(task_rec("fft"));
  for (int i = 0; i < 100; ++i) {
    db.record_measurement("fft", static_cast<double>(i));
  }
  const auto rec = db.get("fft");
  EXPECT_EQ(rec.measured_history.size(), TaskPerformanceDb::kHistoryCapacity);
  // Newest retained.
  EXPECT_DOUBLE_EQ(rec.measured_history.back(), 99.0);
}

TEST(TaskDb, MeasurementUnknownTaskThrows) {
  TaskPerformanceDb db;
  EXPECT_THROW(db.record_measurement("nope", 1.0), NotFoundError);
}

TEST(TaskDb, TaskNamesSorted) {
  TaskPerformanceDb db;
  db.register_task(task_rec("zeta"));
  db.register_task(task_rec("alpha"));
  const auto names = db.task_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

// -------------------------------------------------------- constraints

TEST(ConstraintDb, LocationRoundTrip) {
  TaskConstraintsDb db;
  db.set_location("fft", HostId(1), "/usr/local/bin/fft");
  EXPECT_TRUE(db.can_run("fft", HostId(1)));
  EXPECT_FALSE(db.can_run("fft", HostId(2)));
  EXPECT_EQ(db.location("fft", HostId(1)).value(), "/usr/local/bin/fft");
}

TEST(ConstraintDb, HostsForSorted) {
  TaskConstraintsDb db;
  db.set_location("fft", HostId(5), "/a");
  db.set_location("fft", HostId(1), "/b");
  const auto hosts = db.hosts_for("fft");
  ASSERT_EQ(hosts.size(), 2u);
  EXPECT_EQ(hosts[0], HostId(1));
  EXPECT_EQ(hosts[1], HostId(5));
  EXPECT_TRUE(db.hosts_for("nope").empty());
}

TEST(ConstraintDb, ClearLocation) {
  TaskConstraintsDb db;
  db.set_location("fft", HostId(1), "/a");
  db.clear_location("fft", HostId(1));
  EXPECT_FALSE(db.can_run("fft", HostId(1)));
  EXPECT_NO_THROW(db.clear_location("fft", HostId(1)));  // idempotent
}

TEST(ConstraintDb, RemoveHostDropsAllRows) {
  TaskConstraintsDb db;
  db.set_location("fft", HostId(1), "/a");
  db.set_location("lu", HostId(1), "/b");
  db.set_location("lu", HostId(2), "/c");
  db.remove_host(HostId(1));
  EXPECT_FALSE(db.can_run("fft", HostId(1)));
  EXPECT_TRUE(db.can_run("lu", HostId(2)));
  EXPECT_EQ(db.size(), 1u);
}

// -------------------------------------------------------- persistence

class RepositoryPersistence : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("vdce_repo_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(RepositoryPersistence, FullRoundTrip) {
  SiteRepository repo(SiteId(3));
  repo.users().add_user("alice", "pw", 2, "wan");
  const auto host = repo.resources().register_host(host_attrs("h1"));
  HostDynamicAttrs dyn;
  dyn.cpu_load = 1.25;
  dyn.available_memory_mb = 100.0;
  dyn.alive = false;
  dyn.last_update = 42.5;
  repo.resources().update_dynamic(host, dyn);
  NetworkAttrs net;
  net.latency_s = 0.01;
  net.transfer_mb_per_s = 8.0;
  repo.resources().update_site_network(SiteId(0), SiteId(1), net);

  repo.tasks().register_task(task_rec("fft", 0.3));
  repo.tasks().set_power_weight("fft", host, 1.75);
  repo.tasks().set_arch_weight("fft", ArchType::kAlpha, 2.25);
  repo.tasks().record_measurement("fft", 0.31);
  repo.tasks().record_measurement("fft", 0.29);

  repo.constraints().set_location("fft", host, "/opt/fft");

  repo.save(dir_);

  SiteRepository loaded(SiteId(3));
  loaded.load(dir_);

  // Users.
  const auto acct = loaded.users().authenticate("alice", "pw");
  EXPECT_EQ(acct.priority, 2);
  // Resources.
  const auto rec = loaded.resources().get(host);
  EXPECT_EQ(rec.static_attrs.host_name, "h1");
  EXPECT_DOUBLE_EQ(rec.dynamic_attrs.cpu_load, 1.25);
  EXPECT_FALSE(rec.dynamic_attrs.alive);
  EXPECT_DOUBLE_EQ(rec.dynamic_attrs.last_update, 42.5);
  // Note: site network links are monitoring state, re-measured at
  // bring-up, and are not persisted rows in the prototype format.
  // Tasks.
  const auto task = loaded.tasks().get("fft");
  EXPECT_DOUBLE_EQ(task.base_time_s, 0.3);
  ASSERT_EQ(task.measured_history.size(), 2u);
  EXPECT_DOUBLE_EQ(task.measured_history[1], 0.29);
  EXPECT_DOUBLE_EQ(
      loaded.tasks().power_weight("fft", host, ArchType::kSparc), 1.75);
  EXPECT_DOUBLE_EQ(
      loaded.tasks().power_weight("fft", HostId(9), ArchType::kAlpha), 2.25);
  // Constraints.
  EXPECT_EQ(loaded.constraints().location("fft", host).value(), "/opt/fft");
}

TEST_F(RepositoryPersistence, LoadMissingDirThrows) {
  SiteRepository repo(SiteId(0));
  EXPECT_THROW(repo.load(dir_ / "nope"), NotFoundError);
}

TEST_F(RepositoryPersistence, MalformedRowThrows) {
  SiteRepository repo(SiteId(0));
  repo.save(dir_);
  {
    std::ofstream out(dir_ / "users.db");
    out << "only_two\tfields\n";
  }
  SiteRepository loaded(SiteId(0));
  EXPECT_THROW(loaded.load(dir_), common::ParseError);
}

TEST_F(RepositoryPersistence, EmptyRepositoryRoundTrip) {
  SiteRepository repo(SiteId(0));
  repo.save(dir_);
  SiteRepository loaded(SiteId(0));
  EXPECT_NO_THROW(loaded.load(dir_));
  EXPECT_EQ(loaded.users().size(), 0u);
  EXPECT_EQ(loaded.resources().size(), 0u);
}

// ------------------------------------------------------------ enums

TEST(EnumStrings, ArchRoundTrip) {
  for (const auto a : {ArchType::kSparc, ArchType::kIntel, ArchType::kAlpha,
                       ArchType::kPowerPc, ArchType::kMips}) {
    EXPECT_EQ(arch_from_string(to_string(a)), a);
  }
  EXPECT_THROW((void)arch_from_string("vax"), common::ParseError);
}

TEST(EnumStrings, OsRoundTrip) {
  for (const auto o : {OsType::kSolaris, OsType::kLinux, OsType::kOsf1,
                       OsType::kAix, OsType::kIrix}) {
    EXPECT_EQ(os_from_string(to_string(o)), o);
  }
  EXPECT_THROW((void)os_from_string("plan9"), common::ParseError);
}

}  // namespace
}  // namespace vdce::repo
