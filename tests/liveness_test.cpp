// D17 quorum-liveness tests: the LivenessDirectory state machines
// (suspicion, refutation, quorum death, the unrefuted-suspicion
// backstop, incarnation fencing), the jittered restart backoff
// schedule, the partition-spec codec, DaemonClient's bounded RPC
// retry, and the chaos acceptance properties over REAL daemon
// processes -- a partitioned-but-healthy site is suspected but never
// declared dead, while a SIGKILLed daemon is quorum-confirmed dead
// well inside the 3x-suspicion-timeout bound.
#include <gtest/gtest.h>
#include <signal.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "daemon/client.hpp"
#include "datamgr/tcp.hpp"
#include "netsim/chaos.hpp"
#include "runtime/liveness.hpp"
#include "runtime/watchdog.hpp"
#include "runtime/wire.hpp"

namespace vdce::rt {
namespace {

using common::ParseError;
using common::SiteId;
using common::TransportError;

std::uint64_t counter_value(const char* name) {
  return common::MetricsRegistry::global().counter(name).value();
}

double steady_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ------------------------------ LivenessDirectory (injected clock)

LivenessConfig unit_config() {
  LivenessConfig config;
  config.quorum = 2;
  config.suspicion_timeout_s = 1.0;
  config.freshness_s = 0.5;
  return config;
}

TEST(LivenessDirectory, QuorumOfWitnessesDeclaresDeath) {
  LivenessDirectory dir(unit_config());
  double now = 0.0;
  dir.set_clock([&] { return now; });
  const SiteId site(1);
  dir.track(site, 1);
  EXPECT_EQ(dir.state(site), SiteLiveness::kAlive);

  EXPECT_EQ(dir.suspect(site, 1, SiteId(7), "timer"), SiteLiveness::kSuspect);
  EXPECT_EQ(dir.status(site).witnesses, 1u);
  // A duplicate vote from the same witness counts once.
  EXPECT_EQ(dir.suspect(site, 1, SiteId(7), "timer"), SiteLiveness::kSuspect);
  EXPECT_EQ(dir.status(site).witnesses, 1u);
  EXPECT_EQ(dir.stats().deaths_quorum, 0u);

  // An independent second witness completes the quorum.
  EXPECT_EQ(dir.suspect(site, 1, SiteId(8), "probe"), SiteLiveness::kDead);
  EXPECT_EQ(dir.stats().suspects, 1u);
  EXPECT_EQ(dir.stats().deaths_quorum, 1u);
  EXPECT_NE(dir.status(site).reason.find("[quorum 2/2]"), std::string::npos);

  // Death is final for this incarnation: neither a late heartbeat nor
  // a refutation resurrects it.
  dir.direct_alive(site, 1);
  EXPECT_EQ(dir.state(site), SiteLiveness::kDead);
  EXPECT_EQ(dir.refute(site, 1, SiteId(8)), SiteLiveness::kDead);
  // A fresh incarnation starts over.
  dir.track(site, 2);
  EXPECT_EQ(dir.state(site), SiteLiveness::kAlive);
}

TEST(LivenessDirectory, UnrefutedSuspicionTimesOut) {
  auto config = unit_config();
  config.quorum = 3;  // unreachable with one witness
  LivenessDirectory dir(config);
  double now = 0.0;
  dir.set_clock([&] { return now; });
  const SiteId site(1);
  dir.track(site, 1);
  (void)dir.suspect(site, 1, SiteId(7), "timer");

  now = 0.9;
  EXPECT_TRUE(dir.poll().empty());
  EXPECT_EQ(dir.state(site), SiteLiveness::kSuspect);

  now = 1.2;
  const auto died = dir.poll();
  ASSERT_EQ(died.size(), 1u);
  EXPECT_EQ(died[0], site);
  EXPECT_EQ(dir.state(site), SiteLiveness::kDead);
  EXPECT_EQ(dir.stats().deaths_timeout, 1u);
  // A site dies once: the next poll reports nothing.
  now = 2.5;
  EXPECT_TRUE(dir.poll().empty());
}

TEST(LivenessDirectory, RefutationExtendsTheSuspicionDeadline) {
  auto config = unit_config();
  config.quorum = 3;
  LivenessDirectory dir(config);
  double now = 0.0;
  dir.set_clock([&] { return now; });
  const SiteId site(1);
  dir.track(site, 1);
  (void)dir.suspect(site, 1, SiteId(7), "timer");

  // A refutation at t=0.8 moves the deadline anchor: the original
  // t=1.0 deadline passes without a death.
  now = 0.8;
  EXPECT_EQ(dir.refute(site, 1, SiteId(9)), SiteLiveness::kSuspect);
  EXPECT_EQ(dir.stats().refutations, 1u);
  now = 1.5;
  EXPECT_TRUE(dir.poll().empty());
  EXPECT_EQ(dir.state(site), SiteLiveness::kSuspect);

  // ... but with no further refutation the backstop still fires.
  now = 1.9;
  EXPECT_EQ(dir.poll().size(), 1u);
  EXPECT_EQ(dir.stats().deaths_timeout, 1u);
}

TEST(LivenessDirectory, RefutationWithdrawsTheWitnessVote) {
  LivenessDirectory dir(unit_config());
  double now = 0.0;
  dir.set_clock([&] { return now; });
  const SiteId site(1);
  dir.track(site, 1);
  (void)dir.suspect(site, 1, SiteId(7), "timer");
  EXPECT_EQ(dir.status(site).witnesses, 1u);
  (void)dir.refute(site, 1, SiteId(7));
  EXPECT_EQ(dir.status(site).witnesses, 0u);
  // The withdrawn witness re-voting is fresh again but still 1/2.
  EXPECT_EQ(dir.suspect(site, 1, SiteId(7), "timer"), SiteLiveness::kSuspect);
  EXPECT_EQ(dir.stats().deaths_quorum, 0u);
}

TEST(LivenessDirectory, HeartbeatRecoversASuspect) {
  LivenessDirectory dir(unit_config());
  double now = 0.0;
  dir.set_clock([&] { return now; });
  const SiteId site(1);
  dir.track(site, 1);
  (void)dir.suspect(site, 1, SiteId(7), "timer");
  dir.direct_alive(site, 1);
  EXPECT_EQ(dir.state(site), SiteLiveness::kAlive);
  EXPECT_EQ(dir.status(site).witnesses, 0u);
  EXPECT_EQ(dir.stats().false_alarm_recoveries, 1u);
}

TEST(LivenessDirectory, IncarnationFencing) {
  LivenessDirectory dir(unit_config());
  double now = 0.0;
  dir.set_clock([&] { return now; });
  const SiteId site(1);
  dir.track(site, 2);

  // Evidence about any other incarnation is fenced off.
  EXPECT_EQ(dir.suspect(site, 1, SiteId(7), "stale"), SiteLiveness::kAlive);
  EXPECT_EQ(dir.stats().suspects, 0u);
  dir.direct_alive(site, 1);
  EXPECT_EQ(dir.status(site).incarnation, 2u);
  EXPECT_EQ(dir.conclusive_dead(site, 1, "stale"), SiteLiveness::kAlive);
  EXPECT_EQ(dir.stats().deaths_conclusive, 0u);

  // A refutation naming a HIGHER incarnation proves a restart happened:
  // everything known about the old one is void -- even a death verdict.
  EXPECT_EQ(dir.conclusive_dead(site, 2, "reaped"), SiteLiveness::kDead);
  EXPECT_EQ(dir.refute(site, 3, SiteId(9)), SiteLiveness::kAlive);
  EXPECT_EQ(dir.status(site).incarnation, 3u);
}

TEST(LivenessDirectory, UntrackedSitesAreAliveAndIgnored) {
  LivenessDirectory dir(unit_config());
  const SiteId site(42);
  EXPECT_EQ(dir.state(site), SiteLiveness::kAlive);
  EXPECT_EQ(dir.suspect(site, 1, SiteId(7), "noise"), SiteLiveness::kAlive);
  EXPECT_EQ(dir.refute(site, 1, SiteId(7)), SiteLiveness::kAlive);
  EXPECT_EQ(dir.conclusive_dead(site, 1, "noise"), SiteLiveness::kAlive);
  EXPECT_TRUE(dir.poll().empty());
  EXPECT_EQ(dir.stats().suspects, 0u);
}

// --------------------------------------- jittered restart backoff

TEST(RestartBackoff, JitteredScheduleIsPinnedForAFixedSeed) {
  WatchdogConfig config;
  config.seed = 13;
  config.restart_backoff_s = 0.05;
  config.restart_backoff_multiplier = 2.0;
  config.restart_backoff_jitter = 0.5;

  for (const std::uint32_t site : {0u, 1u, 2u}) {
    for (std::size_t index = 0; index < 4; ++index) {
      const double base = 0.05 * std::pow(2.0, static_cast<double>(index));
      const double got = Watchdog::restart_backoff(config, SiteId(site), index);
      // Deterministic: the same (seed, site, index) always yields the
      // same wait, inside [base, base * (1 + jitter)).
      EXPECT_EQ(got, Watchdog::restart_backoff(config, SiteId(site), index));
      EXPECT_GE(got, base);
      EXPECT_LT(got, base * 1.5);
      // Pin the exact derivation (seed mixed with site and index via
      // splitmix64 constants, one uniform draw): changing the formula
      // silently would change every replayed chaos schedule.
      common::Rng rng(config.seed ^
                      (0x9E3779B97F4A7C15ull * (site + 1ull)) ^
                      (0xBF58476D1CE4E5B9ull * (index + 1ull)));
      EXPECT_EQ(got, base * (1.0 + 0.5 * rng.uniform()));
    }
  }

  // Different sites decorrelate: a 3-site outage must not produce a
  // synchronized fork/exec storm.
  EXPECT_NE(Watchdog::restart_backoff(config, SiteId(0), 0),
            Watchdog::restart_backoff(config, SiteId(1), 0));
  EXPECT_NE(Watchdog::restart_backoff(config, SiteId(1), 0),
            Watchdog::restart_backoff(config, SiteId(2), 0));

  // jitter = 0 restores the exact exponential schedule.
  config.restart_backoff_jitter = 0.0;
  EXPECT_EQ(Watchdog::restart_backoff(config, SiteId(0), 0), 0.05);
  EXPECT_EQ(Watchdog::restart_backoff(config, SiteId(0), 2), 0.2);
}

// --------------------------------------------- partition-spec codec

TEST(PartitionSpec, RoundTripsThroughTheWireString) {
  netsim::ChaosSchedule schedule;
  netsim::ChaosEvent ev;
  ev.kind = netsim::ChaosEventKind::kPartition;
  ev.start = 0.25;
  ev.length = 1.5;
  ev.site = SiteId(3);
  ev.other_site = SiteId(7);
  schedule.add(ev);
  ev.start = 4.0;
  ev.length = 0.5;
  ev.site = LivenessDirectory::watchdog_witness();
  ev.other_site = SiteId(1);
  schedule.add(ev);

  const std::string spec = schedule.partition_spec(100.0);
  const auto parsed = netsim::ChaosSchedule::from_partition_spec(spec);
  ASSERT_EQ(parsed.events().size(), 2u);
  EXPECT_TRUE(parsed.partitioned(SiteId(3), SiteId(7), 101.0));
  EXPECT_TRUE(parsed.partitioned(SiteId(7), SiteId(3), 101.0));
  EXPECT_FALSE(parsed.partitioned(SiteId(3), SiteId(7), 102.0));
  EXPECT_TRUE(parsed.partitioned(LivenessDirectory::watchdog_witness(),
                                 SiteId(1), 104.2));
  EXPECT_FALSE(parsed.partitioned(SiteId(3), SiteId(1), 101.0));

  EXPECT_TRUE(netsim::ChaosSchedule().partition_spec(0.0).empty());
  EXPECT_TRUE(
      netsim::ChaosSchedule::from_partition_spec("").events().empty());
  EXPECT_THROW((void)netsim::ChaosSchedule::from_partition_spec("1,2,3"),
               ParseError);
  EXPECT_THROW(
      (void)netsim::ChaosSchedule::from_partition_spec("a,b,nan,bogus"),
      ParseError);
  EXPECT_THROW((void)netsim::ChaosSchedule::from_partition_spec("1,2,9,4"),
               ParseError);
}

// ------------------------------------------- DaemonClient RPC retry

TEST(DaemonClientRetry, TransientDropIsRetriedWithBackoff) {
  dm::TcpListener listener;
  std::thread server([&] {
    // First connection: take the request, then hang up mid-RPC.
    auto c1 = listener.accept();
    (void)c1->receive_for(5.0);
    c1->close();
    // Second connection (the retry): serve the RPC properly.
    auto c2 = listener.accept();
    const auto request = c2->receive_for(5.0);
    if (request &&
        wire::peek_type(*request) == wire::MsgType::kTickRequest) {
      c2->send(wire::encode(wire::Ack{}));
    }
    // Hold the connection until the client has read the reply (the
    // client never sends again, so this times out or sees EOF).
    try {
      (void)c2->receive_for(1.0);
    } catch (const TransportError&) {
    }
  });

  const auto retries_before = counter_value("daemon.rpc_retries");
  daemon::DaemonRpcConfig rpc;
  rpc.timeout_s = 2.0;
  rpc.rpc_retries = 2;
  rpc.rpc_backoff_s = 0.01;
  daemon::DaemonClient client(listener.port(), rpc);
  client.tick(1.0);  // succeeds on the second attempt
  EXPECT_EQ(counter_value("daemon.rpc_retries") - retries_before, 1u);
  server.join();
}

TEST(DaemonClientRetry, ExhaustedBudgetRethrowsTransportError) {
  dm::TcpListener listener;
  std::thread server([&] {
    for (int i = 0; i < 2; ++i) {
      auto c = listener.accept();
      (void)c->receive_for(5.0);
      c->close();
    }
  });

  const auto retries_before = counter_value("daemon.rpc_retries");
  daemon::DaemonRpcConfig rpc;
  rpc.timeout_s = 2.0;
  rpc.rpc_retries = 1;
  rpc.rpc_backoff_s = 0.01;
  daemon::DaemonClient client(listener.port(), rpc);
  EXPECT_THROW(client.tick(1.0), TransportError);
  EXPECT_EQ(counter_value("daemon.rpc_retries") - retries_before, 1u);
  server.join();
}

// ------------------------------- chaos acceptance (real daemons)

WatchdogConfig gossip_watchdog_config() {
  WatchdogConfig config;
  config.daemon_path = VDCE_SITE_DAEMON_PATH;
  config.seed = 13;
  config.heartbeat_period_s = 0.02;
  config.heartbeat_timeout_s = 0.25;
  config.max_restarts = 3;
  config.restart_backoff_s = 0.02;
  config.gossip = true;
  config.gossip_period_s = 0.02;
  config.probe_timeout_s = 0.2;
  config.liveness.quorum = 2;
  config.liveness.suspicion_timeout_s = 0.6;
  config.liveness.freshness_s = 0.5;
  return config;
}

void wait_until_up(Watchdog& watchdog, SiteId site, double timeout_s = 15.0) {
  const double deadline = steady_s() + timeout_s;
  while (steady_s() < deadline) {
    if (watchdog.status(site).up) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  FAIL() << "site " << site.value() << " never came up";
}

TEST(QuorumLiveness, PartitionedHealthySiteIsSuspectedButNeverDeclaredDead) {
  const auto site_down_before = counter_value("watchdog.site_down");

  // Partition the coordinator from site 1 for 1.5s starting 0.4s from
  // now.  Site 0 can still reach BOTH sides, so it keeps refuting the
  // watchdog's missed-heartbeat suspicion -- even though the suspicion
  // timeout (0.6s) expires twice over inside the partition window, the
  // quorum never completes and the deadline keeps being pushed back.
  auto config = gossip_watchdog_config();
  netsim::ChaosSchedule schedule;
  netsim::ChaosEvent ev;
  ev.kind = netsim::ChaosEventKind::kPartition;
  ev.start = 0.4;
  ev.length = 1.5;
  ev.site = LivenessDirectory::watchdog_witness();
  ev.other_site = SiteId(1);
  schedule.add(ev);
  const double epoch = steady_s();
  config.partition_spec = schedule.partition_spec(epoch);

  Watchdog watchdog(config);
  std::atomic<int> down_events{0};
  watchdog.set_on_site_down([&](SiteId) { down_events.fetch_add(1); });
  watchdog.spawn(SiteId(0));
  watchdog.spawn(SiteId(1));
  wait_until_up(watchdog, SiteId(0));
  wait_until_up(watchdog, SiteId(1));

  // Sample through the partition and well past the heal: no site may
  // ever be declared dead (zero false positives is THE acceptance bar).
  bool saw_suspect = false;
  const double end = epoch + 0.4 + 1.5 + 0.6;
  while (steady_s() < end) {
    ASSERT_NE(watchdog.site_liveness(SiteId(0)), SiteLiveness::kDead);
    ASSERT_NE(watchdog.site_liveness(SiteId(1)), SiteLiveness::kDead);
    saw_suspect |=
        watchdog.site_liveness(SiteId(1)) == SiteLiveness::kSuspect;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(saw_suspect)
      << "the partition never even raised a suspicion -- the schedule "
         "did not reach the daemon";

  // After the heal the resumed heartbeats recover the suspect.
  const double deadline = steady_s() + 10.0;
  while (steady_s() < deadline &&
         watchdog.site_liveness(SiteId(1)) != SiteLiveness::kAlive) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(watchdog.site_liveness(SiteId(1)), SiteLiveness::kAlive);
  EXPECT_TRUE(watchdog.status(SiteId(1)).up);
  EXPECT_EQ(watchdog.status(SiteId(1)).incarnation, 1u)
      << "a healthy partitioned site was restarted";

  const auto stats = watchdog.liveness().stats();
  EXPECT_EQ(stats.deaths_quorum, 0u);
  EXPECT_EQ(stats.deaths_timeout, 0u);
  EXPECT_EQ(stats.deaths_conclusive, 0u);
  EXPECT_GE(stats.suspects, 1u);
  EXPECT_GE(stats.refutations, 1u);
  EXPECT_GE(stats.false_alarm_recoveries, 1u);
  EXPECT_EQ(watchdog.total_restarts(), 0u);
  EXPECT_EQ(down_events.load(), 0);
  EXPECT_EQ(counter_value("watchdog.site_down") - site_down_before, 0u);
}

TEST(QuorumLiveness, SigkilledDaemonIsQuorumConfirmedDeadWithinBound) {
  const auto site_down_before = counter_value("watchdog.site_down");

  // Distrust process exits so even the watchdog's first-hand evidence
  // (heartbeat EOF, waitpid) is a mere VOTE: death must come from the
  // quorum with site 0 as the second witness.  The suspicion timeout is
  // hoisted far above the acceptance bound so the backstop cannot be
  // what detects this death.
  auto config = gossip_watchdog_config();
  config.trust_process_exit = false;
  config.liveness.suspicion_timeout_s = 10.0;

  Watchdog watchdog(config);
  std::atomic<int> down_events{0};
  watchdog.set_on_site_down([&](SiteId) { down_events.fetch_add(1); });
  watchdog.spawn(SiteId(0));
  watchdog.spawn(SiteId(1));
  wait_until_up(watchdog, SiteId(0));
  wait_until_up(watchdog, SiteId(1));

  const double killed_at = steady_s();
  watchdog.kill_daemon(SiteId(1), SIGKILL);

  // Acceptance: quorum-confirmed dead within 3x the suspicion timeout.
  const double bound_s = 3.0 * config.liveness.suspicion_timeout_s;
  double detected_at = 0.0;
  while (steady_s() - killed_at < bound_s) {
    if (down_events.load() > 0) {
      detected_at = steady_s();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GT(detected_at, 0.0) << "death not detected within 3x suspicion";
  EXPECT_LT(detected_at - killed_at, bound_s);

  const auto stats = watchdog.liveness().stats();
  EXPECT_GE(stats.deaths_quorum, 1u);
  EXPECT_EQ(stats.deaths_timeout, 0u) << "the backstop, not the quorum, fired";
  EXPECT_EQ(stats.deaths_conclusive, 0u);
  EXPECT_GE(counter_value("watchdog.site_down") - site_down_before, 1u);

  // The verdict still drives the restart path: the reincarnation comes
  // back up and is alive again in the directory.
  const double deadline = steady_s() + 15.0;
  while (steady_s() < deadline) {
    const auto status = watchdog.status(SiteId(1));
    if (status.up && status.incarnation == 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(watchdog.status(SiteId(1)).incarnation, 2u);
  EXPECT_EQ(watchdog.site_liveness(SiteId(1)), SiteLiveness::kAlive);
  // Site 0 was never implicated.
  EXPECT_EQ(watchdog.site_liveness(SiteId(0)), SiteLiveness::kAlive);
  EXPECT_EQ(watchdog.status(SiteId(0)).incarnation, 1u);
}

TEST(QuorumLiveness, FaultFreeGossipRunKeepsEveryDeathCounterZero) {
  const auto suspects_before = counter_value("liveness.suspects");
  const auto quorum_before = counter_value("liveness.deaths_quorum");
  const auto timeout_before = counter_value("liveness.deaths_timeout");
  const auto conclusive_before = counter_value("liveness.deaths_conclusive");
  const auto site_down_before = counter_value("watchdog.site_down");

  auto config = gossip_watchdog_config();
  config.heartbeat_timeout_s = 2.0;  // CI-safe: no spurious suspicion
  {
    Watchdog watchdog(config);
    watchdog.spawn(SiteId(0));
    watchdog.spawn(SiteId(1));
    wait_until_up(watchdog, SiteId(0));
    wait_until_up(watchdog, SiteId(1));

    // Let several gossip rounds run: probes, rosters, digests and
    // refutations all fire, but none of it may produce liveness state.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    EXPECT_EQ(watchdog.site_liveness(SiteId(0)), SiteLiveness::kAlive);
    EXPECT_EQ(watchdog.site_liveness(SiteId(1)), SiteLiveness::kAlive);
    const auto stats = watchdog.liveness().stats();
    EXPECT_EQ(stats.suspects, 0u);
    EXPECT_EQ(stats.deaths_quorum, 0u);
    EXPECT_EQ(stats.deaths_timeout, 0u);
    EXPECT_EQ(stats.deaths_conclusive, 0u);
    EXPECT_EQ(stats.false_alarm_recoveries, 0u);
    EXPECT_EQ(watchdog.total_restarts(), 0u);
  }
  // Exact global-counter reconciliation with the in-process baseline:
  // a fault-free daemon-mode run adds NOTHING to the liveness ledger.
  EXPECT_EQ(counter_value("liveness.suspects") - suspects_before, 0u);
  EXPECT_EQ(counter_value("liveness.deaths_quorum") - quorum_before, 0u);
  EXPECT_EQ(counter_value("liveness.deaths_timeout") - timeout_before, 0u);
  EXPECT_EQ(counter_value("liveness.deaths_conclusive") - conclusive_before,
            0u);
  EXPECT_EQ(counter_value("watchdog.site_down") - site_down_before, 0u);
}

TEST(QuorumLiveness, RpcEndpointIsFencedAcrossARestartRace) {
  auto config = gossip_watchdog_config();
  Watchdog watchdog(config);
  std::atomic<int> down_events{0};
  watchdog.set_on_site_down([&](SiteId) { down_events.fetch_add(1); });
  watchdog.spawn(SiteId(0));
  wait_until_up(watchdog, SiteId(0));

  const auto first = watchdog.rpc_endpoint(SiteId(0));
  EXPECT_EQ(first.incarnation, 1u);
  EXPECT_NE(first.port, 0u);
  EXPECT_EQ(watchdog.incarnation(SiteId(0)), 1u);

  watchdog.kill_daemon(SiteId(0), SIGKILL);
  // Once the death is declared the old port is withdrawn: rpc_endpoint
  // racing the restart must block until the NEW incarnation's first
  // beat and never hand back the stale port with a stale fence token.
  const double deadline = steady_s() + 15.0;
  while (steady_s() < deadline && down_events.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GT(down_events.load(), 0) << "death never declared";

  const auto second = watchdog.rpc_endpoint(SiteId(0), 15.0);
  EXPECT_EQ(second.incarnation, 2u);
  EXPECT_NE(second.port, 0u);
  EXPECT_EQ(watchdog.incarnation(SiteId(0)), 2u);
  // The fenced endpoint actually serves: the legacy port accessor and
  // the endpoint agree.
  EXPECT_EQ(watchdog.rpc_port(SiteId(0)), second.port);
  daemon::DaemonClient client(second.port);
  client.set_incarnation(second.incarnation);
  client.tick(1.0);
  EXPECT_EQ(client.incarnation(), 2u);
}

}  // namespace
}  // namespace vdce::rt
