// Tests for the Application Scheduler: eligibility, the Host Selection
// Algorithm (Figure 5), the Site Scheduler Algorithm (Figure 4), the
// allocation table, and the baseline policies.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/error.hpp"
#include "netsim/testbed.hpp"
#include "scheduler/baselines.hpp"
#include "scheduler/directory.hpp"
#include "scheduler/eligibility.hpp"
#include "scheduler/host_selection.hpp"
#include "scheduler/qos.hpp"
#include "scheduler/site_scheduler.hpp"
#include "sim/workloads.hpp"
#include "tasklib/registry.hpp"

namespace vdce::sched {
namespace {

using common::HostId;
using common::SiteId;
using common::TaskId;

/// A fully populated multi-site environment for scheduler tests.
class SchedulerEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    netsim::RandomTestbedParams params;
    params.num_sites = 3;
    params.groups_per_site = 2;
    params.hosts_per_group = 3;
    testbed_ = std::make_unique<netsim::VirtualTestbed>(
        netsim::make_random_testbed(params, 7));
    for (const SiteId site : testbed_->sites()) {
      auto repository = std::make_unique<repo::SiteRepository>(site);
      tasklib::builtin_registry().install_defaults(repository->tasks());
      testbed_->populate_repository(*repository, site);
      directory_.add_site(site, repository.get());
      repositories_.push_back(std::move(repository));
    }
  }

  afg::FlowGraph chain3() {
    afg::FlowGraph g("chain");
    const auto a = g.add_task("synth_source", "a");
    const auto b = g.add_task("synth_compute", "b");
    const auto c = g.add_task("synth_sink", "c");
    g.add_link(a, b, 1.0);
    g.add_link(b, c, 1.0);
    return g;
  }

  std::unique_ptr<netsim::VirtualTestbed> testbed_;
  std::vector<std::unique_ptr<repo::SiteRepository>> repositories_;
  RepositoryDirectory directory_;
};

// ---------------------------------------------------------- eligibility

TEST_F(SchedulerEnv, EligibilityHonoursConstraints) {
  afg::TaskNode node;
  node.id = TaskId(0);
  node.library_task = "synth_compute";
  const auto& repository = *repositories_[0];
  for (const HostId h : eligible_hosts(repository, node)) {
    EXPECT_TRUE(repository.constraints().can_run("synth_compute", h));
  }
}

TEST_F(SchedulerEnv, EligibilityHonoursLiveness) {
  afg::TaskNode node;
  node.id = TaskId(0);
  node.library_task = "synth_compute";
  auto& repository = *repositories_[0];
  const auto before = eligible_hosts(repository, node);
  ASSERT_FALSE(before.empty());
  repository.resources().set_alive(before.front(), false, 1.0);
  const auto after = eligible_hosts(repository, node);
  EXPECT_EQ(after.size(), before.size() - 1);
  EXPECT_FALSE(is_eligible(repository, node, before.front()));
}

TEST_F(SchedulerEnv, EligibilityHonoursArchPreference) {
  afg::TaskNode node;
  node.id = TaskId(0);
  node.library_task = "synth_compute";
  node.props.preferred_arch = repo::ArchType::kAlpha;
  const auto& repository = *repositories_[0];
  for (const HostId h : eligible_hosts(repository, node)) {
    EXPECT_EQ(repository.resources().get(h).static_attrs.arch,
              repo::ArchType::kAlpha);
  }
}

TEST_F(SchedulerEnv, EligibilitySiteFilter) {
  afg::TaskNode node;
  node.id = TaskId(0);
  node.library_task = "synth_compute";
  const auto& repository = *repositories_[0];
  for (const HostId h : eligible_hosts(repository, node, SiteId(1))) {
    EXPECT_EQ(repository.resources().get(h).static_attrs.site, SiteId(1));
  }
}

// ------------------------------------------------------- host selection

TEST_F(SchedulerEnv, HostSelectionPicksMinimumPrediction) {
  const auto graph = chain3();
  const predict::PerformancePredictor& predictor =
      directory_.predictor(SiteId(0));
  const auto result = run_host_selection(graph, SiteId(0), predictor);
  ASSERT_EQ(result.size(), graph.task_count());
  for (const auto& node : graph.tasks()) {
    const HostSelection& sel = result.at(node.id);
    ASSERT_TRUE(sel.feasible());
    // No eligible in-site host predicts better than the chosen one.
    for (const HostId h :
         eligible_hosts(*repositories_[0], node, SiteId(0))) {
      EXPECT_LE(sel.predicted_s - 1e-12,
                predictor.predict(node.library_task, node.props.input_size,
                                  h));
    }
  }
}

TEST_F(SchedulerEnv, HostSelectionStaysInSite) {
  const auto graph = chain3();
  const auto result =
      run_host_selection(graph, SiteId(2), directory_.predictor(SiteId(2)));
  for (const auto& [task, sel] : result) {
    for (const HostId h : sel.hosts) {
      EXPECT_EQ(repositories_[0]->resources().get(h).static_attrs.site,
                SiteId(2));
    }
  }
}

TEST_F(SchedulerEnv, HostSelectionParallelTask) {
  afg::FlowGraph g("par");
  afg::TaskProperties props;
  props.mode = afg::ComputeMode::kParallel;
  props.num_processors = 3;
  g.add_task("synth_source", "p", props);
  const auto result =
      run_host_selection(g, SiteId(0), directory_.predictor(SiteId(0)));
  const auto& sel = result.begin()->second;
  ASSERT_TRUE(sel.feasible());
  EXPECT_EQ(sel.hosts.size(), 3u);
  // Hosts are distinct.
  auto hosts = sel.hosts;
  std::sort(hosts.begin(), hosts.end());
  EXPECT_EQ(std::unique(hosts.begin(), hosts.end()), hosts.end());
}

TEST_F(SchedulerEnv, HostSelectionInfeasibleWhenTooManyProcs) {
  afg::FlowGraph g("par");
  afg::TaskProperties props;
  props.mode = afg::ComputeMode::kParallel;
  props.num_processors = 100;  // more than any site has
  g.add_task("synth_source", "p", props);
  const auto result =
      run_host_selection(g, SiteId(0), directory_.predictor(SiteId(0)));
  EXPECT_FALSE(result.begin()->second.feasible());
}

// ------------------------------------------------------- site scheduler

TEST_F(SchedulerEnv, ScheduleCoversAllTasks) {
  SiteScheduler scheduler(SiteId(0), directory_);
  const auto graph = chain3();
  const auto table = scheduler.schedule(graph);
  EXPECT_EQ(table.size(), graph.task_count());
  for (const auto& node : graph.tasks()) {
    EXPECT_TRUE(table.contains(node.id));
  }
}

TEST_F(SchedulerEnv, ConsultsLocalPlusKNearest) {
  SiteSchedulerConfig config;
  config.k_nearest = 1;
  SiteScheduler scheduler(SiteId(0), directory_, config);
  (void)scheduler.schedule(chain3());
  ASSERT_EQ(scheduler.consulted_sites().size(), 2u);
  EXPECT_EQ(scheduler.consulted_sites()[0], SiteId(0));
  // Site 1 is nearer to site 0 than site 2 in the random testbed
  // (WAN latency grows with index distance).
  EXPECT_EQ(scheduler.consulted_sites()[1], SiteId(1));
}

TEST_F(SchedulerEnv, KZeroIsLocalOnly) {
  SiteSchedulerConfig config;
  config.k_nearest = 0;
  SiteScheduler scheduler(SiteId(0), directory_, config);
  const auto table = scheduler.schedule(chain3());
  for (const auto& row : table.rows()) {
    EXPECT_EQ(row.site, SiteId(0));
  }
}

TEST_F(SchedulerEnv, AssignedHostsAreEligible) {
  SiteScheduler scheduler(SiteId(0), directory_);
  const auto graph = sim::make_linear_solver_graph();
  const auto table = scheduler.schedule(graph);
  for (const auto& node : graph.tasks()) {
    const auto& entry = table.entry(node.id);
    for (const HostId h : entry.hosts) {
      EXPECT_TRUE(is_eligible(*repositories_[0], node, h))
          << "task " << node.label;
    }
  }
}

TEST_F(SchedulerEnv, ThrowsWhenNoFeasibleHost) {
  afg::FlowGraph g("impossible");
  afg::TaskProperties props;
  props.mode = afg::ComputeMode::kParallel;
  props.num_processors = 100;
  g.add_task("synth_source", "p", props);
  SiteScheduler scheduler(SiteId(0), directory_);
  EXPECT_THROW((void)scheduler.schedule(g), SchedulingError);
}

TEST_F(SchedulerEnv, SchedulesDeterministically) {
  SiteScheduler a(SiteId(0), directory_);
  SiteScheduler b(SiteId(0), directory_);
  const auto graph = sim::make_linear_solver_graph();
  const auto ta = a.schedule(graph);
  const auto tb = b.schedule(graph);
  for (const auto& row : ta.rows()) {
    EXPECT_EQ(row.hosts, tb.entry(row.task).hosts);
    EXPECT_EQ(row.site, tb.entry(row.task).site);
  }
}

TEST_F(SchedulerEnv, TransferAwareKeepsChainsTogether) {
  // With heavy links, transfer-aware scheduling should co-locate a
  // chain more than the transfer-blind ablation (or at least never use
  // more sites).
  common::Rng rng(5);
  sim::SyntheticGraphParams params;
  params.family = sim::GraphFamily::kChain;
  params.size = 8;
  params.min_transfer_mb = 50.0;
  params.max_transfer_mb = 100.0;
  const auto graph = sim::make_synthetic_graph(params, rng);

  SiteSchedulerConfig aware;
  aware.transfer_aware = true;
  SiteSchedulerConfig blind;
  blind.transfer_aware = false;
  SiteScheduler s_aware(SiteId(0), directory_, aware);
  SiteScheduler s_blind(SiteId(0), directory_, blind);
  const auto sites_aware =
      s_aware.schedule(graph).sites_involved().size();
  const auto sites_blind =
      s_blind.schedule(graph).sites_involved().size();
  EXPECT_LE(sites_aware, sites_blind);
}

TEST_F(SchedulerEnv, HostSelectionExposesFullRanking) {
  const auto graph = chain3();
  const auto result =
      run_host_selection(graph, SiteId(0), directory_.predictor(SiteId(0)));
  for (const auto& [task, sel] : result) {
    ASSERT_FALSE(sel.scored.empty());
    // Ascending predictions; the pick is the head of the ranking.
    for (std::size_t i = 1; i < sel.scored.size(); ++i) {
      EXPECT_LE(sel.scored[i - 1].first, sel.scored[i].first);
    }
    EXPECT_EQ(sel.hosts.front(), sel.scored.front().second);
  }
}

TEST_F(SchedulerEnv, QueueAwareSpreadsWideGraphs) {
  common::Rng rng(77);
  sim::SyntheticGraphParams params;
  params.family = sim::GraphFamily::kIndependent;
  params.size = 10;
  params.min_transfer_mb = 0.01;
  params.max_transfer_mb = 0.05;
  const auto graph = sim::make_synthetic_graph(params, rng);

  SiteSchedulerConfig plain;
  SiteSchedulerConfig qa;
  qa.queue_aware = true;
  SiteScheduler s_plain(SiteId(0), directory_, plain);
  SiteScheduler s_qa(SiteId(0), directory_, qa);
  const auto hosts_plain = s_plain.schedule(graph).hosts_involved().size();
  const auto hosts_qa = s_qa.schedule(graph).hosts_involved().size();
  EXPECT_GT(hosts_qa, hosts_plain);
}

TEST_F(SchedulerEnv, QueueAwareKeepsChainsColocated) {
  // A pure chain has no parallelism: queue awareness must not scatter
  // it (the ECT model sees no contention).
  common::Rng rng(78);
  sim::SyntheticGraphParams params;
  params.family = sim::GraphFamily::kChain;
  params.size = 8;
  params.min_transfer_mb = 20.0;
  params.max_transfer_mb = 40.0;
  const auto graph = sim::make_synthetic_graph(params, rng);

  SiteSchedulerConfig qa;
  qa.queue_aware = true;
  SiteScheduler scheduler(SiteId(0), directory_, qa);
  const auto table = scheduler.schedule(graph);
  EXPECT_LE(table.hosts_involved().size(), 3u);
}

TEST_F(SchedulerEnv, QueueAwareStillHonoursEligibility) {
  SiteSchedulerConfig qa;
  qa.queue_aware = true;
  SiteScheduler scheduler(SiteId(0), directory_, qa);
  const auto graph = sim::make_linear_solver_graph();
  const auto table = scheduler.schedule(graph);
  for (const auto& node : graph.tasks()) {
    for (const HostId h : table.entry(node.id).hosts) {
      EXPECT_TRUE(is_eligible(*repositories_[0], node, h));
    }
  }
}

TEST_F(SchedulerEnv, HostTransferEstimates) {
  const auto& repository = *repositories_[0];
  const auto hosts = repository.resources().all_hosts();
  ASSERT_GE(hosts.size(), 2u);
  // Same host: free.
  EXPECT_DOUBLE_EQ(
      estimate_host_transfer(repository, hosts[0].host, hosts[0].host, 10.0),
      0.0);
  // Across hosts: positive and grows with size.
  const auto a = hosts.front().host;
  const auto b = hosts.back().host;
  const double small = estimate_host_transfer(repository, a, b, 1.0);
  const double large = estimate_host_transfer(repository, a, b, 100.0);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);
  // Directory forwards the same estimate.
  EXPECT_DOUBLE_EQ(directory_.host_transfer_time(a, b, 1.0), small);
}

// ------------------------------------------------------------------ qos

TEST_F(SchedulerEnv, PredictedMakespanRespectsStructure) {
  // A chain's predicted makespan is at least the sum of its per-task
  // predictions (serial), a wide graph's less than the sum (parallel).
  SiteSchedulerConfig qa;
  qa.queue_aware = true;
  SiteScheduler scheduler(SiteId(0), directory_, qa);

  common::Rng rng(31);
  sim::SyntheticGraphParams chain_params;
  chain_params.family = sim::GraphFamily::kChain;
  chain_params.size = 6;
  const auto chain = sim::make_synthetic_graph(chain_params, rng);
  const auto chain_table = scheduler.schedule(chain);
  EXPECT_GE(predicted_makespan(chain, chain_table, directory_) + 1e-9,
            chain_table.total_predicted());

  sim::SyntheticGraphParams wide_params;
  wide_params.family = sim::GraphFamily::kIndependent;
  wide_params.size = 8;
  const auto wide = sim::make_synthetic_graph(wide_params, rng);
  SiteScheduler scheduler2(SiteId(0), directory_, qa);
  const auto wide_table = scheduler2.schedule(wide);
  EXPECT_LT(predicted_makespan(wide, wide_table, directory_),
            wide_table.total_predicted());
}

TEST_F(SchedulerEnv, QosAdmitsGenerousDeadline) {
  SiteScheduler scheduler(SiteId(0), directory_);
  const auto graph = sim::make_linear_solver_graph();
  const auto table = scheduler.schedule(graph);
  const auto admission =
      check_qos(graph, table, directory_, QosRequirement{1e6});
  EXPECT_TRUE(admission.admitted);
  EXPECT_GT(admission.predicted_makespan_s, 0.0);
  EXPECT_GT(admission.slack_s, 0.0);
}

TEST_F(SchedulerEnv, QosRejectsImpossibleDeadline) {
  SiteScheduler scheduler(SiteId(0), directory_);
  const auto graph = sim::make_linear_solver_graph();
  const auto table = scheduler.schedule(graph);
  const auto admission =
      check_qos(graph, table, directory_, QosRequirement{1e-6});
  EXPECT_FALSE(admission.admitted);
  EXPECT_LT(admission.slack_s, 0.0);
}

TEST_F(SchedulerEnv, QosBoundaryIsInclusive) {
  SiteScheduler scheduler(SiteId(0), directory_);
  const auto graph = sim::make_c3i_graph();
  const auto table = scheduler.schedule(graph);
  const double estimate = predicted_makespan(graph, table, directory_);
  EXPECT_TRUE(
      check_qos(graph, table, directory_, QosRequirement{estimate})
          .admitted);
}

// ---------------------------------------------------- allocation table

TEST(AllocationTableTest, AddReplaceLookup) {
  AllocationTable table("app");
  AllocationEntry e;
  e.task = TaskId(0);
  e.task_label = "a";
  e.hosts = {HostId(3)};
  e.site = SiteId(1);
  e.predicted_s = 2.0;
  table.add(e);
  EXPECT_THROW(table.add(e), common::StateError);
  EXPECT_EQ(table.entry(TaskId(0)).primary_host(), HostId(3));

  e.hosts = {HostId(5)};
  table.replace(e);
  EXPECT_EQ(table.entry(TaskId(0)).primary_host(), HostId(5));

  AllocationEntry other;
  other.task = TaskId(9);
  other.hosts = {HostId(1)};
  EXPECT_THROW(table.replace(other), common::NotFoundError);
  EXPECT_THROW((void)table.entry(TaskId(9)), common::NotFoundError);
}

TEST(AllocationTableTest, EmptyHostsRejected) {
  AllocationTable table("app");
  AllocationEntry e;
  e.task = TaskId(0);
  EXPECT_THROW(table.add(e), common::StateError);
}

TEST(AllocationTableTest, PortionsAndAggregates) {
  AllocationTable table("app");
  for (int i = 0; i < 4; ++i) {
    AllocationEntry e;
    e.task = TaskId(i);
    e.task_label = "t" + std::to_string(i);
    e.hosts = {HostId(i % 2)};
    e.site = SiteId(i % 2);
    e.predicted_s = 1.0;
    table.add(e);
  }
  EXPECT_EQ(table.portion_for_host(HostId(0)).size(), 2u);
  EXPECT_EQ(table.portion_for_host(HostId(1)).size(), 2u);
  EXPECT_EQ(table.portion_for_host(HostId(9)).size(), 0u);
  EXPECT_EQ(table.sites_involved().size(), 2u);
  EXPECT_EQ(table.hosts_involved().size(), 2u);
  EXPECT_DOUBLE_EQ(table.total_predicted(), 4.0);
  // rows() ordered by task id.
  const auto rows = table.rows();
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1].task, rows[i].task);
  }
}

// ------------------------------------------------------------ baselines

TEST_F(SchedulerEnv, RandomSchedulerCoversAndIsEligible) {
  RandomScheduler scheduler(*repositories_[0], 99);
  const auto graph = sim::make_linear_solver_graph();
  const auto table = scheduler.schedule(graph);
  EXPECT_EQ(table.size(), graph.task_count());
  for (const auto& node : graph.tasks()) {
    EXPECT_TRUE(
        is_eligible(*repositories_[0], node, table.entry(node.id).hosts[0]));
  }
}

TEST_F(SchedulerEnv, RoundRobinSpreadsLoad) {
  RoundRobinScheduler scheduler(*repositories_[0]);
  common::Rng rng(3);
  sim::SyntheticGraphParams params;
  params.family = sim::GraphFamily::kIndependent;
  params.size = 9;  // 18 tasks
  const auto graph = sim::make_synthetic_graph(params, rng);
  const auto table = scheduler.schedule(graph);
  // Round robin should touch many machines.
  EXPECT_GE(table.hosts_involved().size(), 6u);
}

TEST_F(SchedulerEnv, LocalOnlyStaysLocal) {
  LocalOnlyScheduler scheduler(*repositories_[0], SiteId(1));
  const auto table = scheduler.schedule(chain3());
  for (const auto& row : table.rows()) {
    EXPECT_EQ(row.site, SiteId(1));
  }
}

TEST_F(SchedulerEnv, MinMinCoversAllTasks) {
  MinMinScheduler minmin(*repositories_[0], /*largest_first=*/false);
  MinMinScheduler maxmin(*repositories_[0], /*largest_first=*/true);
  const auto graph = sim::make_linear_solver_graph();
  EXPECT_EQ(minmin.schedule(graph).size(), graph.task_count());
  EXPECT_EQ(maxmin.schedule(graph).size(), graph.task_count());
}

TEST_F(SchedulerEnv, MinMinBalancesIndependentTasks) {
  MinMinScheduler scheduler(*repositories_[0], false);
  common::Rng rng(4);
  sim::SyntheticGraphParams params;
  params.family = sim::GraphFamily::kIndependent;
  params.size = 12;
  const auto graph = sim::make_synthetic_graph(params, rng);
  const auto table = scheduler.schedule(graph);
  // Completion-time tracking forces use of more than one machine.
  EXPECT_GE(table.hosts_involved().size(), 3u);
}

TEST_F(SchedulerEnv, BaselinesThrowWhenImpossible) {
  afg::FlowGraph g("impossible");
  afg::TaskProperties props;
  props.mode = afg::ComputeMode::kParallel;
  props.num_processors = 100;
  g.add_task("synth_source", "p", props);
  RandomScheduler r(*repositories_[0], 1);
  EXPECT_THROW((void)r.schedule(g), SchedulingError);
  MinMinScheduler m(*repositories_[0], false);
  EXPECT_THROW((void)m.schedule(g), SchedulingError);
}

// Parameterized sweep: every policy schedules every graph family.
class PolicyFamilySweep
    : public SchedulerEnv,
      public ::testing::WithParamInterface<
          std::tuple<int, sim::GraphFamily>> {};

TEST_P(PolicyFamilySweep, SchedulesCleanly) {
  const auto [policy, family] = GetParam();
  common::Rng rng(42);
  sim::SyntheticGraphParams params;
  params.family = family;
  params.size = 4;
  params.width = 3;
  const auto graph = sim::make_synthetic_graph(params, rng);

  std::unique_ptr<Scheduler> scheduler;
  switch (policy) {
    case 0:
      scheduler = std::make_unique<SiteScheduler>(SiteId(0), directory_);
      break;
    case 1:
      scheduler = std::make_unique<RandomScheduler>(*repositories_[0], 5);
      break;
    case 2:
      scheduler = std::make_unique<RoundRobinScheduler>(*repositories_[0]);
      break;
    case 3:
      scheduler =
          std::make_unique<MinMinScheduler>(*repositories_[0], false);
      break;
    case 4:
      scheduler =
          std::make_unique<LocalOnlyScheduler>(*repositories_[0], SiteId(0));
      break;
  }
  const auto table = scheduler->schedule(graph);
  EXPECT_EQ(table.size(), graph.task_count());
  for (const auto& node : graph.tasks()) {
    const auto& entry = table.entry(node.id);
    EXPECT_FALSE(entry.hosts.empty());
    EXPECT_GE(entry.predicted_s, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyFamilySweep,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(sim::GraphFamily::kChain,
                                         sim::GraphFamily::kForkJoin,
                                         sim::GraphFamily::kLayered,
                                         sim::GraphFamily::kInTree,
                                         sim::GraphFamily::kIndependent)));

}  // namespace
}  // namespace vdce::sched
