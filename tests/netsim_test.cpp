// Tests for the virtual testbed substrate: load processes, topology,
// transfer model, failures, measurement, repository population.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "netsim/testbed.hpp"
#include "tasklib/registry.hpp"

namespace vdce::netsim {
namespace {

using common::GroupId;
using common::HostId;
using common::SiteId;

// ------------------------------------------------------------- loadgen

TEST(BackgroundLoadTest, NonNegative) {
  BackgroundLoad load(0.3, 0.2, 1);
  for (double t = 0.0; t < 200.0; t += 1.0) {
    EXPECT_GE(load.at(t), 0.0);
  }
}

TEST(BackgroundLoadTest, DeterministicForSeed) {
  BackgroundLoad a(0.5, 0.1, 7), b(0.5, 0.1, 7);
  for (double t = 0.0; t < 50.0; t += 1.0) {
    EXPECT_DOUBLE_EQ(a.at(t), b.at(t));
  }
}

TEST(BackgroundLoadTest, MeanReverts) {
  BackgroundLoad load(1.0, 0.05, 3);
  common::RunningStats stats;
  for (double t = 0.0; t < 2000.0; t += 1.0) stats.add(load.at(t));
  EXPECT_NEAR(stats.mean(), 1.0, 0.15);
}

TEST(BackgroundLoadTest, SpikeApplies) {
  BackgroundLoad load(0.0, 0.0, 1);  // deterministic zero base
  load.add_spike({10.0, 5.0, 3.0});
  EXPECT_DOUBLE_EQ(load.at(9.0), 0.0);
  EXPECT_DOUBLE_EQ(load.at(12.0), 3.0);
  EXPECT_DOUBLE_EQ(load.at(15.0), 0.0);  // [start, start+length)
}

TEST(BackgroundLoadTest, RejectsBadParams) {
  EXPECT_THROW(BackgroundLoad(-1.0, 0.1, 1), common::StateError);
  BackgroundLoad ok(0.1, 0.1, 1);
  EXPECT_THROW(ok.add_spike({0, -1, 1}), common::StateError);
}

// ------------------------------------------------------------- topology

class CampusTestbed : public ::testing::Test {
 protected:
  CampusTestbed() : testbed_(make_campus_testbed(42)) {}
  VirtualTestbed testbed_;
};

TEST_F(CampusTestbed, Shape) {
  EXPECT_EQ(testbed_.sites().size(), 2u);
  EXPECT_EQ(testbed_.host_count(), 10u);  // 4 + 3 + 3
  EXPECT_EQ(testbed_.groups_in_site(SiteId(0)).size(), 2u);
  EXPECT_EQ(testbed_.groups_in_site(SiteId(1)).size(), 1u);
  EXPECT_EQ(testbed_.site_name(SiteId(0)), "syracuse");
  EXPECT_EQ(testbed_.site_name(SiteId(1)), "rome");
}

TEST_F(CampusTestbed, HostMembership) {
  for (const HostId h : testbed_.all_hosts()) {
    const SiteId site = testbed_.site_of(h);
    const GroupId group = testbed_.group_of(h);
    const auto in_site = testbed_.hosts_in_site(site);
    const auto in_group = testbed_.hosts_in_group(group);
    EXPECT_NE(std::find(in_site.begin(), in_site.end(), h), in_site.end());
    EXPECT_NE(std::find(in_group.begin(), in_group.end(), h),
              in_group.end());
  }
}

TEST_F(CampusTestbed, UnknownIdsThrow) {
  EXPECT_THROW((void)testbed_.host_spec(HostId(99)), common::NotFoundError);
  EXPECT_THROW((void)testbed_.site_name(SiteId(9)), common::StateError);
}

TEST(RandomTestbed, RespectsParams) {
  RandomTestbedParams p;
  p.num_sites = 5;
  p.groups_per_site = 3;
  p.hosts_per_group = 2;
  VirtualTestbed tb(make_random_testbed(p, 1));
  EXPECT_EQ(tb.sites().size(), 5u);
  EXPECT_EQ(tb.host_count(), 30u);
  // All-pairs WAN links exist.
  for (std::size_t a = 0; a < 5; ++a) {
    for (std::size_t b = a + 1; b < 5; ++b) {
      EXPECT_TRUE(tb.wan_link(SiteId(a), SiteId(b)).has_value());
    }
  }
}

TEST(RandomTestbed, DeterministicForSeed) {
  RandomTestbedParams p;
  const auto cfg_a = make_random_testbed(p, 5);
  const auto cfg_b = make_random_testbed(p, 5);
  ASSERT_EQ(cfg_a.sites.size(), cfg_b.sites.size());
  for (std::size_t s = 0; s < cfg_a.sites.size(); ++s) {
    for (std::size_t g = 0; g < cfg_a.sites[s].groups.size(); ++g) {
      for (std::size_t h = 0; h < cfg_a.sites[s].groups[g].hosts.size();
           ++h) {
        EXPECT_DOUBLE_EQ(cfg_a.sites[s].groups[g].hosts[h].power_weight,
                         cfg_b.sites[s].groups[g].hosts[h].power_weight);
      }
    }
  }
}

// -------------------------------------------------------------- network

TEST_F(CampusTestbed, SameHostTransferFree) {
  const auto h = testbed_.all_hosts().front();
  EXPECT_DOUBLE_EQ(testbed_.transfer_time(h, h, 100.0), 0.0);
}

TEST_F(CampusTestbed, IntraGroupFasterThanWan) {
  const auto g0 = testbed_.hosts_in_group(GroupId(0));
  ASSERT_GE(g0.size(), 2u);
  const auto rome = testbed_.hosts_in_site(SiteId(1));
  const double lan = testbed_.transfer_time(g0[0], g0[1], 1.0);
  const double wan = testbed_.transfer_time(g0[0], rome[0], 1.0);
  EXPECT_LT(lan, wan);
}

TEST_F(CampusTestbed, TransferScalesWithSize) {
  const auto g0 = testbed_.hosts_in_group(GroupId(0));
  EXPECT_LT(testbed_.transfer_time(g0[0], g0[1], 1.0),
            testbed_.transfer_time(g0[0], g0[1], 100.0));
}

TEST_F(CampusTestbed, SiteTransferSymmetric) {
  EXPECT_DOUBLE_EQ(testbed_.site_transfer_time(SiteId(0), SiteId(1), 5.0),
                   testbed_.site_transfer_time(SiteId(1), SiteId(0), 5.0));
  EXPECT_DOUBLE_EQ(testbed_.site_transfer_time(SiteId(0), SiteId(0), 5.0),
                   0.0);
}

TEST_F(CampusTestbed, NegativeTransferRejected) {
  const auto h = testbed_.all_hosts();
  EXPECT_THROW((void)testbed_.transfer_time(h[0], h[1], -1.0),
               common::StateError);
}

// ------------------------------------------------------------- failures

TEST_F(CampusTestbed, FailureWindow) {
  const auto h = testbed_.all_hosts().front();
  testbed_.fail_host(h, 10.0, 5.0);
  EXPECT_TRUE(testbed_.is_alive(h, 9.9));
  EXPECT_FALSE(testbed_.is_alive(h, 10.0));
  EXPECT_FALSE(testbed_.is_alive(h, 14.9));
  EXPECT_TRUE(testbed_.is_alive(h, 15.0));
}

TEST_F(CampusTestbed, MultipleFailureWindows) {
  const auto h = testbed_.all_hosts().front();
  testbed_.fail_host(h, 10.0, 2.0);
  testbed_.fail_host(h, 20.0, 2.0);
  EXPECT_FALSE(testbed_.is_alive(h, 11.0));
  EXPECT_TRUE(testbed_.is_alive(h, 15.0));
  EXPECT_FALSE(testbed_.is_alive(h, 21.0));
}

// ---------------------------------------------------------- measurement

TEST_F(CampusTestbed, MeasurementTracksTruth) {
  const auto h = testbed_.all_hosts().front();
  for (double t = 1.0; t < 50.0; t += 1.0) {
    const double truth = testbed_.true_load(h, t);
    const double measured = testbed_.measure_load(h, t);
    EXPECT_NEAR(measured, truth, 0.25 * truth + 1e-9);
    EXPECT_GE(measured, 0.0);
  }
}

TEST_F(CampusTestbed, MemoryDeclinesWithLoad) {
  const auto h = testbed_.all_hosts().front();
  testbed_.add_load_spike(h, {100.0, 10.0, 4.0});
  const double before = testbed_.true_available_memory(h, 99.0);
  const double during = testbed_.true_available_memory(h, 101.0);
  EXPECT_GT(before, during);
  EXPECT_GT(during, 0.0);
}

// ------------------------------------------------------ execution model

TEST_F(CampusTestbed, ExecutionScalesInverselyWithWeight) {
  repo::TaskPerformanceRecord rec;
  rec.task_name = "bench";
  rec.base_time_s = 10.0;
  rec.memory_req_mb = 1.0;
  const auto hosts = testbed_.all_hosts();
  // Find two hosts with different generic power.
  const auto t0 = testbed_.execution_time(rec, 1.0, hosts[0], 0.0, 1e9);
  const double w0 = testbed_.true_power_weight(hosts[0], "bench");
  EXPECT_NEAR(t0, 10.0 / w0, 1e-9);
}

TEST_F(CampusTestbed, LoadStretchesExecution) {
  repo::TaskPerformanceRecord rec;
  rec.task_name = "bench";
  rec.base_time_s = 10.0;
  const auto h = testbed_.all_hosts().front();
  EXPECT_DOUBLE_EQ(testbed_.execution_time(rec, 1.0, h, 3.0, 1e9),
                   4.0 * testbed_.execution_time(rec, 1.0, h, 0.0, 1e9));
}

TEST_F(CampusTestbed, MemoryPressureStretchesExecution) {
  repo::TaskPerformanceRecord rec;
  rec.task_name = "bench";
  rec.base_time_s = 10.0;
  rec.memory_req_mb = 100.0;
  const auto h = testbed_.all_hosts().front();
  EXPECT_GT(testbed_.execution_time(rec, 1.0, h, 0.0, 50.0),
            testbed_.execution_time(rec, 1.0, h, 0.0, 200.0));
}

TEST_F(CampusTestbed, AffinityVariesAcrossTasks) {
  // The same host should not have identical weights for every task
  // ("the performance of the processors changes from one application
  // to another").
  const auto h = testbed_.all_hosts().front();
  const double w1 = testbed_.true_power_weight(h, "lu_decomposition");
  const double w2 = testbed_.true_power_weight(h, "fft_forward");
  const double w3 = testbed_.true_power_weight(h, "track_filter");
  EXPECT_FALSE(w1 == w2 && w2 == w3);
}

TEST_F(CampusTestbed, AffinityDeterministic) {
  VirtualTestbed other(make_campus_testbed(42));
  const auto h = testbed_.all_hosts().front();
  EXPECT_DOUBLE_EQ(testbed_.true_power_weight(h, "fft_forward"),
                   other.true_power_weight(h, "fft_forward"));
}

// ---------------------------------------------------------- repository

TEST_F(CampusTestbed, PopulateRepository) {
  repo::SiteRepository repository(SiteId(0));
  tasklib::builtin_registry().install_defaults(repository.tasks());
  testbed_.populate_repository(repository, SiteId(0));

  // Every host registered.
  EXPECT_EQ(repository.resources().size(), testbed_.host_count());
  // WAN link recorded.
  EXPECT_TRUE(repository.resources()
                  .site_network(SiteId(0), SiteId(1))
                  .has_value());
  // Constraints: most (task, host) pairs allowed, some excluded.
  std::size_t allowed = 0, total = 0;
  for (const auto& task : repository.tasks().task_names()) {
    for (const HostId h : testbed_.all_hosts()) {
      ++total;
      if (repository.constraints().can_run(task, h)) ++allowed;
    }
  }
  EXPECT_GT(allowed, total * 3 / 4);
  EXPECT_LT(allowed, total);

  // Trial-run weights approximate the truth.
  const auto h = testbed_.all_hosts().front();
  const auto rec = repository.resources().get(h);
  const double measured = repository.tasks().power_weight(
      "lu_decomposition", h, rec.static_attrs.arch);
  const double truth = testbed_.true_power_weight(h, "lu_decomposition");
  EXPECT_NEAR(measured, truth, 0.25 * truth);
}

}  // namespace
}  // namespace vdce::netsim
