// Out-of-process control plane tests (DESIGN.md D14): the versioned
// wire format and its rejection rules, the ControlTransport seam
// (loopback and channel-backed), deadline regressions for the blocking
// transport primitives, and the site-daemon / watchdog stack -- up to
// the acceptance properties that a daemon-mode deployment is
// bit-identical to the in-process run and that a SIGKILLed daemon is
// restarted by the watchdog while the submission service fails the
// application over, with exact counter reconciliation.
#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "daemon/client.hpp"
#include "daemon/site_daemon.hpp"
#include "datamgr/channel.hpp"
#include "datamgr/tcp.hpp"
#include "netsim/chaos.hpp"
#include "netsim/testbed.hpp"
#include "predict/forecaster.hpp"
#include "repository/repository.hpp"
#include "runtime/control_manager.hpp"
#include "runtime/control_transport.hpp"
#include "runtime/engine.hpp"
#include "runtime/site_manager.hpp"
#include "runtime/sm_directory.hpp"
#include "runtime/submission.hpp"
#include "runtime/watchdog.hpp"
#include "runtime/wire.hpp"
#include "scheduler/site_scheduler.hpp"
#include "sim/workloads.hpp"
#include "tasklib/registry.hpp"

namespace vdce::rt {
namespace {

using common::AppId;
using common::GroupId;
using common::HostId;
using common::ParseError;
using common::SiteId;
using common::TaskId;
using common::TransportError;

std::uint64_t counter_value(const char* name) {
  return common::MetricsRegistry::global().counter(name).value();
}

double steady_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ------------------------------------------------ wire format round trips

MonitorReport random_monitor_report(common::Rng& rng) {
  MonitorReport m;
  m.host = HostId(static_cast<std::uint32_t>(rng.uniform_int(1000)));
  m.when = rng.uniform(0.0, 1e6);
  m.cpu_load = rng.uniform(0.0, 64.0);
  m.available_memory_mb = rng.uniform(0.0, 1 << 20);
  return m;
}

WorkloadUpdate random_workload_update(common::Rng& rng) {
  WorkloadUpdate u;
  u.host = HostId(static_cast<std::uint32_t>(rng.uniform_int(1000)));
  u.when = rng.uniform(0.0, 1e6);
  u.cpu_load = rng.uniform(0.0, 64.0);
  u.available_memory_mb = rng.uniform(0.0, 1 << 20);
  return u;
}

LivenessChange random_liveness_change(common::Rng& rng) {
  LivenessChange c;
  c.host = HostId(static_cast<std::uint32_t>(rng.uniform_int(1000)));
  c.when = rng.uniform(0.0, 1e6);
  c.alive = rng.bernoulli(0.5);
  return c;
}

NetworkMeasurement random_network_measurement(common::Rng& rng) {
  NetworkMeasurement m;
  m.group = GroupId(static_cast<std::uint32_t>(rng.uniform_int(100)));
  m.when = rng.uniform(0.0, 1e6);
  m.latency_s = rng.uniform(0.0, 1.0);
  m.transfer_mb_per_s = rng.uniform(0.1, 1e4);
  return m;
}

RescheduleRequest random_reschedule_request(common::Rng& rng) {
  RescheduleRequest r;
  r.app = AppId(static_cast<std::uint32_t>(rng.uniform_int(1 << 16)));
  r.task = TaskId(static_cast<std::uint32_t>(rng.uniform_int(1 << 16)));
  r.host = HostId(static_cast<std::uint32_t>(rng.uniform_int(1000)));
  r.when = rng.uniform(0.0, 1e6);
  r.observed_load = rng.uniform(0.0, 64.0);
  r.kind = static_cast<RescheduleRequest::Kind>(rng.uniform_int(3));
  const std::size_t len = rng.uniform_int(40);
  for (std::size_t i = 0; i < len; ++i) {
    r.reason.push_back(static_cast<char>('a' + rng.uniform_int(26)));
  }
  return r;
}

sched::HostSelection random_selection(common::Rng& rng) {
  sched::HostSelection s;
  const std::size_t n = rng.uniform_int(5);
  for (std::size_t i = 0; i < n; ++i) {
    s.hosts.push_back(HostId(static_cast<std::uint32_t>(rng.uniform_int(64))));
  }
  s.predicted_s = rng.uniform(0.0, 1e3);
  const std::size_t m = rng.uniform_int(6);
  for (std::size_t i = 0; i < m; ++i) {
    s.scored.emplace_back(
        rng.uniform(0.0, 1e3),
        HostId(static_cast<std::uint32_t>(rng.uniform_int(64))));
  }
  return s;
}

void expect_selection_eq(const sched::HostSelection& a,
                         const sched::HostSelection& b) {
  EXPECT_EQ(a.hosts, b.hosts);
  EXPECT_EQ(a.predicted_s, b.predicted_s);
  EXPECT_EQ(a.scored, b.scored);
}

void expect_selection_map_eq(const sched::HostSelectionMap& a,
                             const sched::HostSelectionMap& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [task, sel] : a) {
    const auto it = b.find(task);
    ASSERT_NE(it, b.end()) << "task " << task.value() << " missing";
    expect_selection_eq(sel, it->second);
  }
}

TEST(WireFormat, MonitorReportRoundTripsBitIdentically) {
  common::Rng rng(41);
  for (int i = 0; i < 50; ++i) {
    const auto m = random_monitor_report(rng);
    const auto bytes = wire::encode(m);
    EXPECT_EQ(wire::peek_type(bytes), wire::MsgType::kMonitorReport);
    const auto d = wire::decode_monitor_report(bytes);
    EXPECT_EQ(d.host, m.host);
    EXPECT_EQ(d.when, m.when);
    EXPECT_EQ(d.cpu_load, m.cpu_load);
    EXPECT_EQ(d.available_memory_mb, m.available_memory_mb);
    EXPECT_EQ(wire::encode(d), bytes);
  }
}

TEST(WireFormat, WorkloadUpdateRoundTripsBitIdentically) {
  common::Rng rng(42);
  for (int i = 0; i < 50; ++i) {
    const auto u = random_workload_update(rng);
    const auto bytes = wire::encode(u);
    const auto d = wire::decode_workload_update(bytes);
    EXPECT_EQ(d.host, u.host);
    EXPECT_EQ(d.when, u.when);
    EXPECT_EQ(d.cpu_load, u.cpu_load);
    EXPECT_EQ(d.available_memory_mb, u.available_memory_mb);
    EXPECT_EQ(wire::encode(d), bytes);
  }
}

TEST(WireFormat, LivenessChangeRoundTripsBitIdentically) {
  common::Rng rng(43);
  for (int i = 0; i < 50; ++i) {
    const auto c = random_liveness_change(rng);
    const auto bytes = wire::encode(c);
    const auto d = wire::decode_liveness_change(bytes);
    EXPECT_EQ(d.host, c.host);
    EXPECT_EQ(d.when, c.when);
    EXPECT_EQ(d.alive, c.alive);
    EXPECT_EQ(wire::encode(d), bytes);
  }
}

TEST(WireFormat, NetworkMeasurementRoundTripsBitIdentically) {
  common::Rng rng(44);
  for (int i = 0; i < 50; ++i) {
    const auto m = random_network_measurement(rng);
    const auto bytes = wire::encode(m);
    const auto d = wire::decode_network_measurement(bytes);
    EXPECT_EQ(d.group, m.group);
    EXPECT_EQ(d.when, m.when);
    EXPECT_EQ(d.latency_s, m.latency_s);
    EXPECT_EQ(d.transfer_mb_per_s, m.transfer_mb_per_s);
    EXPECT_EQ(wire::encode(d), bytes);
  }
}

TEST(WireFormat, RescheduleRequestRoundTripsBitIdentically) {
  common::Rng rng(45);
  for (int i = 0; i < 50; ++i) {
    const auto r = random_reschedule_request(rng);
    const auto bytes = wire::encode(r);
    const auto d = wire::decode_reschedule_request(bytes);
    EXPECT_EQ(d.app, r.app);
    EXPECT_EQ(d.task, r.task);
    EXPECT_EQ(d.host, r.host);
    EXPECT_EQ(d.when, r.when);
    EXPECT_EQ(d.observed_load, r.observed_load);
    EXPECT_EQ(d.kind, r.kind);
    EXPECT_EQ(d.reason, r.reason);
    EXPECT_EQ(wire::encode(d), bytes);
  }
}

TEST(WireFormat, HeartbeatRoundTripsBitIdentically) {
  common::Rng rng(46);
  for (int i = 0; i < 50; ++i) {
    wire::Heartbeat h;
    h.site = SiteId(static_cast<std::uint32_t>(rng.uniform_int(8)));
    h.pid = static_cast<std::int64_t>(rng.uniform_int(1 << 22));
    h.seq = rng.uniform_int(1 << 30);
    h.rpc_port = static_cast<std::uint16_t>(rng.uniform_int(65536));
    h.incarnation = static_cast<std::uint32_t>(1 + rng.uniform_int(5));
    h.gossip_port = static_cast<std::uint16_t>(rng.uniform_int(65536));
    const auto bytes = wire::encode(h);
    const auto d = wire::decode_heartbeat(bytes);
    EXPECT_EQ(d.site, h.site);
    EXPECT_EQ(d.pid, h.pid);
    EXPECT_EQ(d.seq, h.seq);
    EXPECT_EQ(d.rpc_port, h.rpc_port);
    EXPECT_EQ(d.incarnation, h.incarnation);
    EXPECT_EQ(d.gossip_port, h.gossip_port);
    EXPECT_EQ(wire::encode(d), bytes);
  }
}

// D17 gossip messages (types 16-22).

wire::PeerDigest random_peer_digest(common::Rng& rng) {
  wire::PeerDigest d;
  d.origin_site = SiteId(static_cast<std::uint32_t>(rng.uniform_int(8)));
  d.origin_incarnation = static_cast<std::uint32_t>(1 + rng.uniform_int(5));
  const std::size_t n = rng.uniform_int(5);
  for (std::size_t i = 0; i < n; ++i) {
    wire::PeerHealth p;
    p.site = SiteId(static_cast<std::uint32_t>(rng.uniform_int(8)));
    p.incarnation = static_cast<std::uint32_t>(rng.uniform_int(5));
    p.age_s = rng.uniform(0.0, 10.0);
    p.reachable = rng.bernoulli(0.5);
    d.peers.push_back(p);
  }
  return d;
}

wire::PeerRoster random_peer_roster(common::Rng& rng) {
  wire::PeerRoster r;
  const std::size_t n = rng.uniform_int(5);
  for (std::size_t i = 0; i < n; ++i) {
    wire::PeerEndpoint e;
    e.site = SiteId(static_cast<std::uint32_t>(rng.uniform_int(8)));
    e.gossip_port = static_cast<std::uint16_t>(rng.uniform_int(65536));
    e.incarnation = static_cast<std::uint32_t>(1 + rng.uniform_int(5));
    e.suspected = rng.bernoulli(0.3);
    r.peers.push_back(e);
  }
  return r;
}

TEST(WireFormat, GossipMessagesRoundTripBitIdentically) {
  common::Rng rng(51);
  for (int i = 0; i < 30; ++i) {
    const auto digest = random_peer_digest(rng);
    const auto digest_bytes = wire::encode(digest);
    EXPECT_EQ(wire::peek_type(digest_bytes), wire::MsgType::kPeerDigest);
    const auto digest_d = wire::decode_peer_digest(digest_bytes);
    EXPECT_EQ(digest_d.origin_site, digest.origin_site);
    EXPECT_EQ(digest_d.origin_incarnation, digest.origin_incarnation);
    ASSERT_EQ(digest_d.peers.size(), digest.peers.size());
    for (std::size_t p = 0; p < digest.peers.size(); ++p) {
      EXPECT_EQ(digest_d.peers[p].site, digest.peers[p].site);
      EXPECT_EQ(digest_d.peers[p].incarnation, digest.peers[p].incarnation);
      EXPECT_EQ(digest_d.peers[p].age_s, digest.peers[p].age_s);
      EXPECT_EQ(digest_d.peers[p].reachable, digest.peers[p].reachable);
    }
    EXPECT_EQ(wire::encode(digest_d), digest_bytes);

    wire::GossipPing ping;
    ping.origin_site = SiteId(static_cast<std::uint32_t>(rng.uniform_int(8)));
    ping.seq = rng.uniform_int(1 << 30);
    const auto ping_bytes = wire::encode(ping);
    const auto ping_d = wire::decode_gossip_ping(ping_bytes);
    EXPECT_EQ(ping_d.origin_site, ping.origin_site);
    EXPECT_EQ(ping_d.seq, ping.seq);
    EXPECT_EQ(wire::encode(ping_d), ping_bytes);

    wire::GossipAck ack;
    ack.site = SiteId(static_cast<std::uint32_t>(rng.uniform_int(8)));
    ack.incarnation = static_cast<std::uint32_t>(1 + rng.uniform_int(5));
    ack.seq = rng.uniform_int(1 << 30);
    const auto ack_bytes = wire::encode(ack);
    const auto ack_d = wire::decode_gossip_ack(ack_bytes);
    EXPECT_EQ(ack_d.site, ack.site);
    EXPECT_EQ(ack_d.incarnation, ack.incarnation);
    EXPECT_EQ(ack_d.seq, ack.seq);
    EXPECT_EQ(wire::encode(ack_d), ack_bytes);

    wire::PingReq preq;
    preq.origin_site = SiteId(static_cast<std::uint32_t>(rng.uniform_int(8)));
    preq.target_site = SiteId(static_cast<std::uint32_t>(rng.uniform_int(8)));
    preq.target_gossip_port =
        static_cast<std::uint16_t>(rng.uniform_int(65536));
    preq.seq = rng.uniform_int(1 << 30);
    const auto preq_bytes = wire::encode(preq);
    const auto preq_d = wire::decode_ping_req(preq_bytes);
    EXPECT_EQ(preq_d.origin_site, preq.origin_site);
    EXPECT_EQ(preq_d.target_site, preq.target_site);
    EXPECT_EQ(preq_d.target_gossip_port, preq.target_gossip_port);
    EXPECT_EQ(preq_d.seq, preq.seq);
    EXPECT_EQ(wire::encode(preq_d), preq_bytes);

    wire::PingReqReply prep;
    prep.target_site = SiteId(static_cast<std::uint32_t>(rng.uniform_int(8)));
    prep.reachable = rng.bernoulli(0.5);
    prep.target_incarnation = static_cast<std::uint32_t>(rng.uniform_int(5));
    prep.seq = rng.uniform_int(1 << 30);
    const auto prep_bytes = wire::encode(prep);
    const auto prep_d = wire::decode_ping_req_reply(prep_bytes);
    EXPECT_EQ(prep_d.target_site, prep.target_site);
    EXPECT_EQ(prep_d.reachable, prep.reachable);
    EXPECT_EQ(prep_d.target_incarnation, prep.target_incarnation);
    EXPECT_EQ(prep_d.seq, prep.seq);
    EXPECT_EQ(wire::encode(prep_d), prep_bytes);

    const auto roster = random_peer_roster(rng);
    const auto roster_bytes = wire::encode(roster);
    const auto roster_d = wire::decode_peer_roster(roster_bytes);
    ASSERT_EQ(roster_d.peers.size(), roster.peers.size());
    for (std::size_t p = 0; p < roster.peers.size(); ++p) {
      EXPECT_EQ(roster_d.peers[p].site, roster.peers[p].site);
      EXPECT_EQ(roster_d.peers[p].gossip_port, roster.peers[p].gossip_port);
      EXPECT_EQ(roster_d.peers[p].incarnation, roster.peers[p].incarnation);
      EXPECT_EQ(roster_d.peers[p].suspected, roster.peers[p].suspected);
    }
    EXPECT_EQ(wire::encode(roster_d), roster_bytes);

    wire::Refute refute;
    refute.witness_site =
        SiteId(static_cast<std::uint32_t>(rng.uniform_int(8)));
    refute.site = SiteId(static_cast<std::uint32_t>(rng.uniform_int(8)));
    refute.incarnation = static_cast<std::uint32_t>(1 + rng.uniform_int(5));
    const auto refute_bytes = wire::encode(refute);
    const auto refute_d = wire::decode_refute(refute_bytes);
    EXPECT_EQ(refute_d.witness_site, refute.witness_site);
    EXPECT_EQ(refute_d.site, refute.site);
    EXPECT_EQ(refute_d.incarnation, refute.incarnation);
    EXPECT_EQ(wire::encode(refute_d), refute_bytes);
  }
}

TEST(WireFormat, GossipMessagesRejectTruncationAtEveryPrefix) {
  common::Rng rng(52);
  // Variable-length messages.
  auto digest = random_peer_digest(rng);
  while (digest.peers.empty()) digest = random_peer_digest(rng);
  const auto digest_bytes = wire::encode(digest);
  for (std::size_t len = 3; len < digest_bytes.size(); ++len) {
    const std::span<const std::byte> prefix(digest_bytes.data(), len);
    EXPECT_THROW((void)wire::decode_peer_digest(prefix), ParseError)
        << "digest prefix of " << len << " bytes accepted";
  }
  auto roster = random_peer_roster(rng);
  while (roster.peers.empty()) roster = random_peer_roster(rng);
  const auto roster_bytes = wire::encode(roster);
  for (std::size_t len = 3; len < roster_bytes.size(); ++len) {
    const std::span<const std::byte> prefix(roster_bytes.data(), len);
    EXPECT_THROW((void)wire::decode_peer_roster(prefix), ParseError)
        << "roster prefix of " << len << " bytes accepted";
  }
  // Fixed-length messages.
  const auto ping_bytes = wire::encode(wire::GossipPing{SiteId(1), 7});
  for (std::size_t len = 3; len < ping_bytes.size(); ++len) {
    EXPECT_THROW((void)wire::decode_gossip_ping(
                     std::span<const std::byte>(ping_bytes.data(), len)),
                 ParseError);
  }
  const auto ack_bytes = wire::encode(wire::GossipAck{SiteId(1), 2, 7});
  for (std::size_t len = 3; len < ack_bytes.size(); ++len) {
    EXPECT_THROW((void)wire::decode_gossip_ack(
                     std::span<const std::byte>(ack_bytes.data(), len)),
                 ParseError);
  }
  const auto preq_bytes =
      wire::encode(wire::PingReq{SiteId(1), SiteId(2), 4242, 7});
  for (std::size_t len = 3; len < preq_bytes.size(); ++len) {
    EXPECT_THROW((void)wire::decode_ping_req(
                     std::span<const std::byte>(preq_bytes.data(), len)),
                 ParseError);
  }
  const auto prep_bytes =
      wire::encode(wire::PingReqReply{SiteId(2), true, 3, 7});
  for (std::size_t len = 3; len < prep_bytes.size(); ++len) {
    EXPECT_THROW((void)wire::decode_ping_req_reply(
                     std::span<const std::byte>(prep_bytes.data(), len)),
                 ParseError);
  }
  const auto refute_bytes =
      wire::encode(wire::Refute{SiteId(1), SiteId(2), 3});
  for (std::size_t len = 3; len < refute_bytes.size(); ++len) {
    EXPECT_THROW((void)wire::decode_refute(
                     std::span<const std::byte>(refute_bytes.data(), len)),
                 ParseError);
  }
}

TEST(WireFormat, GossipMessagesRejectTypeMismatchedDecode) {
  const auto bytes = wire::encode(wire::GossipPing{SiteId(1), 7});
  EXPECT_THROW((void)wire::decode_peer_digest(bytes), ParseError);
  EXPECT_THROW((void)wire::decode_gossip_ack(bytes), ParseError);
  EXPECT_THROW((void)wire::decode_ping_req(bytes), ParseError);
  EXPECT_THROW((void)wire::decode_ping_req_reply(bytes), ParseError);
  EXPECT_THROW((void)wire::decode_peer_roster(bytes), ParseError);
  EXPECT_THROW((void)wire::decode_refute(bytes), ParseError);
  const auto ping = wire::encode(wire::PeerDigest{});
  EXPECT_THROW((void)wire::decode_gossip_ping(ping), ParseError);
}

TEST(WireFormat, RpcMessagesRoundTripBitIdentically) {
  common::Rng rng(47);
  for (int i = 0; i < 30; ++i) {
    wire::TickRequest tick;
    tick.now = rng.uniform(0.0, 1e6);
    EXPECT_EQ(wire::decode_tick_request(wire::encode(tick)).now, tick.now);
    EXPECT_EQ(wire::encode(wire::decode_tick_request(wire::encode(tick))),
              wire::encode(tick));

    wire::HostSelectionRequest hs;
    hs.graph_text = "graph " + std::to_string(rng.uniform_int(1 << 20));
    hs.threads = static_cast<std::uint32_t>(1 + rng.uniform_int(8));
    const auto hs_bytes = wire::encode(hs);
    const auto hs_d = wire::decode_host_selection_request(hs_bytes);
    EXPECT_EQ(hs_d.graph_text, hs.graph_text);
    EXPECT_EQ(hs_d.threads, hs.threads);
    EXPECT_EQ(wire::encode(hs_d), hs_bytes);

    wire::HostSelectionResponse resp;
    const std::size_t tasks = rng.uniform_int(6);
    for (std::size_t t = 0; t < tasks; ++t) {
      resp.selection[TaskId(static_cast<std::uint32_t>(t))] =
          random_selection(rng);
    }
    const auto resp_bytes = wire::encode(resp);
    const auto resp_d = wire::decode_host_selection_response(resp_bytes);
    expect_selection_map_eq(resp.selection, resp_d.selection);
    // Entries are encoded sorted by task id, so the re-encode is
    // bit-identical regardless of unordered_map iteration order.
    EXPECT_EQ(wire::encode(resp_d), resp_bytes);

    wire::ReselectionRequest rs;
    rs.task = TaskId(static_cast<std::uint32_t>(rng.uniform_int(1 << 16)));
    rs.library_task = "task_" + std::to_string(rng.uniform_int(100));
    rs.label = "label_" + std::to_string(rng.uniform_int(100));
    rs.input_size = rng.uniform(0.0, 1e3);
    rs.num_processors = static_cast<std::uint32_t>(1 + rng.uniform_int(16));
    rs.parallel = rng.bernoulli(0.5);
    const std::size_t ex = rng.uniform_int(5);
    for (std::size_t e = 0; e < ex; ++e) {
      rs.excluded.push_back(
          HostId(static_cast<std::uint32_t>(rng.uniform_int(64))));
    }
    const auto rs_bytes = wire::encode(rs);
    const auto rs_d = wire::decode_reselection_request(rs_bytes);
    EXPECT_EQ(rs_d.task, rs.task);
    EXPECT_EQ(rs_d.library_task, rs.library_task);
    EXPECT_EQ(rs_d.label, rs.label);
    EXPECT_EQ(rs_d.input_size, rs.input_size);
    EXPECT_EQ(rs_d.num_processors, rs.num_processors);
    EXPECT_EQ(rs_d.parallel, rs.parallel);
    EXPECT_EQ(rs_d.excluded, rs.excluded);
    EXPECT_EQ(wire::encode(rs_d), rs_bytes);

    wire::ReselectionResponse rr;
    rr.selection = random_selection(rng);
    const auto rr_bytes = wire::encode(rr);
    const auto rr_d = wire::decode_reselection_response(rr_bytes);
    expect_selection_eq(rr.selection, rr_d.selection);
    EXPECT_EQ(wire::encode(rr_d), rr_bytes);

    wire::RecordTaskTime rt;
    rt.library_task = "task_" + std::to_string(rng.uniform_int(100));
    rt.elapsed_s = rng.uniform(0.0, 1e3);
    const auto rt_bytes = wire::encode(rt);
    const auto rt_d = wire::decode_record_task_time(rt_bytes);
    EXPECT_EQ(rt_d.library_task, rt.library_task);
    EXPECT_EQ(rt_d.elapsed_s, rt.elapsed_s);
    EXPECT_EQ(wire::encode(rt_d), rt_bytes);

    wire::ErrorReply err;
    err.what = "error " + std::to_string(rng.uniform_int(1 << 20));
    const auto err_bytes = wire::encode(err);
    EXPECT_EQ(wire::decode_error_reply(err_bytes).what, err.what);
  }

  EXPECT_EQ(wire::peek_type(wire::encode(wire::Ack{})), wire::MsgType::kAck);
  EXPECT_EQ(wire::peek_type(wire::encode_shutdown()),
            wire::MsgType::kShutdownRequest);
}

// ----------------------------------------------------- wire rejections

TEST(WireFormat, RejectsShortBuffers) {
  const auto bytes = wire::encode(WorkloadUpdate{});
  for (std::size_t len = 0; len < 3; ++len) {
    EXPECT_THROW(
        (void)wire::peek_type(std::span<const std::byte>(bytes.data(), len)),
        ParseError)
        << "header prefix of " << len << " bytes accepted";
  }
}

TEST(WireFormat, RejectsWrongMagic) {
  auto bytes = wire::encode(WorkloadUpdate{});
  bytes[0] = std::byte{0x00};
  EXPECT_THROW((void)wire::peek_type(bytes), ParseError);
  bytes[0] = std::byte{0xC8};
  EXPECT_THROW((void)wire::decode_workload_update(bytes), ParseError);
}

TEST(WireFormat, RejectsUnknownVersion) {
  auto bytes = wire::encode(WorkloadUpdate{});
  bytes[1] = std::byte{2};
  EXPECT_THROW((void)wire::peek_type(bytes), ParseError);
  bytes[1] = std::byte{0};
  EXPECT_THROW((void)wire::peek_type(bytes), ParseError);
}

TEST(WireFormat, RejectsUnknownMessageType) {
  auto bytes = wire::encode(WorkloadUpdate{});
  for (const std::uint8_t type : {std::uint8_t{0}, std::uint8_t{23},
                                  std::uint8_t{200}, std::uint8_t{255}}) {
    bytes[2] = std::byte{type};
    EXPECT_THROW((void)wire::peek_type(bytes), ParseError)
        << "type " << int(type) << " accepted";
  }
}

TEST(WireFormat, RejectsTruncationAtEveryPrefix) {
  common::Rng rng(48);
  const auto full = wire::encode(random_reschedule_request(rng));
  ASSERT_GT(full.size(), 3u);
  for (std::size_t len = 3; len < full.size(); ++len) {
    const std::span<const std::byte> prefix(full.data(), len);
    EXPECT_THROW((void)wire::decode_reschedule_request(prefix), ParseError)
        << "prefix of " << len << "/" << full.size() << " bytes accepted";
  }
  const auto fixed = wire::encode(random_network_measurement(rng));
  for (std::size_t len = 3; len < fixed.size(); ++len) {
    const std::span<const std::byte> prefix(fixed.data(), len);
    EXPECT_THROW((void)wire::decode_network_measurement(prefix), ParseError);
  }
}

TEST(WireFormat, IgnoresTrailingBytesForForwardCompatibility) {
  common::Rng rng(49);
  const auto u = random_workload_update(rng);
  auto bytes = wire::encode(u);
  for (int i = 0; i < 7; ++i) bytes.push_back(std::byte{0xEE});
  const auto d = wire::decode_workload_update(bytes);
  EXPECT_EQ(d.host, u.host);
  EXPECT_EQ(d.cpu_load, u.cpu_load);
}

TEST(WireFormat, RejectsTypeMismatchedDecode) {
  const auto bytes = wire::encode(WorkloadUpdate{});
  EXPECT_THROW((void)wire::decode_liveness_change(bytes), ParseError);
  EXPECT_THROW((void)wire::decode_heartbeat(bytes), ParseError);
  EXPECT_THROW((void)wire::decode_tick_request(bytes), ParseError);
}

TEST(WireFormat, CorruptRescheduleKindNeverEscapesTheEnumRange) {
  auto bytes = wire::encode(RescheduleRequest{});
  // Corrupt every payload byte position; the decode must either reject
  // (ParseError) or produce an in-range kind -- never a silently
  // out-of-range enum value.
  for (std::size_t pos = 3; pos < bytes.size(); ++pos) {
    auto corrupt = bytes;
    corrupt[pos] = std::byte{0xFF};
    try {
      const auto d = wire::decode_reschedule_request(corrupt);
      EXPECT_LE(static_cast<std::uint8_t>(d.kind), 2u);
    } catch (const ParseError&) {
      // rejection is equally acceptable
    }
  }
}

TEST(WireFormat, GarbagePayloadsNeverEscapeParseError) {
  // Fuzz: valid headers with random payloads must either decode or
  // throw ParseError -- nothing else, and never crash.
  common::Rng rng(50);
  for (int i = 0; i < 300; ++i) {
    std::vector<std::byte> bytes = {std::byte{wire::kMagic},
                                    std::byte{wire::kVersion}};
    const auto type = static_cast<std::uint8_t>(1 + rng.uniform_int(22));
    bytes.push_back(std::byte{type});
    const std::size_t len = rng.uniform_int(64);
    for (std::size_t b = 0; b < len; ++b) {
      bytes.push_back(
          std::byte{static_cast<std::uint8_t>(rng.uniform_int(256))});
    }
    try {
      switch (wire::peek_type(bytes)) {
        case wire::MsgType::kMonitorReport:
          (void)wire::decode_monitor_report(bytes);
          break;
        case wire::MsgType::kWorkloadUpdate:
          (void)wire::decode_workload_update(bytes);
          break;
        case wire::MsgType::kLivenessChange:
          (void)wire::decode_liveness_change(bytes);
          break;
        case wire::MsgType::kNetworkMeasurement:
          (void)wire::decode_network_measurement(bytes);
          break;
        case wire::MsgType::kRescheduleRequest:
          (void)wire::decode_reschedule_request(bytes);
          break;
        case wire::MsgType::kHeartbeat:
          (void)wire::decode_heartbeat(bytes);
          break;
        case wire::MsgType::kTickRequest:
          (void)wire::decode_tick_request(bytes);
          break;
        case wire::MsgType::kHostSelectionRequest:
          (void)wire::decode_host_selection_request(bytes);
          break;
        case wire::MsgType::kHostSelectionResponse:
          (void)wire::decode_host_selection_response(bytes);
          break;
        case wire::MsgType::kReselectionRequest:
          (void)wire::decode_reselection_request(bytes);
          break;
        case wire::MsgType::kReselectionResponse:
          (void)wire::decode_reselection_response(bytes);
          break;
        case wire::MsgType::kRecordTaskTime:
          (void)wire::decode_record_task_time(bytes);
          break;
        case wire::MsgType::kErrorReply:
          (void)wire::decode_error_reply(bytes);
          break;
        case wire::MsgType::kPeerDigest:
          (void)wire::decode_peer_digest(bytes);
          break;
        case wire::MsgType::kGossipPing:
          (void)wire::decode_gossip_ping(bytes);
          break;
        case wire::MsgType::kGossipAck:
          (void)wire::decode_gossip_ack(bytes);
          break;
        case wire::MsgType::kPingReq:
          (void)wire::decode_ping_req(bytes);
          break;
        case wire::MsgType::kPingReqReply:
          (void)wire::decode_ping_req_reply(bytes);
          break;
        case wire::MsgType::kPeerRoster:
          (void)wire::decode_peer_roster(bytes);
          break;
        case wire::MsgType::kRefute:
          (void)wire::decode_refute(bytes);
          break;
        case wire::MsgType::kShutdownRequest:
        case wire::MsgType::kAck:
          break;
      }
    } catch (const ParseError&) {
      // the only acceptable failure mode
    }
  }
}

// ------------------------------------------------- transport dispatching

/// Sink recording every dispatched message for inspection.
struct RecordingSink final : ControlSink {
  std::vector<WorkloadUpdate> workloads;
  std::vector<LivenessChange> liveness;
  std::vector<NetworkMeasurement> network;
  std::vector<RescheduleRequest> reschedules;

  void on_workload(const WorkloadUpdate& u) override { workloads.push_back(u); }
  void on_liveness(const LivenessChange& c) override { liveness.push_back(c); }
  void on_network(const NetworkMeasurement& m) override {
    network.push_back(m);
  }
  void on_reschedule(const RescheduleRequest& r) override {
    reschedules.push_back(r);
  }
};

TEST(ControlDispatch, RoutesEachControlMessageToItsHandler) {
  common::Rng rng(51);
  RecordingSink sink;
  const auto u = random_workload_update(rng);
  const auto c = random_liveness_change(rng);
  const auto m = random_network_measurement(rng);
  const auto r = random_reschedule_request(rng);
  dispatch_control_frame(wire::encode(u), sink);
  dispatch_control_frame(wire::encode(c), sink);
  dispatch_control_frame(wire::encode(m), sink);
  dispatch_control_frame(wire::encode(r), sink);
  ASSERT_EQ(sink.workloads.size(), 1u);
  ASSERT_EQ(sink.liveness.size(), 1u);
  ASSERT_EQ(sink.network.size(), 1u);
  ASSERT_EQ(sink.reschedules.size(), 1u);
  EXPECT_EQ(sink.workloads[0].host, u.host);
  EXPECT_EQ(sink.liveness[0].alive, c.alive);
  EXPECT_EQ(sink.network[0].group, m.group);
  EXPECT_EQ(sink.reschedules[0].reason, r.reason);
}

TEST(ControlDispatch, MonitorReportArrivesAsWorkloadUpdate) {
  common::Rng rng(52);
  RecordingSink sink;
  const auto report = random_monitor_report(rng);
  dispatch_control_frame(wire::encode(report), sink);
  ASSERT_EQ(sink.workloads.size(), 1u);
  EXPECT_EQ(sink.workloads[0].host, report.host);
  EXPECT_EQ(sink.workloads[0].when, report.when);
  EXPECT_EQ(sink.workloads[0].cpu_load, report.cpu_load);
}

TEST(ControlDispatch, RejectsRpcMessagesOnControlChannel) {
  RecordingSink sink;
  EXPECT_THROW(dispatch_control_frame(wire::encode(wire::TickRequest{}), sink),
               ParseError);
  EXPECT_THROW(dispatch_control_frame(wire::encode_shutdown(), sink),
               ParseError);
}

TEST(ControlTransport, LoopbackDispatchesSynchronouslyAndCounts) {
  common::Rng rng(53);
  RecordingSink sink;
  LoopbackControlTransport transport(sink);
  std::size_t bytes = 0;
  for (int i = 0; i < 5; ++i) {
    const auto frame = wire::encode(random_workload_update(rng));
    bytes += frame.size();
    transport.publish(frame);
    EXPECT_EQ(sink.workloads.size(), static_cast<std::size_t>(i + 1));
  }
  EXPECT_EQ(transport.stats().messages, 5u);
  EXPECT_EQ(transport.stats().bytes, bytes);
}

TEST(ControlTransport, ChannelTransportDrainsOverInProcPair) {
  common::Rng rng(54);
  auto pair = dm::make_inproc_pair();
  ChannelControlTransport transport(*pair.sender);
  const auto u = random_workload_update(rng);
  const auto c = random_liveness_change(rng);
  const auto m = random_network_measurement(rng);
  transport.publish(wire::encode(u));
  transport.publish(wire::encode(c));
  transport.publish(wire::encode(m));
  EXPECT_EQ(transport.stats().messages, 3u);

  RecordingSink sink;
  EXPECT_EQ(drain_control_channel(*pair.receiver, sink, 3), 3u);
  ASSERT_EQ(sink.workloads.size(), 1u);
  ASSERT_EQ(sink.liveness.size(), 1u);
  ASSERT_EQ(sink.network.size(), 1u);
  EXPECT_EQ(sink.workloads[0].when, u.when);
  EXPECT_EQ(sink.liveness[0].host, c.host);
  EXPECT_EQ(sink.network[0].latency_s, m.latency_s);
}

TEST(ControlTransport, ChannelTransportDrainsUntilTcpClose) {
  common::Rng rng(55);
  dm::TcpListener listener;
  auto client = dm::tcp_connect(listener.port());
  auto server = listener.accept();

  ChannelControlTransport transport(*client);
  constexpr int kMessages = 32;
  for (int i = 0; i < kMessages; ++i) {
    transport.publish(wire::encode(random_workload_update(rng)));
  }
  client->close();

  RecordingSink sink;
  EXPECT_EQ(drain_control_channel(*server, sink),
            static_cast<std::size_t>(kMessages));
  EXPECT_EQ(sink.workloads.size(), static_cast<std::size_t>(kMessages));
}

TEST(ControlTransport, OversizedFrameIsRejectedOutright) {
  dm::TcpListener listener;
  auto client = dm::tcp_connect(listener.port());
  auto server = listener.accept();
  client->set_max_message_bytes(8);
  ChannelControlTransport transport(*client);
  RescheduleRequest r;
  r.reason = std::string(64, 'x');
  EXPECT_THROW(transport.publish(wire::encode(r)), TransportError);
  EXPECT_EQ(transport.stats().messages, 0u);
}

// ------------------------- ControlManager over the wire == loopback

/// One site's stack (repository, forecaster, manager, control) built
/// from a seeded campus testbed.
struct SiteStack {
  std::unique_ptr<netsim::VirtualTestbed> testbed;
  std::unique_ptr<repo::SiteRepository> repository;
  std::unique_ptr<predict::LoadForecaster> forecaster;
  std::unique_ptr<SiteManager> manager;
  std::unique_ptr<ControlManager> control;

  explicit SiteStack(std::uint64_t seed, SiteId site = SiteId(0)) {
    testbed = std::make_unique<netsim::VirtualTestbed>(
        netsim::make_campus_testbed(seed));
    repository = std::make_unique<repo::SiteRepository>(site);
    tasklib::builtin_registry().install_defaults(repository->tasks());
    testbed->populate_repository(*repository, site);
    repository->users().add_user("hpdc", "nynet", 1, "wan");
    forecaster = std::make_unique<predict::LoadForecaster>();
    manager = std::make_unique<SiteManager>(site, *repository, *forecaster);
    control = std::make_unique<ControlManager>(*testbed, site, *manager);
  }
};

TEST(ControlTransport, ManagerOverChannelMatchesLoopback) {
  // Two identical stacks; A keeps the default loopback, B publishes its
  // control traffic over a channel drained into B's Site Manager.  The
  // resulting Host Selections must agree exactly -- the wire adds
  // latency, never information loss.
  SiteStack a(7);
  SiteStack b(7);
  auto pair = dm::make_inproc_pair();
  b.control->set_transport(
      std::make_unique<ChannelControlTransport>(*pair.sender));

  for (double t = 1.0; t <= 10.0; t += 1.0) {
    a.control->tick(t);
    b.control->tick(t);
  }
  const auto sent = b.control->stats().control_messages_sent;
  EXPECT_EQ(sent, a.control->stats().control_messages_sent);
  EXPECT_GT(sent, 0u);

  SiteManagerSink sink(*b.manager);
  EXPECT_EQ(drain_control_channel(*pair.receiver, sink, sent), sent);

  const auto graph = sim::make_linear_solver_graph();
  expect_selection_map_eq(a.manager->host_selection_request(graph),
                          b.manager->host_selection_request(graph));
}

// -------------------------------- deadline regressions (satellite 3)

TEST(Deadlines, ReceiveForHonorsDeadlineUnderEventLoopStorm) {
  // A flood on one channel of the shared event loop must not stretch
  // (or shrink) another channel's receive_for deadline.
  dm::TcpListener idle_listener;
  auto idle_tx = dm::tcp_connect(idle_listener.port());
  auto idle_rx = idle_listener.accept();

  dm::TcpListener busy_listener;
  auto busy_tx = dm::tcp_connect(busy_listener.port());
  auto busy_rx = busy_listener.accept();

  std::atomic<bool> stop{false};
  std::thread flooder([&] {
    const std::vector<std::byte> payload(64, std::byte{0x5A});
    try {
      while (!stop.load()) busy_tx->send(payload);
    } catch (const TransportError&) {
      // close() below can race one last in-flight send (EPIPE).
    }
  });
  std::thread drainer([&] {
    try {
      while (busy_rx->receive().has_value()) {
      }
    } catch (const TransportError&) {
      // The teardown close() can land mid-frame on the busy stream.
    }
  });

  const double start = steady_s();
  EXPECT_THROW((void)idle_rx->receive_for(0.4), TransportError);
  const double elapsed = steady_s() - start;
  EXPECT_GE(elapsed, 0.35);
  EXPECT_LE(elapsed, 2.0) << "deadline stretched under the notify storm";

  stop.store(true);
  busy_tx->close();
  flooder.join();
  drainer.join();
}

void sigusr1_noop(int) {}

TEST(Deadlines, AcceptForHonorsDeadlineUnderSignalStorm) {
  // Regression for the EINTR bug: accept_for used to restart its FULL
  // timeout after every interrupted poll, so a steady signal stream
  // (period << timeout) postponed the deadline forever.  The fix
  // recomputes the remaining time against a monotonic deadline.
  struct sigaction sa = {};
  sa.sa_handler = sigusr1_noop;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: poll must see EINTR
  struct sigaction old = {};
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

  const pthread_t victim = pthread_self();
  std::atomic<bool> stop{false};
  std::thread storm([&] {
    while (!stop.load()) {
      pthread_kill(victim, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  dm::TcpListener listener;  // nobody ever connects
  const double start = steady_s();
  EXPECT_THROW((void)listener.accept_for(0.5), TransportError);
  const double elapsed = steady_s() - start;
  EXPECT_GE(elapsed, 0.45);
  EXPECT_LE(elapsed, 3.0) << "EINTR restarted the timeout";

  stop.store(true);
  storm.join();
  sigaction(SIGUSR1, &old, nullptr);
}

// ------------------------------------------- site daemon + watchdog

constexpr std::uint64_t kDaemonSeed = 13;

WatchdogConfig test_watchdog_config() {
  WatchdogConfig config;
  config.daemon_path = VDCE_SITE_DAEMON_PATH;
  config.seed = kDaemonSeed;
  config.heartbeat_period_s = 0.02;
  config.heartbeat_timeout_s = 2.0;
  config.max_restarts = 3;
  config.restart_backoff_s = 0.02;
  config.restart_backoff_multiplier = 2.0;
  return config;
}

TEST(SiteDaemon, RemoteSelectionMatchesInProcessManager) {
  Watchdog watchdog(test_watchdog_config());
  watchdog.spawn(SiteId(0));
  daemon::DaemonClient client(watchdog.rpc_port(SiteId(0)));

  SiteStack local(kDaemonSeed);
  for (double t = 1.0; t <= 10.0; t += 1.0) {
    client.tick(t);
    local.control->tick(t);
  }

  const auto graph = sim::make_linear_solver_graph();
  expect_selection_map_eq(client.host_selection(graph, 1),
                          local.manager->host_selection_request(graph));

  // Post-execution feedback lands in both performance databases and
  // keeps them in lockstep.
  client.record_task_time("linear_solve", 2.5);
  local.manager->record_task_time("linear_solve", 2.5);
  expect_selection_map_eq(client.host_selection(graph, 1),
                          local.manager->host_selection_request(graph));

  // Reselection agrees too (exclude the winner, compare the runner-up).
  const auto first = graph.task(TaskId(0));
  const auto local_sel = local.manager->reschedule_request(first, {});
  ASSERT_TRUE(local_sel.feasible());
  const std::vector<HostId> excluded = {local_sel.hosts.front()};
  expect_selection_eq(client.host_reselection(first, excluded),
                      local.manager->reschedule_request(first, excluded));
}

TEST(SiteDaemon, WatchdogRestartsSigkilledDaemonAndClientReattaches) {
  const auto site_down_before = counter_value("watchdog.site_down");
  const auto restarts_before = counter_value("watchdog.restarts");

  Watchdog watchdog(test_watchdog_config());
  std::atomic<int> down_events{0};
  std::atomic<int> up_events{0};
  watchdog.set_on_site_down([&](SiteId) { down_events.fetch_add(1); });
  watchdog.set_on_site_up([&](SiteId) { up_events.fetch_add(1); });

  watchdog.spawn(SiteId(0));
  const auto port1 = watchdog.rpc_port(SiteId(0));
  daemon::DaemonClient first(port1);
  first.tick(1.0);
  const auto status1 = watchdog.status(SiteId(0));
  EXPECT_TRUE(status1.up);
  EXPECT_EQ(status1.incarnation, 1u);
  EXPECT_EQ(status1.restarts, 0u);
  EXPECT_GT(status1.pid, 0);

  watchdog.kill_daemon(SiteId(0), SIGKILL);

  // The watchdog must notice the death (waitpid / heartbeat EOF) and
  // respawn; wait for the reincarnation's first beat.
  const double deadline = steady_s() + 15.0;
  DaemonStatus status2;
  do {
    status2 = watchdog.status(SiteId(0));
    if (status2.up && status2.incarnation == 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  } while (steady_s() < deadline);
  ASSERT_TRUE(status2.up) << "daemon was not restarted";
  EXPECT_EQ(status2.incarnation, 2u);
  EXPECT_EQ(status2.restarts, 1u);
  EXPECT_NE(status2.pid, status1.pid);
  EXPECT_EQ(watchdog.total_restarts(), 1u);
  EXPECT_GE(down_events.load(), 1);
  EXPECT_EQ(up_events.load(), 2);

  // The old connection is dead; a fresh client on the announced port
  // reattaches and the reincarnation serves RPCs.
  EXPECT_THROW(first.tick(2.0), TransportError);
  daemon::DaemonClient second(watchdog.rpc_port(SiteId(0)));
  second.tick(1.0);
  const auto graph = sim::make_linear_solver_graph();
  EXPECT_FALSE(second.host_selection(graph, 1).empty());

  EXPECT_EQ(counter_value("watchdog.site_down") - site_down_before, 1u);
  EXPECT_EQ(counter_value("watchdog.restarts") - restarts_before, 1u);
}

// -------------------------------------- daemon-mode e2e bit-identity

/// Full multi-site in-process wiring (the integration-test shape).
struct InProcessVdce {
  std::unique_ptr<netsim::VirtualTestbed> testbed;
  std::vector<std::unique_ptr<repo::SiteRepository>> repositories;
  std::vector<std::unique_ptr<predict::LoadForecaster>> forecasters;
  std::vector<std::unique_ptr<SiteManager>> managers;
  std::vector<std::unique_ptr<ControlManager>> controls;
  SiteManagerDirectory directory;

  explicit InProcessVdce(std::uint64_t seed) {
    testbed = std::make_unique<netsim::VirtualTestbed>(
        netsim::make_campus_testbed(seed));
    for (const SiteId site : testbed->sites()) {
      auto repository = std::make_unique<repo::SiteRepository>(site);
      tasklib::builtin_registry().install_defaults(repository->tasks());
      testbed->populate_repository(*repository, site);
      repository->users().add_user("hpdc", "nynet", 1, "wan");
      auto forecaster = std::make_unique<predict::LoadForecaster>();
      auto manager =
          std::make_unique<SiteManager>(site, *repository, *forecaster);
      auto control =
          std::make_unique<ControlManager>(*testbed, site, *manager);
      directory.add_site(*manager);
      repositories.push_back(std::move(repository));
      forecasters.push_back(std::move(forecaster));
      managers.push_back(std::move(manager));
      controls.push_back(std::move(control));
    }
  }

  void warm_up(double until) {
    for (double t = 1.0; t <= until; t += 1.0) {
      for (auto& c : controls) c->tick(t);
    }
  }
};

TEST(SiteDaemon, DaemonModeRunIsBitIdenticalToInProcess) {
  // THE acceptance scenario: schedule and execute the same application
  // (same graph, same seed, same app id) once with all Site Managers in
  // this address space and once with every site's control plane in its
  // own OS process behind TCP.  Allocation and outputs must match bit
  // for bit.
  const auto graph = sim::make_linear_solver_graph();

  // Reference: the classic in-process run.
  InProcessVdce reference(kDaemonSeed);
  reference.warm_up(10.0);
  sched::SiteScheduler ref_scheduler(SiteId(0), reference.directory);
  const auto ref_allocation = ref_scheduler.schedule(graph);
  ExecutionEngine ref_engine(tasklib::builtin_registry());
  const auto ref_result = ref_engine.execute(graph, ref_allocation);

  // Daemon mode: one vdce_site_daemon process per site, warmed by the
  // same tick schedule over RPC; the local replica answers only the
  // static topology queries.
  InProcessVdce replica(kDaemonSeed);
  replica.warm_up(10.0);
  Watchdog watchdog(test_watchdog_config());
  const auto sites = replica.testbed->sites();
  for (const SiteId site : sites) watchdog.spawn(site);
  daemon::RemoteSiteDirectory remote(replica.directory, watchdog, sites);
  for (double t = 1.0; t <= 10.0; t += 1.0) remote.tick_all(t);

  sched::SiteScheduler daemon_scheduler(SiteId(0), remote);
  const auto daemon_allocation = daemon_scheduler.schedule(graph);

  // The placement decision crossed process boundaries...
  const auto stats = remote.stats();
  EXPECT_GE(stats.remote_selections, sites.size());
  EXPECT_EQ(stats.transport_failures, 0u);

  // ...and is identical to the in-process one, row by row.
  const auto ref_rows = ref_allocation.rows();
  const auto daemon_rows = daemon_allocation.rows();
  ASSERT_EQ(ref_rows.size(), daemon_rows.size());
  for (std::size_t i = 0; i < ref_rows.size(); ++i) {
    EXPECT_EQ(ref_rows[i].task, daemon_rows[i].task);
    EXPECT_EQ(ref_rows[i].library_task, daemon_rows[i].library_task);
    EXPECT_EQ(ref_rows[i].site, daemon_rows[i].site);
    EXPECT_EQ(ref_rows[i].hosts, daemon_rows[i].hosts);
    EXPECT_EQ(ref_rows[i].predicted_s, daemon_rows[i].predicted_s);
  }

  // Execution over the daemon-made allocation is bit-identical.
  ExecutionEngine daemon_engine(tasklib::builtin_registry());
  const auto daemon_result = daemon_engine.execute(graph, daemon_allocation);
  ASSERT_EQ(ref_result.outputs.size(), daemon_result.outputs.size());
  for (const auto& [task, payload] : ref_result.outputs) {
    EXPECT_EQ(payload.to_wire(), daemon_result.outputs.at(task).to_wire())
        << "task " << task.value() << " output diverged in daemon mode";
  }
}

TEST(SiteDaemon, RemoteDirectoryYieldsInfeasibleSelectionWhenSiteAbandoned) {
  // An unreachable daemon must degrade like a site with no eligible
  // hosts -- empty selection, no exception -- so the Site Scheduler
  // simply places elsewhere.
  auto config = test_watchdog_config();
  config.max_restarts = 0;  // first death abandons the site
  config.heartbeat_timeout_s = 0.5;
  Watchdog watchdog(config);
  watchdog.spawn(SiteId(0));
  (void)watchdog.rpc_port(SiteId(0));
  watchdog.kill_daemon(SiteId(0), SIGKILL);
  const double deadline = steady_s() + 15.0;
  while (!watchdog.status(SiteId(0)).abandoned && steady_s() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(watchdog.status(SiteId(0)).abandoned);

  InProcessVdce replica(kDaemonSeed);
  daemon::RemoteSiteDirectory remote(replica.directory, watchdog, {SiteId(0)},
                                     /*rpc_timeout_s=*/0.2);
  const auto graph = sim::make_linear_solver_graph();
  const auto selection = remote.host_selection(SiteId(0), graph);
  for (const auto& [task, sel] : selection) {
    EXPECT_FALSE(sel.feasible());
  }
  EXPECT_GE(remote.stats().transport_failures, 1u);
}

// ------------------- chaos SIGKILL: watchdog restart + app failover

/// Shared state of the `chaos_trip` library task (the chaos_test
/// pattern): the first `remaining_trips` invocations fire `on_trip`
/// and throw; later invocations compute a deterministic output.
struct TripState {
  std::atomic<int> remaining_trips{0};
  std::atomic<int> invocations{0};
  std::function<void()> on_trip;
};

tasklib::TaskRegistry trip_registry(std::shared_ptr<TripState> state) {
  tasklib::TaskRegistry registry;
  for (const auto& name : tasklib::builtin_registry().all_tasks()) {
    registry.add(tasklib::builtin_registry().get(name));
  }
  tasklib::LibraryEntry entry;
  entry.name = "chaos_trip";
  entry.menu = "synthetic";
  entry.description = "fails its first N invocations";
  entry.min_inputs = 0;
  entry.max_inputs = 8;
  entry.default_perf.task_name = "chaos_trip";
  entry.default_perf.base_time_s = 0.01;
  entry.default_perf.computation_size = 0.1;
  entry.default_perf.communication_size_mb = 0.001;
  entry.default_perf.memory_req_mb = 0.01;
  entry.fn = [state](const std::vector<tasklib::Payload>& in,
                     const tasklib::TaskContext& ctx) {
    state->invocations.fetch_add(1);
    if (state->remaining_trips.fetch_sub(1) > 0) {
      if (state->on_trip) state->on_trip();
      throw common::StateError("chaos_trip: injected failure");
    }
    state->remaining_trips.fetch_add(1);
    double acc = ctx.rng->uniform();
    for (const tasklib::Payload& p : in) {
      acc += static_cast<double>(p.size_bytes() % 1009);
    }
    return tasklib::Payload::of_scalar(acc);
  };
  registry.add(std::move(entry));
  return registry;
}

class ControlPlaneFailover : public ::testing::Test {
 protected:
  void SetUp() override {
    state_ = std::make_shared<TripState>();
    registry_ = trip_registry(state_);
    testbed_ = std::make_unique<netsim::VirtualTestbed>(
        netsim::make_campus_testbed(kDaemonSeed));
    for (const SiteId site : testbed_->sites()) {
      auto repository = std::make_unique<repo::SiteRepository>(site);
      registry_.install_defaults(repository->tasks());
      testbed_->populate_repository(*repository, site);
      auto forecaster = std::make_unique<predict::LoadForecaster>();
      directory_.add_site(site, repository.get(), forecaster.get());
      repositories_.push_back(std::move(repository));
      forecasters_.push_back(std::move(forecaster));
    }
  }

  [[nodiscard]] std::unique_ptr<AppSubmissionService> make_service(
      int max_restarts, bool checkpointing, bool paused = false) {
    AppSubmissionConfig config;
    config.slots = 1;
    config.start_paused = paused;
    config.max_restarts = max_restarts;
    config.checkpointing = checkpointing;
    config.restart_backoff_s = 0.001;
    config.engine.max_attempts = 1;
    config.engine.recv_timeout_s = 5.0;
    auto service = std::make_unique<AppSubmissionService>(
        SiteId(0), directory_, registry_, config);
    service->set_health_probe(testbed_->liveness_probe());
    service->set_fault_hooks(
        [this](const afg::FlowGraph&, const sched::AllocationTable&) {
          FaultTolerance ft;
          ft.host_alive = testbed_->liveness_probe();
          ft.sleep = [](double) {};
          return ft;
        });
    return service;
  }

  [[nodiscard]] static afg::FlowGraph trip_pipeline() {
    afg::FlowGraph g("trip-pipeline");
    const auto a = g.add_task("synth_source", "a");
    const auto b = g.add_task("synth_compute", "b");
    const auto c = g.add_task("chaos_trip", "c");
    const auto d = g.add_task("synth_sink", "d");
    g.add_link(a, b, 0.05);
    g.add_link(b, c, 0.05);
    g.add_link(c, d, 0.05);
    return g;
  }

  [[nodiscard]] static SubmissionRequest request_for(afg::FlowGraph graph,
                                                     std::uint64_t seed) {
    SubmissionRequest request;
    request.graph = std::move(graph);
    request.qos.deadline_s = 1e9;
    request.user = "chaos";
    request.seed = seed;
    return request;
  }

  std::shared_ptr<TripState> state_;
  tasklib::TaskRegistry registry_;
  std::unique_ptr<netsim::VirtualTestbed> testbed_;
  std::vector<std::unique_ptr<repo::SiteRepository>> repositories_;
  std::vector<std::unique_ptr<predict::LoadForecaster>> forecasters_;
  sched::RepositoryDirectory directory_;
};

TEST_F(ControlPlaneFailover, SigkilledDaemonTriggersRestartAndAppFailover) {
  // THE process-level acceptance scenario: a chaos kDaemonKill event
  // SIGKILLs the REAL site daemon process of the site hosting task c
  // while a site-outage window takes the virtual site down.  The
  // watchdog must detect the death and restart the daemon (incarnation
  // 2 answering RPCs); the submission service must fail the application
  // over to surviving sites; and every counter must reconcile exactly.
  const std::uint64_t kSeed = 1234;

  // Fault-free reference outputs (fresh service, same ticket counter).
  std::map<TaskId, std::vector<std::byte>> reference;
  {
    state_->remaining_trips.store(0);
    auto service = make_service(/*max_restarts=*/0, /*checkpointing=*/false);
    const AppId app = service->submit(request_for(trip_pipeline(), kSeed));
    const auto status = service->wait(app);
    ASSERT_EQ(status.state, SubmissionState::kCompleted) << status.error;
    for (const auto& [task, payload] : status.result.outputs) {
      reference[task] = payload.to_wire();
    }
  }

  // One real daemon process per site, supervised.
  Watchdog watchdog(test_watchdog_config());
  std::atomic<int> down_events{0};
  watchdog.set_on_site_down([&](SiteId) { down_events.fetch_add(1); });
  for (const SiteId site : testbed_->sites()) {
    watchdog.spawn(site);
    (void)watchdog.rpc_port(site);  // all daemons up before the chaos
  }

  const auto captured_before = counter_value("engine.checkpoint.captured");
  const auto replayed_before = counter_value("engine.checkpoint.replayed");
  const auto restarts_before = counter_value("submission.restarts");
  const auto site_down_before = counter_value("watchdog.site_down");
  const auto wd_restarts_before = counter_value("watchdog.restarts");

  // Paused submit so the doomed site is known before the trip is armed.
  state_->remaining_trips.store(1);
  state_->invocations.store(0);
  auto service = make_service(/*max_restarts=*/2, /*checkpointing=*/true,
                              /*paused=*/true);
  const AppId app = service->submit(request_for(trip_pipeline(), kSeed));
  const auto queued = service->status(app);
  ASSERT_TRUE(queued.admission.admitted) << queued.error;
  TaskId task_c{};
  for (const auto& row : queued.allocation.rows()) {
    if (row.library_task == "chaos_trip") task_c = row.task;
  }
  const SiteId doomed = queued.allocation.entry(task_c).site;
  const HostId doomed_host = queued.allocation.entry(task_c).primary_host();

  // The chaos schedule expresses the SAME event at both layers: the
  // virtual outage window (what the health probe sees) and the process
  // kill (what the watchdog supervises).
  netsim::ChaosSchedule chaos;
  netsim::ChaosEvent outage;
  outage.kind = netsim::ChaosEventKind::kSiteOutage;
  outage.site = doomed;
  outage.start = 100.0;
  outage.length = 1e6;
  chaos.add(outage);
  netsim::ChaosEvent kill;
  kill.kind = netsim::ChaosEventKind::kDaemonKill;
  kill.site = doomed;
  kill.start = 100.0;
  chaos.add(kill);
  chaos.apply(*testbed_);
  state_->on_trip = [this, &chaos, &watchdog] {
    chaos.apply_processes(
        [&](SiteId site) { watchdog.kill_daemon(site, SIGKILL); });
    testbed_->set_live_time(200.0);
  };
  service->resume();

  const auto final_status = service->wait(app);
  ASSERT_EQ(final_status.state, SubmissionState::kCompleted)
      << final_status.error;
  EXPECT_EQ(final_status.restarts, 1u);
  EXPECT_NE(final_status.allocation.entry(task_c).primary_host(),
            doomed_host);

  // Bit-identical to the fault-free run despite the mid-flight kill.
  ASSERT_EQ(final_status.result.outputs.size(), reference.size());
  for (const auto& [task, payload] : final_status.result.outputs) {
    EXPECT_EQ(payload.to_wire(), reference.at(task))
        << "task " << task.value() << " output diverged";
  }

  // The watchdog side: death detected, daemon restarted, reincarnation
  // serving RPCs on its new port.
  const double deadline = steady_s() + 15.0;
  DaemonStatus status;
  do {
    status = watchdog.status(doomed);
    if (status.up && status.incarnation == 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  } while (steady_s() < deadline);
  ASSERT_TRUE(status.up) << "watchdog never restarted the killed daemon";
  EXPECT_EQ(status.incarnation, 2u);
  EXPECT_EQ(status.restarts, 1u);
  EXPECT_GE(down_events.load(), 1);
  daemon::DaemonClient reattached(watchdog.rpc_port(doomed));
  reattached.tick(1.0);

  // Exact counter reconciliation across both layers.
  EXPECT_EQ(state_->invocations.load(), 2);
  EXPECT_EQ(counter_value("engine.checkpoint.captured") - captured_before,
            4u);
  EXPECT_EQ(counter_value("engine.checkpoint.replayed") - replayed_before,
            2u);
  EXPECT_EQ(counter_value("submission.restarts") - restarts_before, 1u);
  EXPECT_EQ(counter_value("watchdog.site_down") - site_down_before, 1u);
  EXPECT_EQ(counter_value("watchdog.restarts") - wd_restarts_before, 1u);
}

}  // namespace
}  // namespace vdce::rt
