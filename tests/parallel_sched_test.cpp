// Tests for the parallel scheduling fan-out: the shared ThreadPool, the
// sharded PredictionCache (epoch invalidation + concurrent hammering),
// and the bit-identical-allocations guarantee of the parallel Site
// Scheduler path.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "netsim/testbed.hpp"
#include "predict/prediction_cache.hpp"
#include "scheduler/directory.hpp"
#include "scheduler/site_scheduler.hpp"
#include "sim/workloads.hpp"
#include "tasklib/registry.hpp"

namespace vdce {
namespace {

using common::HostId;
using common::SiteId;
using common::TaskId;
using common::ThreadPool;

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(1);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)fut.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> touched(kN);
  pool.parallel_for(
      0, kN, 64, [&](std::size_t i) { touched[i].fetch_add(1); }, 3);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForSerialWhenNoHelpers) {
  ThreadPool pool(4);
  std::size_t sum = 0;  // unsynchronised on purpose: must run inline
  pool.parallel_for(0, 100, 10, [&](std::size_t i) { sum += i; }, 0);
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   0, 1000, 8,
                   [](std::size_t i) {
                     if (i == 500) throw std::runtime_error("bad index");
                   },
                   2),
               std::runtime_error);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // A 2-worker pool with 4 outer tasks that each fan out again: helpers
  // for the inner loops may never be scheduled, and the loop must
  // complete anyway because the caller executes chunks itself.
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(
      0, 4, 1,
      [&](std::size_t) {
        pool.parallel_for(
            0, 100, 4, [&](std::size_t) { count.fetch_add(1); }, 2);
      },
      2);
  EXPECT_EQ(count.load(), 400);
}

TEST(ThreadPoolTest, SharedPoolIsFixedAndReused) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
}

// ------------------------------------------------------ PredictionCache

TEST(PredictionCacheTest, MissThenHit) {
  predict::PredictionCache cache;
  predict::Prediction p;
  p.time_s = 1.5;
  EXPECT_FALSE(cache.find("fft", HostId(3), 2.0, 0).has_value());
  cache.put("fft", HostId(3), 2.0, 0, p);
  const auto hit = cache.find("fft", HostId(3), 2.0, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->time_s, 1.5);
  // Distinct input size or host is a different key.
  EXPECT_FALSE(cache.find("fft", HostId(3), 3.0, 0).has_value());
  EXPECT_FALSE(cache.find("fft", HostId(4), 2.0, 0).has_value());
}

TEST(PredictionCacheTest, EpochBumpInvalidates) {
  predict::PredictionCache cache;
  predict::Prediction p;
  p.time_s = 9.0;
  cache.put("fft", HostId(0), 1.0, 7, p);
  ASSERT_TRUE(cache.find("fft", HostId(0), 1.0, 7).has_value());
  // A monitoring update moved the epoch: the stale entry must not serve.
  EXPECT_FALSE(cache.find("fft", HostId(0), 1.0, 8).has_value());
  const auto s = cache.stats();
  EXPECT_EQ(s.invalidations, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.lookups, 2u);
}

TEST(PredictionCacheTest, ConcurrentHammerCountersReconcile) {
  predict::PredictionCache cache(8, 1024);
  constexpr int kThreads = 8;
  constexpr int kIters = 5'000;
  const std::vector<std::string> tasks = {"a", "b", "c", "d"};

  // The deterministic "prediction function" under memoisation: any hit
  // must return exactly the value computed for its (key, epoch).
  const auto value_of = [](const std::string& task, std::uint32_t host,
                           double size, std::uint64_t epoch) {
    return static_cast<double>(task[0]) + host * 10.0 + size +
           static_cast<double>(epoch) * 1000.0;
  };

  std::atomic<std::uint64_t> epoch{0};
  std::atomic<std::uint64_t> local_lookups{0};
  std::atomic<bool> mismatch{false};
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        common::Rng rng(static_cast<std::uint64_t>(t) + 1);
        for (int i = 0; i < kIters; ++i) {
          const std::string& task = tasks[rng.uniform_int(tasks.size())];
          const HostId host(static_cast<std::uint32_t>(rng.uniform_int(8)));
          const double size = 1.0 + static_cast<double>(rng.uniform_int(2));
          if (i % 512 == 0) epoch.fetch_add(1);  // a "monitoring update"
          const std::uint64_t e = epoch.load();
          local_lookups.fetch_add(1);
          if (const auto hit = cache.find(task, host, size, e)) {
            const double want = value_of(task, host.value(), size, e);
            if (hit->time_s != want) mismatch.store(true);
          } else {
            predict::Prediction p;
            p.time_s = value_of(task, host.value(), size, e);
            cache.put(task, host, size, e, p);
          }
        }
      });
    }
  }
  EXPECT_FALSE(mismatch.load()) << "a stale epoch leaked out of the cache";
  const auto s = cache.stats();
  EXPECT_EQ(s.lookups, local_lookups.load());
  EXPECT_EQ(s.hits + s.misses, s.lookups);
  EXPECT_LE(s.invalidations, s.misses);
  EXPECT_EQ(s.insertions, s.misses);  // every miss was followed by a put
  EXPECT_GT(s.hits, 0u);
}

TEST(PredictionCacheTest, MidTrafficSnapshotsHoldInvariants) {
  // Regression: stats() used to read the counters without quiescing the
  // shards, so a snapshot taken between a lookup's `lookups` increment
  // and its `hits`/`misses` increment violated lookups == hits + misses.
  // Every snapshot -- including ones taken mid-hammer -- must now
  // satisfy the contract.
  predict::PredictionCache cache(4, 256);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> snapshots{0};

  std::jthread observer([&] {
    std::uint64_t last_lookups = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const auto s = cache.stats();
      ++snapshots;
      if (s.hits + s.misses != s.lookups) ++violations;
      if (s.invalidations > s.misses) ++violations;
      if (s.lookups < last_lookups) ++violations;  // counters monotone
      last_lookups = s.lookups;
    }
  });
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < 6; ++t) {
      workers.emplace_back([&cache, t] {
        common::Rng rng(static_cast<std::uint64_t>(t) + 99);
        for (int i = 0; i < 20'000; ++i) {
          const HostId host(static_cast<std::uint32_t>(rng.uniform_int(4)));
          const std::uint64_t epoch = static_cast<std::uint64_t>(i) / 4096;
          if (!cache.find("task", host, 1.0, epoch)) {
            cache.put("task", host, 1.0, epoch, predict::Prediction{});
          }
        }
      });
    }
  }
  stop.store(true, std::memory_order_release);
  observer.join();

  EXPECT_GT(snapshots.load(), 0u);
  EXPECT_EQ(violations.load(), 0u)
      << "a mid-traffic stats() snapshot tore the counter invariants";
}

// ----------------------------------------- parallel/serial determinism

/// A populated multi-site environment, parameterised by testbed seed.
std::pair<std::vector<std::unique_ptr<repo::SiteRepository>>,
          std::unique_ptr<netsim::VirtualTestbed>>
make_env(std::uint64_t seed, sched::RepositoryDirectory& directory) {
  netsim::RandomTestbedParams params;
  params.num_sites = 4;
  params.groups_per_site = 2;
  params.hosts_per_group = 10;  // 20 hosts per site: above the grain
  auto testbed = std::make_unique<netsim::VirtualTestbed>(
      netsim::make_random_testbed(params, seed));
  std::vector<std::unique_ptr<repo::SiteRepository>> repositories;
  for (const SiteId site : testbed->sites()) {
    auto repository = std::make_unique<repo::SiteRepository>(site);
    tasklib::builtin_registry().install_defaults(repository->tasks());
    testbed->populate_repository(*repository, site);
    directory.add_site(site, repository.get());
    repositories.push_back(std::move(repository));
  }
  return {std::move(repositories), std::move(testbed)};
}

void expect_identical(const sched::AllocationTable& serial,
                      const sched::AllocationTable& parallel) {
  ASSERT_EQ(serial.rows().size(), parallel.rows().size());
  for (const auto& row : serial.rows()) {
    const auto& other = parallel.entry(row.task);
    EXPECT_EQ(row.hosts, other.hosts);
    EXPECT_EQ(row.site, other.site);
    // Bit-identical, not approximately equal: the parallel path must
    // evaluate exactly the same arithmetic.
    EXPECT_EQ(row.predicted_s, other.predicted_s);
  }
}

TEST(ParallelSchedulingTest, ParallelEqualsSerialAcrossSeedsAndPolicies) {
  const std::uint64_t seeds[] = {7, 21, 42};
  const sched::PriorityPolicy policies[] = {
      sched::PriorityPolicy::kLevel, sched::PriorityPolicy::kFifo,
      sched::PriorityPolicy::kRandomized};
  for (const std::uint64_t seed : seeds) {
    sched::RepositoryDirectory directory;
    auto env = make_env(seed, directory);
    common::Rng rng(seed);
    sim::SyntheticGraphParams gp;
    gp.family = sim::GraphFamily::kLayered;
    gp.size = 8;
    gp.width = 5;
    const auto graph = sim::make_synthetic_graph(gp, rng);

    for (const auto policy : policies) {
      for (const bool queue_aware : {false, true}) {
        sched::SiteSchedulerConfig serial_cfg;
        serial_cfg.k_nearest = 3;
        serial_cfg.priority = policy;
        serial_cfg.queue_aware = queue_aware;
        sched::SiteSchedulerConfig parallel_cfg = serial_cfg;
        parallel_cfg.threads = 8;

        sched::SiteScheduler serial(SiteId(0), directory, serial_cfg);
        sched::SiteScheduler parallel(SiteId(0), directory, parallel_cfg);
        const auto ts = serial.schedule(graph);
        const auto tp = parallel.schedule(graph);
        expect_identical(ts, tp);
        EXPECT_EQ(serial.consulted_sites(), parallel.consulted_sites());
      }
    }
  }
}

TEST(ParallelSchedulingTest, RepeatedSchedulingHitsTheCache) {
  sched::RepositoryDirectory directory;
  auto env = make_env(11, directory);
  common::Rng rng(5);
  sim::SyntheticGraphParams gp;
  gp.family = sim::GraphFamily::kLayered;
  gp.size = 6;
  gp.width = 4;
  const auto graph = sim::make_synthetic_graph(gp, rng);

  sched::SiteSchedulerConfig cfg;
  cfg.k_nearest = 3;
  cfg.threads = 4;
  sched::SiteScheduler scheduler(SiteId(0), directory, cfg);
  const auto first = scheduler.schedule(graph);
  const auto cold = directory.prediction_cache(SiteId(0)).stats();
  const auto second = scheduler.schedule(graph);
  const auto warm = directory.prediction_cache(SiteId(0)).stats();
  expect_identical(first, second);
  // Nothing changed between the runs, so the second is all hits.
  EXPECT_EQ(warm.misses, cold.misses);
  EXPECT_GT(warm.hits, cold.hits);
}

TEST(ParallelSchedulingTest, MonitoringUpdateInvalidatesCachedPredictions) {
  sched::RepositoryDirectory directory;
  auto env = make_env(13, directory);
  auto& repositories = env.first;
  common::Rng rng(6);
  sim::SyntheticGraphParams gp;
  gp.family = sim::GraphFamily::kLayered;
  gp.size = 4;
  gp.width = 3;
  const auto graph = sim::make_synthetic_graph(gp, rng);

  sched::SiteSchedulerConfig cfg;
  cfg.k_nearest = 0;
  sched::SiteScheduler scheduler(SiteId(0), directory, cfg);
  (void)scheduler.schedule(graph);

  // A workload update on every local host: cached loads are now stale.
  auto& resources = repositories[0]->resources();
  for (const auto& host : resources.hosts_in_site(SiteId(0))) {
    auto dyn = host.dynamic_attrs;
    dyn.cpu_load += 10.0;
    resources.update_dynamic(host.host, dyn);
  }
  const auto before = directory.prediction_cache(SiteId(0)).stats();
  (void)scheduler.schedule(graph);
  const auto after = directory.prediction_cache(SiteId(0)).stats();
  // The epoch moved: nothing cached before the update may be served, so
  // the re-schedule misses (and explicitly invalidates) stale entries.
  EXPECT_GT(after.misses, before.misses);
  EXPECT_GT(after.invalidations, before.invalidations);
}

}  // namespace
}  // namespace vdce
