// Unit and property tests for the Application Flow Graph: structure,
// validation, levels, and the .afg text format.
#include <gtest/gtest.h>

#include <algorithm>

#include "afg/graph.hpp"
#include "afg/levels.hpp"
#include "afg/serialize.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace vdce::afg {
namespace {

using common::NotFoundError;
using common::ParseError;
using common::StateError;
using common::TaskId;

FlowGraph diamond() {
  // a -> {b, c} -> d
  FlowGraph g("diamond");
  const auto a = g.add_task("synth_source", "a");
  const auto b = g.add_task("synth_compute", "b");
  const auto c = g.add_task("synth_compute", "c");
  const auto d = g.add_task("synth_sink", "d");
  g.add_link(a, b, 1.0);
  g.add_link(a, c, 1.0);
  g.add_link(b, d, 1.0);
  g.add_link(c, d, 1.0);
  return g;
}

// ------------------------------------------------------------ structure

TEST(FlowGraph, AddTaskAssignsUniqueIds) {
  FlowGraph g;
  const auto a = g.add_task("x", "a");
  const auto b = g.add_task("x", "b");
  EXPECT_NE(a, b);
  EXPECT_EQ(g.task_count(), 2u);
}

TEST(FlowGraph, DuplicateLabelRejected) {
  FlowGraph g;
  g.add_task("x", "a");
  EXPECT_THROW(g.add_task("y", "a"), StateError);
}

TEST(FlowGraph, EmptyNamesRejected) {
  FlowGraph g;
  EXPECT_THROW(g.add_task("", "a"), StateError);
  EXPECT_THROW(g.add_task("x", ""), StateError);
}

TEST(FlowGraph, BadPropertiesRejected) {
  FlowGraph g;
  TaskProperties zero_procs;
  zero_procs.num_processors = 0;
  EXPECT_THROW(g.add_task("x", "a", zero_procs), StateError);
  TaskProperties bad_size;
  bad_size.input_size = 0.0;
  EXPECT_THROW(g.add_task("x", "b", bad_size), StateError);
}

TEST(FlowGraph, SelfLoopRejected) {
  FlowGraph g;
  const auto a = g.add_task("x", "a");
  EXPECT_THROW(g.add_link(a, a, 1.0), StateError);
}

TEST(FlowGraph, DuplicateLinkRejected) {
  FlowGraph g;
  const auto a = g.add_task("x", "a");
  const auto b = g.add_task("x", "b");
  g.add_link(a, b, 1.0);
  EXPECT_THROW(g.add_link(a, b, 2.0), StateError);
}

TEST(FlowGraph, UnknownEndpointRejected) {
  FlowGraph g;
  const auto a = g.add_task("x", "a");
  EXPECT_THROW(g.add_link(a, TaskId(99), 1.0), NotFoundError);
}

TEST(FlowGraph, NegativeTransferRejected) {
  FlowGraph g;
  const auto a = g.add_task("x", "a");
  const auto b = g.add_task("x", "b");
  EXPECT_THROW(g.add_link(a, b, -1.0), StateError);
}

TEST(FlowGraph, ParentsAndChildren) {
  const auto g = diamond();
  const auto a = *g.find_by_label("a");
  const auto d = *g.find_by_label("d");
  EXPECT_EQ(g.parents(a).size(), 0u);
  EXPECT_EQ(g.children(a).size(), 2u);
  EXPECT_EQ(g.parents(d).size(), 2u);
  EXPECT_EQ(g.children(d).size(), 0u);
}

TEST(FlowGraph, OrderedParentsFollowLinkInsertion) {
  FlowGraph g;
  const auto a = g.add_task("x", "a");
  const auto b = g.add_task("x", "b");
  const auto c = g.add_task("x", "c");
  // Insert the link from the *higher-id* parent first.
  g.add_link(b, c, 1.0);
  g.add_link(a, c, 1.0);
  const auto ordered = g.ordered_parents(c);
  ASSERT_EQ(ordered.size(), 2u);
  EXPECT_EQ(ordered[0], b);
  EXPECT_EQ(ordered[1], a);
  // Sorted accessor unaffected.
  const auto sorted = g.parents(c);
  EXPECT_EQ(sorted[0], a);
  EXPECT_EQ(sorted[1], b);
}

TEST(FlowGraph, SetLinkTransferKeepsOrder) {
  FlowGraph g;
  const auto a = g.add_task("x", "a");
  const auto b = g.add_task("x", "b");
  const auto c = g.add_task("x", "c");
  g.add_link(b, c, 1.0);
  g.add_link(a, c, 1.0);
  g.set_link_transfer(b, c, 9.0);
  EXPECT_DOUBLE_EQ(g.link(b, c).transfer_mb, 9.0);
  EXPECT_EQ(g.ordered_parents(c)[0], b);  // position preserved
  EXPECT_THROW(g.set_link_transfer(a, b, 1.0), NotFoundError);
}

TEST(FlowGraph, RemoveTaskDropsLinks) {
  auto g = diamond();
  const auto b = *g.find_by_label("b");
  g.remove_task(b);
  EXPECT_EQ(g.task_count(), 3u);
  EXPECT_EQ(g.link_count(), 2u);  // a->c, c->d remain
  EXPECT_FALSE(g.find_by_label("b").has_value());
  // Label is reusable.
  EXPECT_NO_THROW(g.add_task("x", "b"));
}

TEST(FlowGraph, RemoveLink) {
  auto g = diamond();
  const auto a = *g.find_by_label("a");
  const auto b = *g.find_by_label("b");
  g.remove_link(a, b);
  EXPECT_EQ(g.link_count(), 3u);
  EXPECT_THROW(g.remove_link(a, b), NotFoundError);
}

TEST(FlowGraph, EntryAndExitTasks) {
  const auto g = diamond();
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
  EXPECT_EQ(g.entry_tasks()[0], *g.find_by_label("a"));
  EXPECT_EQ(g.exit_tasks()[0], *g.find_by_label("d"));
}

// ------------------------------------------------------------ validity

TEST(FlowGraph, DiamondIsDag) {
  EXPECT_TRUE(diamond().is_dag());
  EXPECT_NO_THROW(diamond().validate());
}

TEST(FlowGraph, CycleDetected) {
  FlowGraph g;
  const auto a = g.add_task("x", "a");
  const auto b = g.add_task("x", "b");
  const auto c = g.add_task("x", "c");
  g.add_link(a, b, 1.0);
  g.add_link(b, c, 1.0);
  g.add_link(c, a, 1.0);
  EXPECT_FALSE(g.is_dag());
  EXPECT_THROW(g.validate(), StateError);
  EXPECT_THROW((void)g.topological_order(), StateError);
}

TEST(FlowGraph, EmptyGraphInvalid) {
  FlowGraph g;
  EXPECT_THROW(g.validate(), StateError);
}

TEST(FlowGraph, SequentialModeWithManyProcsInvalid) {
  FlowGraph g;
  TaskProperties props;
  props.mode = ComputeMode::kSequential;
  props.num_processors = 4;
  g.add_task("x", "a", props);
  EXPECT_THROW(g.validate(), StateError);
}

TEST(FlowGraph, TopologicalOrderRespectsLinks) {
  const auto g = diamond();
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  const auto pos = [&](TaskId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  for (const Link& l : g.links()) {
    EXPECT_LT(pos(l.from), pos(l.to));
  }
}

// Property test: random layered DAGs are always valid and sort cleanly.
TEST(FlowGraphProperty, RandomDagsAreValid) {
  common::Rng rng(321);
  for (int trial = 0; trial < 30; ++trial) {
    FlowGraph g;
    const std::size_t n = 3 + rng.uniform_int(20);
    std::vector<TaskId> ids;
    for (std::size_t i = 0; i < n; ++i) {
      ids.push_back(g.add_task("x", "n" + std::to_string(i)));
    }
    // Only forward links (i -> j for i < j): acyclic by construction.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (rng.bernoulli(0.2)) g.add_link(ids[i], ids[j], rng.uniform());
      }
    }
    EXPECT_TRUE(g.is_dag());
    const auto order = g.topological_order();
    EXPECT_EQ(order.size(), n);
    const auto pos = [&](TaskId id) {
      return std::find(order.begin(), order.end(), id) - order.begin();
    };
    for (const Link& l : g.links()) EXPECT_LT(pos(l.from), pos(l.to));
  }
}

// -------------------------------------------------------------- levels

TEST(Levels, ChainSumsCosts) {
  FlowGraph g;
  const auto a = g.add_task("x", "a");
  const auto b = g.add_task("x", "b");
  const auto c = g.add_task("x", "c");
  g.add_link(a, b, 0.0);
  g.add_link(b, c, 0.0);
  const auto levels = compute_levels(g, [](const TaskNode&) { return 2.0; });
  EXPECT_DOUBLE_EQ(levels.at(c), 2.0);
  EXPECT_DOUBLE_EQ(levels.at(b), 4.0);
  EXPECT_DOUBLE_EQ(levels.at(a), 6.0);
}

TEST(Levels, TakesLongestPath) {
  // a -> b -> d ; a -> c -> d with c twice as expensive.
  FlowGraph g;
  const auto a = g.add_task("x", "a");
  const auto b = g.add_task("x", "b");
  const auto c = g.add_task("x", "c");
  const auto d = g.add_task("x", "d");
  g.add_link(a, b, 0.0);
  g.add_link(a, c, 0.0);
  g.add_link(b, d, 0.0);
  g.add_link(c, d, 0.0);
  const auto levels = compute_levels(g, [&](const TaskNode& n) {
    return n.id == c ? 4.0 : 1.0;
  });
  EXPECT_DOUBLE_EQ(levels.at(d), 1.0);
  EXPECT_DOUBLE_EQ(levels.at(b), 2.0);
  EXPECT_DOUBLE_EQ(levels.at(c), 5.0);
  EXPECT_DOUBLE_EQ(levels.at(a), 6.0);  // via c
}

TEST(Levels, PriorityOrderDescending) {
  const auto g = diamond();
  const auto levels = compute_levels(g, [](const TaskNode&) { return 1.0; });
  const auto order = priority_order(g, levels);
  // Entry first (highest level), exit last.
  EXPECT_EQ(order.front(), *g.find_by_label("a"));
  EXPECT_EQ(order.back(), *g.find_by_label("d"));
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(levels.at(order[i - 1]), levels.at(order[i]));
  }
}

TEST(Levels, CriticalPathLength) {
  const auto g = diamond();
  const auto levels = compute_levels(g, [](const TaskNode&) { return 1.0; });
  EXPECT_DOUBLE_EQ(critical_path_length(g, levels), 3.0);  // a,b|c,d
}

// Property: level of a parent is strictly greater than each child's
// (costs positive).
TEST(LevelsProperty, ParentAboveChild) {
  common::Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    FlowGraph g;
    const std::size_t n = 4 + rng.uniform_int(12);
    std::vector<TaskId> ids;
    for (std::size_t i = 0; i < n; ++i) {
      ids.push_back(g.add_task("x", "n" + std::to_string(i)));
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (rng.bernoulli(0.25)) g.add_link(ids[i], ids[j], 1.0);
      }
    }
    const auto levels = compute_levels(g, [&](const TaskNode& node) {
      return 0.5 + static_cast<double>(node.id.value() % 5);
    });
    for (const Link& l : g.links()) {
      EXPECT_GT(levels.at(l.from), levels.at(l.to));
    }
  }
}

// ------------------------------------------------------------- serialize

TEST(AfgText, RoundTrip) {
  FlowGraph g("solver");
  TaskProperties props;
  props.mode = ComputeMode::kParallel;
  props.num_processors = 2;
  props.preferred_arch = repo::ArchType::kSparc;
  props.preferred_os = repo::OsType::kSolaris;
  props.input_size = 4.0;
  const auto a = g.add_task("lu_decomposition", "lu1", props);
  const auto b = g.add_task("matrix_inversion", "inv1");
  g.add_link(a, b, 2.5);

  const auto text = to_text(g);
  const auto parsed = from_text(text);
  EXPECT_EQ(parsed.name(), "solver");
  EXPECT_EQ(parsed.task_count(), 2u);
  EXPECT_EQ(parsed.link_count(), 1u);
  const auto lu = *parsed.find_by_label("lu1");
  EXPECT_EQ(parsed.task(lu).props, props);
  const auto inv = *parsed.find_by_label("inv1");
  EXPECT_DOUBLE_EQ(parsed.link(lu, inv).transfer_mb, 2.5);
}

TEST(AfgText, CommentsAndBlanksIgnored) {
  const auto g = from_text(
      "# a comment\n"
      "\n"
      "app demo\n"
      "task a synth_source\n"
      "  # indented comment\n"
      "task b synth_sink size=2\n"
      "link a b 1.5\n");
  EXPECT_EQ(g.name(), "demo");
  EXPECT_EQ(g.task_count(), 2u);
  EXPECT_DOUBLE_EQ(g.task(*g.find_by_label("b")).props.input_size, 2.0);
}

TEST(AfgText, ErrorsCarryLineNumbers) {
  try {
    (void)from_text("app demo\nbogus directive\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(AfgText, UnknownLabelInLink) {
  EXPECT_THROW((void)from_text("task a x\nlink a ghost 1\n"), ParseError);
}

TEST(AfgText, BadPropertyKey) {
  EXPECT_THROW((void)from_text("task a x color=red\n"), ParseError);
}

TEST(AfgText, DuplicateAppLine) {
  EXPECT_THROW((void)from_text("app a\napp b\n"), ParseError);
}

TEST(AfgText, MalformedTaskLine) {
  EXPECT_THROW((void)from_text("task onlylabel\n"), ParseError);
}

TEST(AfgText, FileRoundTrip) {
  const auto g = diamond();
  const std::string path = "/tmp/vdce_afg_test.afg";
  save_file(g, path);
  const auto loaded = load_file(path);
  EXPECT_EQ(loaded.task_count(), g.task_count());
  EXPECT_EQ(loaded.link_count(), g.link_count());
  EXPECT_THROW((void)load_file("/tmp/definitely_missing.afg"),
               NotFoundError);
}

TEST(AfgDot, ContainsNodesAndEdges) {
  const auto dot = to_dot(diamond());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"a\" -> \"b\""), std::string::npos);
  EXPECT_NE(dot.find("synth_sink"), std::string::npos);
}

// Property: text round trip preserves everything for random graphs.
TEST(AfgTextProperty, RandomRoundTrip) {
  common::Rng rng(555);
  for (int trial = 0; trial < 15; ++trial) {
    FlowGraph g("app" + std::to_string(trial));
    const std::size_t n = 2 + rng.uniform_int(10);
    std::vector<TaskId> ids;
    for (std::size_t i = 0; i < n; ++i) {
      TaskProperties props;
      props.input_size = 0.25 + rng.uniform(0.0, 4.0);
      if (rng.bernoulli(0.3)) {
        props.mode = ComputeMode::kParallel;
        props.num_processors = 1 + static_cast<unsigned>(rng.uniform_int(4));
      }
      ids.push_back(g.add_task("x", "n" + std::to_string(i), props));
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (rng.bernoulli(0.3)) g.add_link(ids[i], ids[j], rng.uniform());
      }
    }
    const auto parsed = from_text(to_text(g));
    ASSERT_EQ(parsed.task_count(), g.task_count());
    ASSERT_EQ(parsed.link_count(), g.link_count());
    for (const TaskNode& node : g.tasks()) {
      const auto pid = parsed.find_by_label(node.label);
      ASSERT_TRUE(pid.has_value());
      EXPECT_EQ(parsed.task(*pid).props, node.props);
      EXPECT_EQ(parsed.task(*pid).library_task, node.library_task);
    }
    for (const Link& l : g.links()) {
      const auto from = *parsed.find_by_label(g.task(l.from).label);
      const auto to = *parsed.find_by_label(g.task(l.to).label);
      EXPECT_DOUBLE_EQ(parsed.link(from, to).transfer_mb, l.transfer_mb);
    }
  }
}

}  // namespace
}  // namespace vdce::afg
