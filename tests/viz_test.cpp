// Tests for the visualization services: Gantt/application performance,
// workload recorder, comparative visualization.
#include <gtest/gtest.h>

#include "sim/static_sim.hpp"
#include "viz/comparative.hpp"
#include "viz/gantt.hpp"
#include "viz/workload_viz.hpp"

namespace vdce::viz {
namespace {

using common::HostId;
using common::SiteId;
using common::TaskId;

sim::SimResult sample_result() {
  sim::SimResult r;
  sim::SimTaskRecord a;
  a.task = TaskId(0);
  a.label = "first";
  a.library_task = "synth_source";
  a.host = HostId(1);
  a.site = SiteId(0);
  a.data_ready = 0.0;
  a.start = 0.0;
  a.finish = 2.0;
  a.exec_s = 2.0;
  r.records.push_back(a);
  sim::SimTaskRecord b = a;
  b.task = TaskId(1);
  b.label = "second";
  b.host = HostId(2);
  b.data_ready = 2.0;
  b.start = 2.5;
  b.finish = 5.0;
  b.exec_s = 2.5;
  b.attempts = 2;
  r.records.push_back(b);
  r.makespan_s = 5.0;
  return r;
}

TEST(GanttTest, RendersRowsPerTask) {
  const auto text = render_gantt(sample_result(), 40);
  EXPECT_NE(text.find("first"), std::string::npos);
  EXPECT_NE(text.find("second"), std::string::npos);
  EXPECT_NE(text.find("#"), std::string::npos);
  EXPECT_NE(text.find("makespan 5.00"), std::string::npos);
  // Rescheduled task marked.
  EXPECT_NE(text.find("(x2)"), std::string::npos);
}

TEST(GanttTest, EmptyRun) {
  EXPECT_EQ(render_gantt(sim::SimResult{}), "(empty run)\n");
}

TEST(GanttTest, CsvHasHeaderAndRows) {
  const auto csv = to_csv(sample_result());
  EXPECT_NE(csv.find("task,label,host"), std::string::npos);
  // Header + 2 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find("first"), std::string::npos);
}

TEST(RunTableTest, RendersRealRun) {
  rt::RunResult run;
  rt::TaskRunRecord rec;
  rec.task = TaskId(0);
  rec.label = "solver";
  rec.library_task = "linear_solve";
  rec.host = HostId(3);
  rec.turnaround_s = 0.5;
  rec.compute_s = 0.4;
  rec.bytes_sent = 100;
  rec.bytes_received = 200;
  run.records.push_back(rec);
  run.makespan_s = 0.5;
  const auto table = render_run_table(run);
  EXPECT_NE(table.find("solver"), std::string::npos);
  EXPECT_NE(table.find("makespan"), std::string::npos);
  const auto csv = to_csv(run);
  EXPECT_NE(csv.find("linear_solve"), std::string::npos);
}

TEST(WorkloadRecorderTest, SnapshotsAndRenders) {
  repo::SiteRepository repository(SiteId(0));
  repo::HostStaticAttrs attrs;
  attrs.host_name = "h";
  attrs.total_memory_mb = 128.0;
  attrs.site = SiteId(0);
  attrs.group = common::GroupId(0);
  const auto host = repository.resources().register_host(attrs);

  WorkloadRecorder recorder;
  for (int i = 0; i < 5; ++i) {
    repo::HostDynamicAttrs dyn;
    dyn.cpu_load = i;
    dyn.available_memory_mb = 128.0 - i;
    dyn.alive = i != 3;
    repository.resources().update_dynamic(host, dyn);
    recorder.snapshot(repository, i);
  }
  EXPECT_EQ(recorder.snapshots(), 5u);
  const auto text = recorder.render();
  EXPECT_NE(text.find("h0"), std::string::npos);
  EXPECT_NE(text.find("X"), std::string::npos);  // the down sample
  const auto csv = recorder.to_csv();
  EXPECT_NE(csv.find("when,host,load"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 6);  // header + 5
}

TEST(ComparativeTest, RanksRuns) {
  ComparativeViz viz;
  auto fast = sample_result();
  fast.makespan_s = 2.0;
  auto slow = sample_result();
  slow.makespan_s = 8.0;
  viz.add_run("fast-config", fast);
  viz.add_run("slow-config", slow);
  EXPECT_EQ(viz.runs(), 2u);
  EXPECT_EQ(viz.best(), "fast-config");
  const auto text = viz.render();
  EXPECT_NE(text.find("fast-config"), std::string::npos);
  EXPECT_NE(text.find("4.00x"), std::string::npos);  // slow vs best
  const auto csv = viz.to_csv();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(ComparativeTest, EmptyRender) {
  ComparativeViz viz;
  EXPECT_EQ(viz.render(), "(no runs)\n");
  EXPECT_EQ(viz.best(), "");
}

}  // namespace
}  // namespace vdce::viz
