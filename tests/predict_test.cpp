// Tests for performance prediction: Predict(task, R) and the load
// forecaster.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "predict/forecaster.hpp"
#include "predict/predictor.hpp"

namespace vdce::predict {
namespace {

using common::ForecastMethod;
using common::HostId;
using common::SiteId;

void fill_repo(repo::SiteRepository& r) {
  repo::TaskPerformanceRecord task;
  task.task_name = "fft";
  task.base_time_s = 2.0;
  task.memory_req_mb = 32.0;
  r.tasks().register_task(task);

  repo::HostStaticAttrs h;
  h.host_name = "h0";
  h.arch = repo::ArchType::kSparc;
  h.total_memory_mb = 256.0;
  h.site = SiteId(0);
  h.group = common::GroupId(0);
  r.resources().register_host(h);  // HostId(0)
}

// ----------------------------------------------------------- forecaster

TEST(Forecaster, EmptyIsNullopt) {
  LoadForecaster f;
  EXPECT_FALSE(f.forecast(HostId(0)).has_value());
  EXPECT_EQ(f.count(HostId(0)), 0u);
}

TEST(Forecaster, WindowMean) {
  LoadForecaster f(4, ForecastMethod::kWindowMean);
  f.observe(HostId(0), 1.0);
  f.observe(HostId(0), 3.0);
  EXPECT_DOUBLE_EQ(f.forecast(HostId(0)).value(), 2.0);
}

TEST(Forecaster, LastSample) {
  LoadForecaster f(4, ForecastMethod::kLastSample);
  f.observe(HostId(0), 1.0);
  f.observe(HostId(0), 3.0);
  EXPECT_DOUBLE_EQ(f.forecast(HostId(0)).value(), 3.0);
}

TEST(Forecaster, WindowEvicts) {
  LoadForecaster f(2, ForecastMethod::kWindowMean);
  f.observe(HostId(0), 100.0);
  f.observe(HostId(0), 1.0);
  f.observe(HostId(0), 3.0);  // evicts 100
  EXPECT_DOUBLE_EQ(f.forecast(HostId(0)).value(), 2.0);
  EXPECT_EQ(f.count(HostId(0)), 2u);
}

TEST(Forecaster, PerHostIsolation) {
  LoadForecaster f;
  f.observe(HostId(0), 1.0);
  f.observe(HostId(1), 9.0);
  EXPECT_DOUBLE_EQ(f.forecast(HostId(0)).value(), 1.0);
  EXPECT_DOUBLE_EQ(f.forecast(HostId(1)).value(), 9.0);
}

TEST(Forecaster, Forget) {
  LoadForecaster f;
  f.observe(HostId(0), 1.0);
  f.forget(HostId(0));
  EXPECT_FALSE(f.forecast(HostId(0)).has_value());
}

// ------------------------------------------------------------ predictor

TEST(Predictor, DedicatedUnloadedBaseline) {
  repo::SiteRepository repo{SiteId(0)};
  fill_repo(repo);
  PerformancePredictor p(repo);
  // weight=1, load=0 (initial), fits in memory -> base_time * size.
  EXPECT_DOUBLE_EQ(p.predict("fft", 1.0, HostId(0)), 2.0);
  EXPECT_DOUBLE_EQ(p.predict("fft", 3.0, HostId(0)), 6.0);
}

TEST(Predictor, WeightSpeedsUp) {
  repo::SiteRepository repo{SiteId(0)};
  fill_repo(repo);
  repo.tasks().set_power_weight("fft", HostId(0), 2.0);
  PerformancePredictor p(repo);
  EXPECT_DOUBLE_EQ(p.predict("fft", 1.0, HostId(0)), 1.0);
}

TEST(Predictor, ArchWeightFallback) {
  repo::SiteRepository repo{SiteId(0)};
  fill_repo(repo);
  repo.tasks().set_arch_weight("fft", repo::ArchType::kSparc, 4.0);
  PerformancePredictor p(repo);
  EXPECT_DOUBLE_EQ(p.predict("fft", 1.0, HostId(0)), 0.5);
}

TEST(Predictor, LoadSlowsDown) {
  repo::SiteRepository repo{SiteId(0)};
  fill_repo(repo);
  repo::HostDynamicAttrs dyn;
  dyn.cpu_load = 1.0;  // one competing process
  dyn.available_memory_mb = 256.0;
  repo.resources().update_dynamic(HostId(0), dyn);
  PerformancePredictor p(repo);
  EXPECT_DOUBLE_EQ(p.predict("fft", 1.0, HostId(0)), 4.0);  // 2 * (1+1)
}

TEST(Predictor, ForecasterOverridesRepositoryLoad) {
  repo::SiteRepository repo{SiteId(0)};
  fill_repo(repo);
  repo::HostDynamicAttrs dyn;
  dyn.cpu_load = 9.0;  // stale high value in the repository
  dyn.available_memory_mb = 256.0;
  repo.resources().update_dynamic(HostId(0), dyn);

  LoadForecaster f(4, ForecastMethod::kWindowMean);
  f.observe(HostId(0), 0.0);
  PerformancePredictor p(repo, &f);
  EXPECT_DOUBLE_EQ(p.predict("fft", 1.0, HostId(0)), 2.0);
}

TEST(Predictor, MemoryPressurePenalty) {
  repo::SiteRepository repo{SiteId(0)};
  fill_repo(repo);
  repo::HostDynamicAttrs dyn;
  dyn.cpu_load = 0.0;
  dyn.available_memory_mb = 16.0;  // task needs 32
  repo.resources().update_dynamic(HostId(0), dyn);
  PerformancePredictor p(repo);
  const auto detail = p.predict_detailed("fft", 1.0, HostId(0));
  // penalty = 1 + 4*(32/16 - 1) = 5.
  EXPECT_DOUBLE_EQ(detail.memory_penalty, 5.0);
  EXPECT_DOUBLE_EQ(detail.time_s, 10.0);
}

TEST(Predictor, DetailedBreakdownConsistent) {
  repo::SiteRepository repo{SiteId(0)};
  fill_repo(repo);
  repo.tasks().set_power_weight("fft", HostId(0), 2.0);
  repo::HostDynamicAttrs dyn;
  dyn.cpu_load = 0.5;
  dyn.available_memory_mb = 256.0;
  repo.resources().update_dynamic(HostId(0), dyn);
  PerformancePredictor p(repo);
  const auto d = p.predict_detailed("fft", 2.0, HostId(0));
  EXPECT_DOUBLE_EQ(d.weight, 2.0);
  EXPECT_DOUBLE_EQ(d.dedicated_s, 2.0);  // 2*2/2
  EXPECT_DOUBLE_EQ(d.load, 0.5);
  EXPECT_DOUBLE_EQ(d.memory_penalty, 1.0);
  EXPECT_DOUBLE_EQ(d.time_s, 3.0);
}

TEST(Predictor, UnknownTaskOrHostThrows) {
  repo::SiteRepository repo{SiteId(0)};
  fill_repo(repo);
  PerformancePredictor p(repo);
  EXPECT_THROW((void)p.predict("nope", 1.0, HostId(0)),
               common::NotFoundError);
  EXPECT_THROW((void)p.predict("fft", 1.0, HostId(42)),
               common::NotFoundError);
  EXPECT_THROW((void)p.predict("fft", 0.0, HostId(0)), common::StateError);
}

// Property: prediction is monotone in input size and in load.
class PredictMonotone : public ::testing::TestWithParam<double> {};

TEST_P(PredictMonotone, MonotoneInSize) {
  repo::SiteRepository repo{SiteId(0)};
  fill_repo(repo);
  PerformancePredictor p(repo);
  const double size = GetParam();
  EXPECT_LE(p.predict("fft", size, HostId(0)),
            p.predict("fft", size * 1.5, HostId(0)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PredictMonotone,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 4.0, 8.0));

}  // namespace
}  // namespace vdce::predict
