// Concurrency stress tests: wide fan-outs over real transports, engine
// reuse across applications, broker key isolation, and DSM churn.
// These guard the thread/protocol machinery against regressions that
// unit tests at lower concurrency would miss.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "dsm/dsm.hpp"
#include "netsim/testbed.hpp"
#include "runtime/engine.hpp"
#include "runtime/submission.hpp"
#include "scheduler/site_scheduler.hpp"
#include "sim/workloads.hpp"
#include "tasklib/registry.hpp"

namespace vdce {
namespace {

using common::SiteId;

class StressEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    testbed_ = std::make_unique<netsim::VirtualTestbed>(
        netsim::make_campus_testbed(55));
    repository_ = std::make_unique<repo::SiteRepository>(SiteId(0));
    tasklib::builtin_registry().install_defaults(repository_->tasks());
    testbed_->populate_repository(*repository_, SiteId(0));
    directory_.add_site(SiteId(0), repository_.get());
  }

  sched::AllocationTable schedule(const afg::FlowGraph& graph) {
    sched::SiteSchedulerConfig config;
    config.queue_aware = true;
    sched::SiteScheduler scheduler(SiteId(0), directory_, config);
    return scheduler.schedule(graph);
  }

  std::unique_ptr<netsim::VirtualTestbed> testbed_;
  std::unique_ptr<repo::SiteRepository> repository_;
  sched::RepositoryDirectory directory_;
};

TEST_F(StressEnv, WideFanOutOverTcp) {
  // 1 source feeding 16 computes feeding reductions: 20+ concurrent
  // machine threads with real sockets.
  common::Rng rng(1);
  sim::SyntheticGraphParams params;
  params.family = sim::GraphFamily::kForkJoin;
  params.size = 16;
  params.min_transfer_mb = 0.001;
  params.max_transfer_mb = 0.01;
  const auto graph = sim::make_synthetic_graph(params, rng);
  const auto allocation = schedule(graph);

  rt::EngineConfig config;
  config.transport = dm::TransportKind::kTcp;
  rt::ExecutionEngine engine(tasklib::builtin_registry(), config);
  const auto result = engine.execute(graph, allocation);
  EXPECT_EQ(result.records.size(), graph.task_count());
}

TEST_F(StressEnv, DeepChainOverTcp) {
  common::Rng rng(2);
  sim::SyntheticGraphParams params;
  params.family = sim::GraphFamily::kChain;
  params.size = 24;
  params.min_transfer_mb = 0.001;
  params.max_transfer_mb = 0.01;
  const auto graph = sim::make_synthetic_graph(params, rng);
  const auto allocation = schedule(graph);

  rt::EngineConfig config;
  config.transport = dm::TransportKind::kTcp;
  rt::ExecutionEngine engine(tasklib::builtin_registry(), config);
  const auto result = engine.execute(graph, allocation);
  EXPECT_EQ(result.records.size(), 24u);
}

TEST_F(StressEnv, EngineReuseAcrossManyApplications) {
  // The same engine executes many applications back to back; app ids
  // must isolate broker keys so no run sees a previous run's channels.
  const auto graph = sim::make_c3i_graph(0.25);
  const auto allocation = schedule(graph);
  rt::ExecutionEngine engine(tasklib::builtin_registry());
  common::AppId last_app;
  for (int round = 0; round < 10; ++round) {
    const auto result = engine.execute(graph, allocation);
    EXPECT_EQ(result.records.size(), graph.task_count());
    EXPECT_NE(result.app, last_app);
    last_app = result.app;
  }
}

TEST_F(StressEnv, ConcurrentEnginesDoNotInterfere) {
  // Two engines (independent brokers) run different apps at once.
  const auto g1 = sim::make_c3i_graph(0.25);
  const auto g2 = sim::make_fourier_graph(0.25);
  const auto a1 = schedule(g1);
  const auto a2 = schedule(g2);

  std::string e1_error, e2_error;
  std::jthread t1([&] {
    try {
      rt::ExecutionEngine engine(tasklib::builtin_registry());
      for (int i = 0; i < 5; ++i) (void)engine.execute(g1, a1);
    } catch (const std::exception& e) {
      e1_error = e.what();
    }
  });
  std::jthread t2([&] {
    try {
      rt::ExecutionEngine engine(tasklib::builtin_registry());
      for (int i = 0; i < 5; ++i) (void)engine.execute(g2, a2);
    } catch (const std::exception& e) {
      e2_error = e.what();
    }
  });
  t1.join();
  t2.join();
  EXPECT_TRUE(e1_error.empty()) << e1_error;
  EXPECT_TRUE(e2_error.empty()) << e2_error;
}

TEST_F(StressEnv, ManyConcurrentSubmissions) {
  // 32 submitter threads race one submission service: mixed
  // admit/reject outcomes, shared engine slots, and prediction
  // feedback through one SiteManager.  Afterwards every counter must
  // reconcile exactly -- no lost and no double-executed app.
  predict::LoadForecaster forecaster;
  rt::SiteManager manager(SiteId(0), *repository_, forecaster);

  rt::AppSubmissionConfig config;
  config.slots = 4;
  config.max_queue = 64;
  rt::AppSubmissionService service(SiteId(0), directory_,
                                   tasklib::builtin_registry(), config);
  service.set_feedback(&manager);

  constexpr int kSubmitters = 32;
  std::vector<common::AppId> tickets(kSubmitters);
  {
    std::vector<std::jthread> submitters;
    for (int i = 0; i < kSubmitters; ++i) {
      submitters.emplace_back([&, i] {
        afg::FlowGraph g("app" + std::to_string(i));
        const auto src = g.add_task("synth_source", "src");
        const auto sink = g.add_task("synth_sink", "sink");
        g.add_link(src, sink, 0.01);
        rt::SubmissionRequest request;
        request.graph = std::move(g);
        // Every 4th submission carries an impossible deadline and must
        // be rejected; the rest are comfortably admitted.
        request.qos.deadline_s = (i % 4 == 0) ? 0.0 : 1e9;
        request.user = "user" + std::to_string(i % 5);
        request.weight = 1.0 + (i % 3);
        request.seed = 1000 + static_cast<std::uint64_t>(i);
        tickets[static_cast<std::size_t>(i)] =
            service.submit(std::move(request));
      });
    }
  }
  service.drain();

  std::size_t completed = 0, rejected = 0;
  std::set<std::uint32_t> seen_apps;
  for (const auto ticket : tickets) {
    ASSERT_TRUE(ticket.valid());
    EXPECT_TRUE(seen_apps.insert(ticket.value()).second);
    const auto status = service.wait(ticket);
    if (status.state == rt::SubmissionState::kCompleted) {
      ++completed;
      // Executed exactly once, under its own app id, to completion.
      EXPECT_EQ(status.result.app, ticket);
      EXPECT_EQ(status.result.records.size(), 2u);
      for (const auto& rec : status.result.records) {
        EXPECT_EQ(rec.attempts, 1);
      }
    } else {
      EXPECT_EQ(status.state, rt::SubmissionState::kRejected);
      EXPECT_LT(status.admission.slack_s, 0.0);
      ++rejected;
    }
  }
  EXPECT_EQ(completed, 24u);
  EXPECT_EQ(rejected, 8u);

  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, 32u);
  EXPECT_EQ(stats.rejected, 8u);
  EXPECT_EQ(stats.completed, 24u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.running, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.submitted,
            stats.admitted + stats.rejected + stats.queued);
  EXPECT_EQ(stats.queued, stats.queued_then_admitted);
  EXPECT_EQ(stats.admitted + stats.queued_then_admitted,
            stats.completed + stats.failed);

  // Each completed app fed exactly its two task measurements back
  // through the shared SiteManager (the counter is atomic; concurrent
  // runs must not lose increments).
  EXPECT_EQ(manager.stats().task_times_recorded.load(), 2 * completed);
}

TEST_F(StressEnv, HundredThousandSubmissionFirehose) {
  // The D15 admission front door at scale: 100k submissions firehosed
  // from 4 threads through batched admission against a bounded queue,
  // with early shedding, priority preemption and a concurrent
  // shed_queued() operator in the mix.  Every counter must reconcile
  // exactly afterwards -- nothing lost, nothing double-counted.
  // VDCE_STRESS_SUBMITS scales the volume down for sanitizer runs.
  std::size_t total = 100000;
  if (const char* env = std::getenv("VDCE_STRESS_SUBMITS")) {
    total = static_cast<std::size_t>(std::stoul(env));
  }

  rt::AppSubmissionConfig config;
  config.slots = 2;
  config.max_queue = 64;
  config.early_shed = true;
  config.terminal_record_cap = 1024;
  rt::AppSubmissionService service(SiteId(0), directory_,
                                   tasklib::builtin_registry(), config);

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kBatch = 500;
  std::atomic<std::size_t> submitted{0};
  {
    std::vector<std::jthread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        std::size_t k = 0;
        for (;;) {
          const std::size_t start = submitted.fetch_add(kBatch);
          if (start >= total) break;
          const std::size_t count = std::min(kBatch, total - start);
          std::vector<rt::SubmissionRequest> requests;
          requests.reserve(count);
          for (std::size_t i = 0; i < count; ++i, ++k) {
            afg::FlowGraph g("fh" + std::to_string(start + i));
            const auto src = g.add_task("synth_source", "src");
            const auto sink = g.add_task("synth_sink", "sink");
            g.add_link(src, sink, 0.01);
            rt::SubmissionRequest request;
            request.graph = std::move(g);
            request.qos.deadline_s = 1e9;
            request.user = "user" + std::to_string((t * 31 + k) % 23);
            request.weight = 1.0 + static_cast<double>(k % 3);
            request.priority = static_cast<int>(k % 3);
            request.seed = 1 + start + i;
            requests.push_back(std::move(request));
          }
          (void)service.submit_batch(std::move(requests));
        }
      });
    }
    // The operator's pressure valve runs concurrently with the flood.
    threads.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        (void)service.shed_queued(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }
  service.drain();

  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, total);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.running, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  // Full reconciliation across every shedding tier.
  EXPECT_EQ(stats.submitted,
            stats.admitted + stats.rejected + stats.queued);
  EXPECT_EQ(stats.queued,
            stats.queued_then_admitted + stats.preempted + stats.shed);
  EXPECT_EQ(stats.admitted + stats.queued_then_admitted,
            stats.completed + stats.failed);
  EXPECT_LE(stats.early_shed, stats.rejected);
  // The bounded queue actually bounded: the overwhelming majority of
  // the flood was rejected or shed, and record retirement kept the
  // in-memory footprint at the cap.
  EXPECT_GT(stats.rejected + stats.preempted + stats.shed, total / 2);
  EXPECT_LE(stats.records_retained, config.terminal_record_cap + 2);
  EXPECT_GT(stats.completed, 0u);
}

TEST_F(StressEnv, ConcurrentExecuteOnSharedEngine) {
  // Regression: app-id assignment on a shared engine is atomic, so
  // concurrent execute() calls never collide on broker link keys.
  const auto graph = sim::make_c3i_graph(0.25);
  const auto allocation = schedule(graph);
  rt::ExecutionEngine engine(tasklib::builtin_registry());

  std::mutex mu;
  std::set<std::uint32_t> apps;
  std::vector<std::string> errors;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int round = 0; round < 3; ++round) {
          try {
            const auto result = engine.execute(graph, allocation);
            std::lock_guard lk(mu);
            EXPECT_TRUE(apps.insert(result.app.value()).second);
          } catch (const std::exception& e) {
            std::lock_guard lk(mu);
            errors.emplace_back(e.what());
          }
        }
      });
    }
  }
  EXPECT_TRUE(errors.empty()) << errors.front();
  EXPECT_EQ(apps.size(), 12u);
}

TEST(DsmStress, ManyVariablesManyNodes) {
  dsm::DsmServer server;
  constexpr int kNodes = 8;
  constexpr int kRounds = 40;
  std::vector<std::unique_ptr<dsm::DsmNode>> nodes;
  for (int i = 0; i < kNodes; ++i) nodes.push_back(server.attach());

  // Every node hammers its own variable and reads its neighbour's.
  {
    std::vector<std::jthread> threads;
    for (int i = 0; i < kNodes; ++i) {
      threads.emplace_back([&, i] {
        const std::string mine = "var" + std::to_string(i);
        const std::string theirs =
            "var" + std::to_string((i + 1) % kNodes);
        for (int round = 0; round < kRounds; ++round) {
          nodes[i]->write(mine,
                          tasklib::Payload::of_scalar(round));
          try {
            (void)nodes[i]->read(theirs);
          } catch (const common::NotFoundError&) {
            // neighbour has not written yet: acceptable
          }
        }
      });
    }
  }
  // Every variable holds its final round value.
  auto viewer = server.attach();
  for (int i = 0; i < kNodes; ++i) {
    EXPECT_DOUBLE_EQ(
        viewer->read("var" + std::to_string(i)).as_scalar(), kRounds - 1);
  }
}

TEST(DsmStress, InterleavedLocksAcrossManyNodes) {
  dsm::DsmServer server;
  constexpr int kNodes = 6;
  constexpr int kIncs = 25;
  std::vector<std::unique_ptr<dsm::DsmNode>> nodes;
  for (int i = 0; i < kNodes; ++i) nodes.push_back(server.attach());
  nodes[0]->write("c0", tasklib::Payload::of_scalar(0.0));
  nodes[0]->write("c1", tasklib::Payload::of_scalar(0.0));

  {
    std::vector<std::jthread> threads;
    for (int i = 0; i < kNodes; ++i) {
      threads.emplace_back([&, i] {
        // Half the nodes use lock A / counter 0, half lock B / counter 1.
        const std::string lock = i % 2 == 0 ? "A" : "B";
        const std::string counter = i % 2 == 0 ? "c0" : "c1";
        for (int round = 0; round < kIncs; ++round) {
          nodes[i]->acquire(lock);
          const double v = nodes[i]->read(counter).as_scalar();
          nodes[i]->write(counter, tasklib::Payload::of_scalar(v + 1.0));
          nodes[i]->release(lock);
        }
      });
    }
  }
  EXPECT_DOUBLE_EQ(nodes[0]->read("c0").as_scalar(), 3.0 * kIncs);
  EXPECT_DOUBLE_EQ(nodes[0]->read("c1").as_scalar(), 3.0 * kIncs);
}

}  // namespace
}  // namespace vdce
