// Fault-tolerance tests for the live execution path: the engine's
// supervised retry loop (pre-compute guard refusals re-placed inside
// the gang, mid-run failures recovered by channel re-setup and input
// replay), the Control Manager's failure reporting, and the Site
// Scheduler's single-task reschedule entry point.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "common/error.hpp"
#include "netsim/testbed.hpp"
#include "runtime/control_manager.hpp"
#include "runtime/engine.hpp"
#include "runtime/sm_directory.hpp"
#include "scheduler/site_scheduler.hpp"
#include "sim/workloads.hpp"
#include "tasklib/registry.hpp"

namespace vdce::rt {
namespace {

using common::HostId;
using common::SiteId;
using common::TaskId;

/// One fully wired VDCE over the campus testbed (same shape as the
/// runtime tests' fixture), plus helpers to wire the engine's
/// fault-tolerance hooks to the real control plane.
class FaultEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    testbed_ = std::make_unique<netsim::VirtualTestbed>(
        netsim::make_campus_testbed(13));
    for (const SiteId site : testbed_->sites()) {
      auto repository = std::make_unique<repo::SiteRepository>(site);
      tasklib::builtin_registry().install_defaults(repository->tasks());
      testbed_->populate_repository(*repository, site);
      auto forecaster = std::make_unique<predict::LoadForecaster>();
      auto manager =
          std::make_unique<SiteManager>(site, *repository, *forecaster);
      auto control =
          std::make_unique<ControlManager>(*testbed_, site, *manager);
      directory_.add_site(*manager);
      repositories_.push_back(std::move(repository));
      forecasters_.push_back(std::move(forecaster));
      managers_.push_back(std::move(manager));
      controls_.push_back(std::move(control));
    }
  }

  void warm_up(double until) {
    for (double t = 1.0; t <= until; t += 1.0) {
      for (auto& c : controls_) c->tick(t);
    }
  }

  /// Fault-tolerance hooks wired to the real control plane: the
  /// testbed's fault windows drive liveness, failures are reported to
  /// every site's Control Manager (only the owner reacts), and
  /// re-placements go through the Site Scheduler.
  [[nodiscard]] FaultTolerance wire_hooks(
      const sched::SiteScheduler& scheduler, const afg::FlowGraph& graph,
      const sched::AllocationTable& allocation) {
    FaultTolerance ft;
    ft.host_alive = testbed_->liveness_probe();
    ft.reschedule = [&scheduler, &graph, &allocation](
                        const afg::TaskNode& node,
                        const std::vector<HostId>& excluded) {
      return scheduler.reschedule(graph, allocation, node.id, excluded);
    };
    ft.on_failure = [this](const RescheduleRequest& request) {
      for (auto& c : controls_) c->report_task_failure(request);
    };
    // Virtual sleep: retry backoff costs the tests no wall-clock (an
    // in-gang nap would stall every peer blocked on the task).  May be
    // called concurrently from machine threads.
    ft.sleep = [this](double s) {
      virtual_slept_.fetch_add(s, std::memory_order_relaxed);
    };
    return ft;
  }

  std::atomic<double> virtual_slept_{0.0};

  std::unique_ptr<netsim::VirtualTestbed> testbed_;
  std::vector<std::unique_ptr<repo::SiteRepository>> repositories_;
  std::vector<std::unique_ptr<predict::LoadForecaster>> forecasters_;
  std::vector<std::unique_ptr<SiteManager>> managers_;
  std::vector<std::unique_ptr<ControlManager>> controls_;
  SiteManagerDirectory directory_;
};

// -------------------------------------------------- setup-ack protocol

TEST_F(FaultEnv, MidExecuteFailureAcksExactlyOnce) {
  // Regression: a task that throws *after* its channel-setup
  // acknowledgment must not decrement the setup latch a second time on
  // the error path (double count_down on std::latch is undefined
  // behaviour).  The type-broken task fails mid-execute among healthy
  // peers; every run must name the failing task and join cleanly.
  warm_up(5.0);
  afg::FlowGraph g("broken-wide");
  const auto vec = g.add_task("vector_generate", "vec");
  const auto bad = g.add_task("lu_decomposition", "needs-matrix");
  const auto low = g.add_task("lu_lower", "lower");
  g.add_link(vec, bad, 0.1);
  g.add_link(bad, low, 0.1);
  // Healthy peers that must all unblock despite the failure.
  for (int i = 0; i < 4; ++i) {
    const auto src = g.add_task("synth_source", "src" + std::to_string(i));
    const auto sink = g.add_task("synth_sink", "snk" + std::to_string(i));
    g.add_link(src, sink, 0.1);
  }

  sched::SiteScheduler scheduler(SiteId(0), directory_);
  const auto allocation = scheduler.schedule(g);
  for (int round = 0; round < 3; ++round) {
    ExecutionEngine engine(tasklib::builtin_registry());
    try {
      (void)engine.execute(g, allocation);
      FAIL() << "expected StateError";
    } catch (const common::StateError& e) {
      EXPECT_NE(std::string(e.what()).find("needs-matrix"),
                std::string::npos);
    }
  }
}

// -------------------------------------------- injected host failures

TEST_F(FaultEnv, EngineRecoversFromInjectedHostFailure) {
  warm_up(10.0);
  afg::FlowGraph g("ft-pipeline");
  const auto src = g.add_task("synth_source", "src");
  const auto sink = g.add_task("synth_sink", "sink");
  g.add_link(src, sink, 0.1);

  sched::SiteScheduler scheduler(SiteId(0), directory_);
  const auto allocation = scheduler.schedule(g);
  const HostId failed_host = allocation.entry(src).primary_host();
  const SiteId failed_site = allocation.entry(src).site;

  // Fault window covering the whole run; the live clock sits inside it.
  testbed_->fail_host(failed_host, 50.0, 100.0);
  testbed_->set_live_time(60.0);
  ASSERT_FALSE(testbed_->is_alive_now(failed_host));

  const FaultTolerance ft = wire_hooks(scheduler, g, allocation);
  ExecutionEngine engine(tasklib::builtin_registry());
  const auto result =
      engine.execute(g, allocation, managers_[0].get(), nullptr, &ft);

  EXPECT_EQ(result.failures_recovered, 1u);
  EXPECT_EQ(result.reschedules, 1u);
  for (const auto& rec : result.records) {
    if (rec.task == src) {
      EXPECT_EQ(rec.attempts, 2);
      EXPECT_NE(rec.host, failed_host);
    } else {
      EXPECT_EQ(rec.attempts, 1);
    }
  }
  // The application still produced its outputs.
  EXPECT_GT(result.outputs.at(sink).as_scalar(), 0.0);

  // The failure report reached the owning site's repository: the dead
  // host is marked down before any future placement.
  EXPECT_FALSE(repositories_[failed_site.value()]
                   ->resources()
                   .get(failed_host)
                   .dynamic_attrs.alive);
  EXPECT_GE(controls_[failed_site.value()]->stats().reschedule_requests,
            1u);
  EXPECT_GE(controls_[failed_site.value()]->stats().failures_detected, 1u);
  EXPECT_GE(managers_[failed_site.value()]->stats().reschedule_requests +
                managers_[0]->stats().reschedule_requests,
            1u);
}

TEST_F(FaultEnv, RecoveryPreservesOutputs) {
  // The re-placed run must compute exactly what the failure-free run
  // computes (per-task RNG seeds survive the move).
  warm_up(10.0);
  const auto g = sim::make_linear_solver_graph(0.5);
  sched::SiteScheduler scheduler(SiteId(0), directory_);
  const auto allocation = scheduler.schedule(g);

  ExecutionEngine clean_engine(tasklib::builtin_registry());
  const auto clean = clean_engine.execute(g, allocation);

  const auto entry_task = g.entry_tasks().front();
  const HostId failed_host = allocation.entry(entry_task).primary_host();
  testbed_->fail_host(failed_host, 50.0, 100.0);
  testbed_->set_live_time(60.0);

  const FaultTolerance ft = wire_hooks(scheduler, g, allocation);
  ExecutionEngine faulty_engine(tasklib::builtin_registry());
  const auto recovered =
      faulty_engine.execute(g, allocation, nullptr, nullptr, &ft);

  EXPECT_GE(recovered.failures_recovered, 1u);
  ASSERT_EQ(clean.outputs.size(), recovered.outputs.size());
  for (const auto& [task, payload] : clean.outputs) {
    EXPECT_EQ(payload.to_wire(), recovered.outputs.at(task).to_wire());
  }
}

TEST_F(FaultEnv, LoadGuardRefusalRecovers) {
  warm_up(10.0);
  afg::FlowGraph g("hot-host");
  const auto task = g.add_task("synth_source", "only");

  sched::SiteScheduler scheduler(SiteId(0), directory_);
  const auto allocation = scheduler.schedule(g);
  const HostId hot_host = allocation.entry(task).primary_host();

  FaultTolerance ft = wire_hooks(scheduler, g, allocation);
  ft.host_load = [hot_host](HostId host) {
    return host == hot_host ? 9.0 : 0.5;
  };
  std::atomic<int> load_refusals{0};
  ft.on_failure = [&](const RescheduleRequest& request) {
    if (request.kind == RescheduleRequest::Kind::kLoadThreshold) {
      ++load_refusals;
    }
    for (auto& c : controls_) c->report_task_failure(request);
  };

  EngineConfig config;
  config.load_threshold = 4.0;
  ExecutionEngine engine(tasklib::builtin_registry(), config);
  const auto result = engine.execute(g, allocation, nullptr, nullptr, &ft);

  EXPECT_EQ(result.failures_recovered, 1u);
  EXPECT_EQ(result.reschedules, 1u);
  EXPECT_EQ(result.records.front().attempts, 2);
  EXPECT_NE(result.records.front().host, hot_host);
  EXPECT_EQ(load_refusals.load(), 1);
  // A load refusal must NOT mark the host dead in the repository.
  EXPECT_TRUE(repositories_[allocation.entry(task).site.value()]
                  ->resources()
                  .get(hot_host)
                  .dynamic_attrs.alive);
}

TEST_F(FaultEnv, NoFeasibleReplacementStillThrows) {
  // Every host dead: the retry loop must exhaust and surface the error
  // instead of spinning.
  warm_up(10.0);
  afg::FlowGraph g("doomed");
  (void)g.add_task("synth_source", "only");
  sched::SiteScheduler scheduler(SiteId(0), directory_);
  const auto allocation = scheduler.schedule(g);

  for (const HostId host : testbed_->all_hosts()) {
    testbed_->fail_host(host, 50.0, 100.0);
  }
  testbed_->set_live_time(60.0);

  const FaultTolerance ft = wire_hooks(scheduler, g, allocation);
  ExecutionEngine engine(tasklib::builtin_registry());
  EXPECT_THROW((void)engine.execute(g, allocation, nullptr, nullptr, &ft),
               common::StateError);
}

TEST_F(FaultEnv, HostFailureIsolatedBetweenConcurrentApps) {
  // Multi-app fault isolation: a host failure mid-run of app A must
  // not perturb concurrently running app B -- B keeps first-attempt
  // execution on every task and produces bit-identical outputs to the
  // same (graph, seed, app id, allocation) run alone.
  warm_up(10.0);

  afg::FlowGraph ga("victim");
  const auto a_src = ga.add_task("synth_source", "src");
  const auto a_sink = ga.add_task("synth_sink", "sink");
  ga.add_link(a_src, a_sink, 0.1);
  sched::SiteScheduler scheduler(SiteId(0), directory_);
  const auto alloc_a = scheduler.schedule(ga);
  const HostId failed_host = alloc_a.entry(a_src).primary_host();

  // App B on hosts disjoint from the failed one, so its liveness
  // probe stays green throughout.
  afg::FlowGraph gb("bystander");
  const auto b_src = gb.add_task("synth_source", "src");
  const auto b_sink = gb.add_task("synth_sink", "sink");
  gb.add_link(b_src, b_sink, 0.1);
  std::vector<HostId> b_hosts;
  for (const HostId host : testbed_->hosts_in_site(SiteId(0))) {
    if (host != failed_host && b_hosts.size() < 2) b_hosts.push_back(host);
  }
  ASSERT_EQ(b_hosts.size(), 2u);
  sched::AllocationTable alloc_b("bystander");
  for (const auto& [task, host] : {std::pair{b_src, b_hosts[0]},
                                   std::pair{b_sink, b_hosts[1]}}) {
    sched::AllocationEntry entry;
    entry.task = task;
    entry.task_label = gb.task(task).label;
    entry.library_task = gb.task(task).library_task;
    entry.hosts = {host};
    entry.site = SiteId(0);
    alloc_b.add(entry);
  }

  // B's reference run, before any fault exists.
  const common::AppId b_app(7700);
  EngineConfig b_config;
  b_config.seed = 5;
  const auto b_solo = ExecutionEngine(tasklib::builtin_registry(), b_config)
                          .execute(gb, alloc_b, nullptr, nullptr, nullptr,
                                   b_app);

  testbed_->fail_host(failed_host, 50.0, 100.0);
  testbed_->set_live_time(60.0);
  ASSERT_FALSE(testbed_->is_alive_now(failed_host));

  RunResult a_result, b_result;
  std::string a_error, b_error;
  {
    std::jthread run_a([&] {
      try {
        const FaultTolerance ft = wire_hooks(scheduler, ga, alloc_a);
        ExecutionEngine engine(tasklib::builtin_registry());
        a_result = engine.execute(ga, alloc_a, managers_[0].get(),
                                  nullptr, &ft);
      } catch (const std::exception& e) {
        a_error = e.what();
      }
    });
    std::jthread run_b([&] {
      try {
        const FaultTolerance ft = wire_hooks(scheduler, gb, alloc_b);
        ExecutionEngine engine(tasklib::builtin_registry(), b_config);
        b_result = engine.execute(gb, alloc_b, managers_[0].get(),
                                  nullptr, &ft, b_app);
      } catch (const std::exception& e) {
        b_error = e.what();
      }
    });
  }
  ASSERT_TRUE(a_error.empty()) << a_error;
  ASSERT_TRUE(b_error.empty()) << b_error;

  // A recovered from the injected failure...
  EXPECT_GE(a_result.failures_recovered, 1u);
  for (const auto& rec : a_result.records) {
    if (rec.task == a_src) {
      EXPECT_GT(rec.attempts, 1);
      EXPECT_NE(rec.host, failed_host);
    }
  }
  // ...while B never noticed: first-attempt everywhere, original
  // hosts, and outputs bit-identical to its solo reference run.
  EXPECT_EQ(b_result.failures_recovered, 0u);
  EXPECT_EQ(b_result.reschedules, 0u);
  for (const auto& rec : b_result.records) {
    EXPECT_EQ(rec.attempts, 1) << rec.label;
  }
  ASSERT_EQ(b_result.outputs.size(), b_solo.outputs.size());
  for (const auto& [task, payload] : b_solo.outputs) {
    EXPECT_EQ(payload.to_wire(), b_result.outputs.at(task).to_wire());
  }
}

// ------------------------------------------- post-failure recovery

TEST(FaultRecoveryTest, TransientTaskErrorIsRetriedAndInputsReplayed) {
  // A task that throws on its first call brings down its consumer's
  // receive as well; the recovery pass must re-run the task, replay its
  // recorded output into the re-opened channels, and recover both.
  static std::atomic<int> calls{0};
  calls = 0;

  tasklib::TaskRegistry registry;
  tasklib::register_builtin_tasks(registry);
  tasklib::LibraryEntry flaky;
  flaky.name = "flaky_source";
  flaky.menu = "synthetic";
  flaky.description = "fails on the first call, succeeds after";
  flaky.min_inputs = 0;
  flaky.max_inputs = 0;
  flaky.fn = [](const std::vector<tasklib::Payload>&,
                const tasklib::TaskContext&) {
    if (calls.fetch_add(1) == 0) {
      throw common::StateError("transient fault");
    }
    return tasklib::Payload::of_scalar(42.0);
  };
  registry.add(std::move(flaky));

  afg::FlowGraph g("flaky-app");
  const auto src = g.add_task("flaky_source", "flaky");
  const auto sink = g.add_task("synth_sink", "sink");
  g.add_link(src, sink, 0.1);

  sched::AllocationTable allocation("flaky-app");
  for (const auto& [task, host] :
       {std::pair{src, HostId(0)}, std::pair{sink, HostId(1)}}) {
    sched::AllocationEntry entry;
    entry.task = task;
    entry.task_label = g.task(task).label;
    entry.library_task = g.task(task).library_task;
    entry.hosts = {host};
    entry.site = SiteId(0);
    allocation.add(entry);
  }

  // No liveness/load probes: both failures classify as task errors and
  // retry in place.  The rescheduler is present (it turns recovery on)
  // but must never be consulted.
  FaultTolerance ft;
  std::atomic<int> reschedule_calls{0};
  ft.reschedule = [&](const afg::TaskNode&, const std::vector<HostId>&)
      -> std::optional<sched::AllocationEntry> {
    ++reschedule_calls;
    return std::nullopt;
  };
  std::atomic<int> task_error_reports{0};
  ft.on_failure = [&](const RescheduleRequest& request) {
    if (request.kind == RescheduleRequest::Kind::kTaskError) {
      ++task_error_reports;
    }
  };
  ft.sleep = [](double) {};  // virtual sleep: no wall-clock backoff

  EngineConfig config;
  config.retry_backoff_s = 0.001;
  config.attempt_timeout_s = 20.0;
  config.recv_timeout_s = 20.0;
  ExecutionEngine engine(registry, config);
  const auto result = engine.execute(g, allocation, nullptr, nullptr, &ft);

  EXPECT_EQ(result.failures_recovered, 2u);  // the task and its consumer
  EXPECT_EQ(result.reschedules, 0u);
  EXPECT_EQ(reschedule_calls.load(), 0);
  EXPECT_EQ(task_error_reports.load(), 2);
  for (const auto& rec : result.records) {
    EXPECT_EQ(rec.attempts, 2) << rec.label;
  }
  EXPECT_DOUBLE_EQ(result.outputs.at(src).as_scalar(), 42.0);
  // The replayed input reached the sink: it counted the payload bytes.
  EXPECT_EQ(result.outputs.at(sink).as_scalar(),
            static_cast<double>(
                tasklib::Payload::of_scalar(42.0).size_bytes()));
}

TEST(FaultRecoveryTest, RetryBudgetExhaustionSurfacesError) {
  tasklib::TaskRegistry registry;
  tasklib::register_builtin_tasks(registry);
  tasklib::LibraryEntry hopeless;
  hopeless.name = "always_fails";
  hopeless.menu = "synthetic";
  hopeless.description = "fails every time";
  hopeless.min_inputs = 0;
  hopeless.max_inputs = 0;
  hopeless.fn = [](const std::vector<tasklib::Payload>&,
                   const tasklib::TaskContext&) -> tasklib::Payload {
    throw common::StateError("permanent fault");
  };
  registry.add(std::move(hopeless));

  afg::FlowGraph g("doomed-app");
  const auto task = g.add_task("always_fails", "doomed");
  sched::AllocationTable allocation("doomed-app");
  sched::AllocationEntry entry;
  entry.task = task;
  entry.task_label = "doomed";
  entry.library_task = "always_fails";
  entry.hosts = {HostId(0)};
  entry.site = SiteId(0);
  allocation.add(entry);

  FaultTolerance ft;
  ft.reschedule = [](const afg::TaskNode&, const std::vector<HostId>&)
      -> std::optional<sched::AllocationEntry> { return std::nullopt; };

  EngineConfig config;
  config.max_attempts = 2;
  config.retry_backoff_s = 0.001;
  ExecutionEngine engine(registry, config);
  try {
    (void)engine.execute(g, allocation, nullptr, nullptr, &ft);
    FAIL() << "expected StateError";
  } catch (const common::StateError& e) {
    EXPECT_NE(std::string(e.what()).find("doomed"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("permanent fault"),
              std::string::npos);
  }
}

// ---------------------------------------------- scheduler reschedule

TEST_F(FaultEnv, RescheduleSkipsExcludedHosts) {
  warm_up(10.0);
  const auto g = sim::make_linear_solver_graph(0.5);
  sched::SiteScheduler scheduler(SiteId(0), directory_);
  const auto allocation = scheduler.schedule(g);

  const auto task = g.entry_tasks().front();
  const HostId original = allocation.entry(task).primary_host();

  const auto replacement =
      scheduler.reschedule(g, allocation, task, {original});
  ASSERT_TRUE(replacement.has_value());
  EXPECT_NE(replacement->primary_host(), original);
  EXPECT_EQ(replacement->task, task);
  EXPECT_GT(replacement->predicted_s, 0.0);

  // Excluding every host of every consulted site leaves nothing.
  std::vector<HostId> all_hosts = testbed_->all_hosts();
  EXPECT_EQ(scheduler.reschedule(g, allocation, task, all_hosts),
            std::nullopt);
}

TEST_F(FaultEnv, ControlManagerRoutesFailureReports) {
  warm_up(10.0);
  const HostId host = testbed_->hosts_in_site(SiteId(0)).front();
  RescheduleRequest request;
  request.app = common::AppId(1);
  request.task = TaskId(0);
  request.host = host;
  request.when = 11.0;
  request.kind = RescheduleRequest::Kind::kHostFailure;
  request.reason = "test failure";

  controls_[0]->report_task_failure(request);
  EXPECT_FALSE(
      repositories_[0]->resources().get(host).dynamic_attrs.alive);
  EXPECT_EQ(controls_[0]->stats().failures_detected, 1u);
  EXPECT_EQ(controls_[0]->stats().reschedule_requests, 1u);

  // Duplicate reports do not double-count the failure.
  controls_[0]->report_task_failure(request);
  EXPECT_EQ(controls_[0]->stats().failures_detected, 1u);
  EXPECT_EQ(controls_[0]->stats().reschedule_requests, 2u);

  // A load-threshold request is counted but never flips liveness.
  const HostId other = testbed_->hosts_in_site(SiteId(0)).back();
  RescheduleRequest load_request = request;
  load_request.host = other;
  load_request.kind = RescheduleRequest::Kind::kLoadThreshold;
  controls_[0]->report_task_failure(load_request);
  EXPECT_TRUE(
      repositories_[0]->resources().get(other).dynamic_attrs.alive);
}

}  // namespace
}  // namespace vdce::rt
