// Integration tests: the full VDCE software development cycle end to
// end — the three phases of Section 1 (development, scheduling,
// execution) driven across module boundaries.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>

#include "common/error.hpp"
#include "editor/editor.hpp"
#include "netsim/testbed.hpp"
#include "runtime/control_manager.hpp"
#include "runtime/engine.hpp"
#include "runtime/sm_directory.hpp"
#include "scheduler/baselines.hpp"
#include "scheduler/site_scheduler.hpp"
#include "sim/dynamic_sim.hpp"
#include "sim/static_sim.hpp"
#include "sim/workloads.hpp"
#include "tasklib/registry.hpp"
#include "viz/comparative.hpp"
#include "viz/gantt.hpp"

namespace vdce {
namespace {

using common::SiteId;

/// Full two-site VDCE with monitoring, scheduling and runtime wired up.
class VdceIntegration : public ::testing::Test {
 protected:
  void SetUp() override {
    testbed_ = std::make_unique<netsim::VirtualTestbed>(
        netsim::make_campus_testbed(2026));
    for (const SiteId site : testbed_->sites()) {
      auto repository = std::make_unique<repo::SiteRepository>(site);
      tasklib::builtin_registry().install_defaults(repository->tasks());
      testbed_->populate_repository(*repository, site);
      repository->users().add_user("hpdc", "nynet", 1, "wan");
      auto forecaster = std::make_unique<predict::LoadForecaster>();
      auto manager =
          std::make_unique<rt::SiteManager>(site, *repository, *forecaster);
      auto control =
          std::make_unique<rt::ControlManager>(*testbed_, site, *manager);
      directory_.add_site(*manager);
      runtimes_.push_back(sim::SiteRuntime{manager.get(), control.get()});
      repositories_.push_back(std::move(repository));
      forecasters_.push_back(std::move(forecaster));
      managers_.push_back(std::move(manager));
      controls_.push_back(std::move(control));
    }
    warm_up(10.0);
  }

  void warm_up(double until) {
    for (double t = 1.0; t <= until; t += 1.0) {
      for (auto& c : controls_) c->tick(t);
    }
  }

  std::unique_ptr<netsim::VirtualTestbed> testbed_;
  std::vector<std::unique_ptr<repo::SiteRepository>> repositories_;
  std::vector<std::unique_ptr<predict::LoadForecaster>> forecasters_;
  std::vector<std::unique_ptr<rt::SiteManager>> managers_;
  std::vector<std::unique_ptr<rt::ControlManager>> controls_;
  std::vector<sim::SiteRuntime> runtimes_;
  rt::SiteManagerDirectory directory_;
};

TEST_F(VdceIntegration, FullDevelopmentCycleWithEditor) {
  // 1. Authenticate.
  EXPECT_NO_THROW((void)managers_[0]->login("hpdc", "nynet"));

  // 2. Develop the Figure 3 app with the Editor.
  const auto& registry = tasklib::builtin_registry();
  editor::ApplicationEditor ed(registry, "lin_solver");
  const auto a = ed.add_task("matrix_generate", "A");
  const auto b = ed.add_task("vector_generate", "b");
  const auto solve = ed.add_task("linear_solve", "solve");
  const auto res = ed.add_task("residual_check", "res");
  ed.set_mode(editor::EditorMode::kLink);
  ed.connect(a, solve);
  ed.connect(b, solve);
  ed.connect(a, res);
  ed.connect(solve, res);
  ed.connect(b, res);
  ed.set_mode(editor::EditorMode::kRun);
  const auto graph = ed.submit();

  // 3. Schedule across sites.
  sched::SiteScheduler scheduler(SiteId(0), directory_);
  const auto allocation = scheduler.schedule(graph);
  EXPECT_EQ(allocation.size(), 4u);

  // 4. Execute with the runtime and check the numerics.
  rt::ExecutionEngine engine(registry);
  const auto result = engine.execute(graph, allocation, managers_[0].get());
  EXPECT_LT(result.outputs.at(res).as_scalar(), 1e-9);
}

TEST_F(VdceIntegration, StoredAfgSurvivesTheWholePipeline) {
  const auto path = "/tmp/vdce_integration.afg";
  {
    const auto graph = sim::make_fourier_graph();
    afg::save_file(graph, path);
  }
  const auto graph = afg::load_file(path);
  sched::SiteScheduler scheduler(SiteId(0), directory_);
  const auto allocation = scheduler.schedule(graph);
  rt::ExecutionEngine engine(tasklib::builtin_registry());
  const auto result = engine.execute(graph, allocation);
  const auto sink = graph.find_by_label("collect");
  EXPECT_GT(result.outputs.at(*sink).as_scalar(), 0.0);
}

TEST_F(VdceIntegration, MonitoringImprovesScheduling) {
  // Make one fast host very busy in truth; before monitoring catches
  // up the scheduler may pick it, afterwards it should avoid it.
  const auto hosts = testbed_->hosts_in_site(SiteId(0));
  const auto victim = hosts.front();
  testbed_->add_load_spike(victim, {12.0, 1000.0, 30.0});

  warm_up(40.0);  // monitors see the spike

  const auto graph = sim::make_c3i_graph();
  sched::SiteScheduler scheduler(SiteId(0), directory_);
  const auto allocation = scheduler.schedule(graph);
  for (const auto& row : allocation.rows()) {
    for (const auto h : row.hosts) {
      EXPECT_NE(h, victim) << "scheduler placed " << row.task_label
                           << " on the overloaded host";
    }
  }
}

TEST_F(VdceIntegration, SchedulerAvoidsDownHosts) {
  const auto hosts = testbed_->hosts_in_site(SiteId(0));
  const auto dead = hosts.front();
  testbed_->fail_host(dead, 12.0, 1e6);
  warm_up(20.0);  // echo rounds mark it down

  const auto graph = sim::make_linear_solver_graph();
  sched::SiteScheduler scheduler(SiteId(0), directory_);
  const auto allocation = scheduler.schedule(graph);
  for (const auto& row : allocation.rows()) {
    for (const auto h : row.hosts) EXPECT_NE(h, dead);
  }
}

TEST_F(VdceIntegration, VdceBeatsRandomPlacementInSimulation) {
  // The headline behavioural claim: prediction-driven scheduling beats
  // load-blind random placement on a heterogeneous loaded testbed.
  // Compare in identical parallel universes, several workloads.
  common::Rng rng(404);
  int vdce_wins = 0;
  constexpr int kTrials = 5;
  for (int trial = 0; trial < kTrials; ++trial) {
    sim::SyntheticGraphParams params;
    params.family = sim::GraphFamily::kLayered;
    params.size = 4;
    params.width = 4;
    const auto graph = sim::make_synthetic_graph(params, rng);

    sched::SiteScheduler vdce_sched(SiteId(0), directory_);
    sched::RandomScheduler random_sched(*repositories_[0],
                                        900 + trial);
    const auto alloc_vdce = vdce_sched.schedule(graph);
    const auto alloc_random = random_sched.schedule(graph);

    netsim::VirtualTestbed universe_a(netsim::make_campus_testbed(2026));
    netsim::VirtualTestbed universe_b(netsim::make_campus_testbed(2026));
    sim::StaticSimulator sim_a(universe_a, repositories_[0]->tasks());
    sim::StaticSimulator sim_b(universe_b, repositories_[0]->tasks());
    const auto res_vdce = sim_a.run(graph, alloc_vdce, 10.0);
    const auto res_random = sim_b.run(graph, alloc_random, 10.0);
    if (res_vdce.makespan_s <= res_random.makespan_s) ++vdce_wins;
  }
  EXPECT_GE(vdce_wins, (kTrials + 1) / 2)
      << "VDCE scheduling lost to random placement too often";
}

TEST_F(VdceIntegration, DynamicSimulationEndToEndWithChaos) {
  common::Rng rng(7);
  sim::SyntheticGraphParams params;
  params.family = sim::GraphFamily::kLayered;
  params.size = 4;
  params.width = 4;
  const auto graph = sim::make_synthetic_graph(params, rng);

  sched::SiteScheduler scheduler(SiteId(0), directory_);
  const auto allocation = scheduler.schedule(graph);

  // Chaos: one failure, one spike.
  const auto involved = allocation.hosts_involved();
  testbed_->fail_host(involved.front(), 12.0, 500.0);
  if (involved.size() > 1) {
    testbed_->add_load_spike(involved[1], {12.0, 200.0, 20.0});
  }

  sim::DynamicSimConfig config;
  config.load_threshold = 8.0;
  sim::DynamicSimulator simulator(*testbed_, repositories_[0]->tasks(),
                                  runtimes_, config);
  const auto result = simulator.run(graph, allocation, 11.0);
  EXPECT_EQ(result.records.size(), graph.task_count());
  EXPECT_GT(result.reschedules, 0u);

  // The Gantt renders sensibly.
  const auto gantt = viz::render_gantt(result);
  EXPECT_NE(gantt.find("makespan"), std::string::npos);
}

TEST_F(VdceIntegration, ComparativeVisualizationAcrossConfigs) {
  // The paper's comparative visualization: the same app on different
  // hardware combinations.
  const auto graph = sim::make_linear_solver_graph();
  viz::ComparativeViz comparison;

  for (const auto& [label, arch] :
       std::vector<std::pair<std::string, std::optional<repo::ArchType>>>{
           {"any", std::nullopt},
           {"sparc-only", repo::ArchType::kSparc},
           {"intel-only", repo::ArchType::kIntel}}) {
    auto constrained = graph;
    if (arch) {
      for (const auto& node : graph.tasks()) {
        auto props = node.props;
        props.preferred_arch = arch;
        constrained.task(node.id).props = props;
      }
    }
    sched::SiteScheduler scheduler(SiteId(0), directory_);
    sched::AllocationTable allocation("x");
    try {
      allocation = scheduler.schedule(constrained);
    } catch (const sched::SchedulingError&) {
      continue;  // some constraint sets are infeasible; skip
    }
    netsim::VirtualTestbed universe(netsim::make_campus_testbed(2026));
    sim::StaticSimulator sims(universe, repositories_[0]->tasks());
    comparison.add_run(label, sims.run(constrained, allocation, 10.0));
  }
  EXPECT_GE(comparison.runs(), 2u);
  EXPECT_FALSE(comparison.best().empty());
}

TEST_F(VdceIntegration, RepositoryPersistsAcrossRestart) {
  const auto dir = std::filesystem::temp_directory_path() / "vdce_site0";
  std::filesystem::remove_all(dir);

  // Run something so there is measured history, then save.
  const auto graph = sim::make_c3i_graph(0.5);
  sched::SiteScheduler scheduler(SiteId(0), directory_);
  const auto allocation = scheduler.schedule(graph);
  rt::ExecutionEngine engine(tasklib::builtin_registry());
  (void)engine.execute(graph, allocation, managers_[0].get());
  repositories_[0]->save(dir);

  // "Restart": a fresh repository loads the same state.
  repo::SiteRepository restarted(SiteId(0));
  restarted.load(dir);
  EXPECT_EQ(restarted.resources().size(),
            repositories_[0]->resources().size());
  EXPECT_FALSE(
      restarted.tasks().get("track_filter").measured_history.empty());
  EXPECT_NO_THROW((void)restarted.users().authenticate("hpdc", "nynet"));
  std::filesystem::remove_all(dir);
}

TEST_F(VdceIntegration, InterSiteCoordinationCounted) {
  const auto graph = sim::make_c3i_graph();
  sched::SiteSchedulerConfig config;
  config.k_nearest = 1;
  sched::SiteScheduler scheduler(SiteId(0), directory_, config);
  (void)scheduler.schedule(graph);
  // Both the local site and one remote answered a multicast.
  EXPECT_EQ(directory_.stats().afg_multicasts, 2u);
  EXPECT_EQ(managers_[0]->stats().host_selection_requests, 1u);
  EXPECT_EQ(managers_[1]->stats().host_selection_requests, 1u);
}

}  // namespace
}  // namespace vdce
