// Chaos and failover tests (DESIGN.md D12): the CheckpointStore, the
// flapping-host circuit breaker, the ChaosSchedule fault harness, and
// the AppSubmissionService's site-level failover loop -- including the
// acceptance property that a run killed mid-flight resumes from its
// checkpoint on surviving resources, re-executes zero completed tasks,
// and produces output bit-identical to a fault-free run.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "netsim/chaos.hpp"
#include "netsim/testbed.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/submission.hpp"
#include "scheduler/qos.hpp"
#include "sim/workloads.hpp"
#include "tasklib/registry.hpp"

namespace vdce::rt {
namespace {

using common::AppId;
using common::HostId;
using common::SiteId;
using common::TaskId;

std::uint64_t counter_value(const char* name) {
  return common::MetricsRegistry::global().counter(name).value();
}

// ------------------------------------------------------ CheckpointStore

TEST(CheckpointStore, CapturesReplaysAndDrops) {
  CheckpointStore store;
  const AppId app(1);
  const tasklib::Payload out = tasklib::Payload::of_scalar(42.0);

  EXPECT_FALSE(store.completed(app, TaskId(0)));
  store.record(app, TaskId(0), 1, HostId(3), out, 0.5);
  EXPECT_TRUE(store.completed(app, TaskId(0)));
  EXPECT_EQ(store.completed_count(app), 1u);

  const auto entry = store.replay(app, TaskId(0));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->attempt, 1);
  EXPECT_EQ(entry->host, HostId(3));
  EXPECT_EQ(entry->compute_s, 0.5);
  EXPECT_EQ(entry->frame.to_vector(), out.to_wire());

  EXPECT_FALSE(store.replay(app, TaskId(9)).has_value());
  EXPECT_FALSE(store.replay(AppId(2), TaskId(0)).has_value());

  store.drop_app(app);
  EXPECT_EQ(store.completed_count(app), 0u);
  store.drop_app(app);  // idempotent

  const auto stats = store.stats();
  EXPECT_EQ(stats.tasks_captured, 1u);
  EXPECT_EQ(stats.frames_replayed, 1u);
  EXPECT_EQ(stats.bytes_captured, 0u);  // dropped
  EXPECT_EQ(stats.apps_dropped, 1u);
}

TEST(CheckpointStore, RecordIsIdempotentPerAttempt) {
  CheckpointStore store;
  const AppId app(1);
  const auto a = tasklib::Payload::of_scalar(1.0);
  const auto b = tasklib::Payload::of_vector({1.0, 2.0, 3.0});

  store.record(app, TaskId(0), 1, HostId(1), a, 0.1);
  store.record(app, TaskId(0), 1, HostId(2), b, 0.2);  // same attempt: kept
  EXPECT_EQ(store.replay(app, TaskId(0))->host, HostId(1));

  store.record(app, TaskId(0), 3, HostId(5), b, 0.3);  // higher: replaces
  const auto entry = store.replay(app, TaskId(0));
  EXPECT_EQ(entry->attempt, 3);
  EXPECT_EQ(entry->host, HostId(5));
  EXPECT_EQ(entry->frame.to_vector(), b.to_wire());

  store.record(app, TaskId(0), 2, HostId(9), a, 0.4);  // lower: ignored
  EXPECT_EQ(store.replay(app, TaskId(0))->attempt, 3);

  const auto stats = store.stats();
  EXPECT_EQ(stats.tasks_captured, 1u);
  EXPECT_EQ(stats.tasks_replaced, 1u);
  EXPECT_EQ(stats.bytes_captured, b.to_wire().size());
}

TEST(CheckpointStore, ReplayBitIdenticalAfterSlabRecycled) {
  // D13 regression: the store holds a refcounted VIEW of the pooled
  // frame, not a copy.  The view must pin its slab, so pool churn in the
  // same size class after the originating Frame is gone cannot corrupt
  // the captured bytes.
  CheckpointStore store;
  auto& pool = dm::FramePool::global();
  const AppId app(7);

  std::vector<std::byte> wire;
  wire.reserve(4096);
  for (int i = 0; i < 4096; ++i) {
    wire.push_back(static_cast<std::byte>((i * 31) & 0xFF));
  }
  store.record(app, TaskId(1), 1, HostId(2), pool.copy_of(wire), 0.1);

  // Churn the captured frame's size class hard; every one of these
  // slabs is allocated, scribbled over, and recycled.
  for (int i = 0; i < 256; ++i) {
    dm::Frame f = pool.allocate(wire.size());
    std::fill_n(f.data(), f.size(), std::byte{0xAA});
  }

  const auto entry = store.replay(app, TaskId(1));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->frame.to_vector(), wire);
  store.drop_app(app);
}

// -------------------------------------------------- HostCircuitBreaker

TEST(HostCircuitBreaker, OpensOnFailureRateAndDecaysClosed) {
  CircuitBreakerConfig config;
  config.enabled = true;
  config.open_threshold = 3.0;
  config.close_threshold = 1.0;
  config.decay_half_life_s = 10.0;
  HostCircuitBreaker breaker(config);

  double now = 0.0;
  breaker.set_clock([&now] { return now; });

  const HostId flappy(4);
  EXPECT_FALSE(breaker.record_failure(flappy));
  EXPECT_FALSE(breaker.record_failure(flappy));
  EXPECT_FALSE(breaker.quarantined(flappy));
  EXPECT_TRUE(breaker.record_failure(flappy));  // 3rd: opens
  EXPECT_TRUE(breaker.quarantined(flappy));
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_EQ(breaker.quarantined_hosts(),
            std::vector<HostId>{flappy});

  // Other hosts are unaffected.
  EXPECT_FALSE(breaker.quarantined(HostId(5)));
  EXPECT_EQ(breaker.score(HostId(5)), 0.0);

  // Two half-lives later the score decays 3 -> 0.75 < close threshold:
  // the breaker closes (hysteresis: it opened at 3, closes below 1).
  now = 20.0;
  EXPECT_FALSE(breaker.quarantined(flappy));
  EXPECT_NEAR(breaker.score(flappy), 0.75, 1e-9);

  // Re-opening requires climbing back over the open threshold.
  EXPECT_FALSE(breaker.record_failure(flappy));
  EXPECT_FALSE(breaker.record_failure(flappy));
  EXPECT_TRUE(breaker.record_failure(flappy));
  EXPECT_EQ(breaker.trips(), 2u);
}

TEST(HostCircuitBreaker, DisabledBreakerNeverQuarantines) {
  HostCircuitBreaker breaker;  // enabled = false
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(breaker.record_failure(HostId(1)));
  }
  EXPECT_FALSE(breaker.quarantined(HostId(1)));
  EXPECT_TRUE(breaker.quarantined_hosts().empty());
  EXPECT_EQ(breaker.trips(), 0u);
}

// --------------------------------------------------------- ChaosSchedule

TEST(ChaosSchedule, GenerationIsDeterministicAndScalesWithIntensity) {
  netsim::VirtualTestbed bed(netsim::make_campus_testbed(13));

  netsim::ChaosScheduleConfig config;
  config.seed = 99;
  config.intensity = 1.0;
  const auto a = netsim::ChaosSchedule::generate(bed, config);
  const auto b = netsim::ChaosSchedule::generate(bed, config);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].start, b.events()[i].start);
    EXPECT_EQ(a.events()[i].length, b.events()[i].length);
    EXPECT_EQ(a.events()[i].host, b.events()[i].host);
    EXPECT_EQ(a.events()[i].site, b.events()[i].site);
  }
  EXPECT_EQ(a.count(netsim::ChaosEventKind::kHostCrash),
            static_cast<std::size_t>(config.max_crashes));
  EXPECT_EQ(a.count(netsim::ChaosEventKind::kSiteOutage),
            static_cast<std::size_t>(config.max_site_outages));

  config.intensity = 0.0;
  EXPECT_TRUE(netsim::ChaosSchedule::generate(bed, config).events().empty());

  config.intensity = 1.0;
  config.seed = 100;
  const auto c = netsim::ChaosSchedule::generate(bed, config);
  bool differs = c.events().size() != a.events().size();
  for (std::size_t i = 0; !differs && i < a.events().size(); ++i) {
    differs = a.events()[i].start != c.events()[i].start ||
              a.events()[i].host != c.events()[i].host;
  }
  EXPECT_TRUE(differs) << "different seeds produced identical schedules";
}

TEST(ChaosSchedule, ProtectedSitesAreNeverTargeted) {
  netsim::VirtualTestbed bed(netsim::make_campus_testbed(13));
  netsim::ChaosScheduleConfig config;
  config.seed = 7;
  config.intensity = 1.0;
  config.protected_sites = {SiteId(0)};
  const auto schedule = netsim::ChaosSchedule::generate(bed, config);
  for (const auto& event : schedule.events()) {
    switch (event.kind) {
      case netsim::ChaosEventKind::kHostCrash:
      case netsim::ChaosEventKind::kGrayHost:
      case netsim::ChaosEventKind::kDeadlineStorm:
        EXPECT_NE(bed.site_of(event.host), SiteId(0));
        break;
      case netsim::ChaosEventKind::kSiteOutage:
      case netsim::ChaosEventKind::kDaemonKill:
        EXPECT_NE(event.site, SiteId(0));
        break;
      case netsim::ChaosEventKind::kPartition:
        break;  // partitions may involve any site (links, not hosts)
    }
  }
}

TEST(ChaosSchedule, AppliedEventsDriveTestbedTruth) {
  netsim::VirtualTestbed bed(netsim::make_campus_testbed(13));
  netsim::ChaosSchedule schedule;

  // Whole-site outage during [10, 20).
  netsim::ChaosEvent outage;
  outage.kind = netsim::ChaosEventKind::kSiteOutage;
  outage.site = SiteId(1);
  outage.start = 10.0;
  outage.length = 10.0;
  schedule.add(outage);

  // Deadline storm on one host of site 0: 2 pulses over [30, 40).
  const HostId stormy = bed.hosts_in_site(SiteId(0)).front();
  netsim::ChaosEvent storm;
  storm.kind = netsim::ChaosEventKind::kDeadlineStorm;
  storm.host = stormy;
  storm.start = 30.0;
  storm.length = 10.0;
  storm.pulses = 2;
  schedule.add(storm);

  schedule.apply(bed);

  for (const HostId host : bed.hosts_in_site(SiteId(1))) {
    EXPECT_TRUE(bed.is_alive(host, 9.9));
    EXPECT_FALSE(bed.is_alive(host, 15.0));
    EXPECT_TRUE(bed.is_alive(host, 20.1));
  }
  // Pulse layout: dead [30, 32.5), alive [32.5, 35), dead [35, 37.5).
  EXPECT_FALSE(bed.is_alive(stormy, 31.0));
  EXPECT_TRUE(bed.is_alive(stormy, 33.0));
  EXPECT_FALSE(bed.is_alive(stormy, 36.0));
  EXPECT_TRUE(bed.is_alive(stormy, 38.0));
}

TEST(ChaosSchedule, PartitionSplitsObserversWithoutKillingHosts) {
  netsim::VirtualTestbed bed(netsim::make_campus_testbed(13));
  netsim::ChaosSchedule schedule;
  netsim::ChaosEvent split;
  split.kind = netsim::ChaosEventKind::kPartition;
  split.site = SiteId(0);
  split.other_site = SiteId(1);
  split.start = 5.0;
  split.length = 10.0;
  schedule.add(split);
  schedule.apply(bed);  // installs nothing: partitions are probe-level

  const HostId far = bed.hosts_in_site(SiteId(1)).front();
  const HostId near = bed.hosts_in_site(SiteId(0)).front();

  // Inside the window: site 0 observers cannot see site 1, both sides
  // stay truly alive, and a site-1 observer still sees its own host.
  EXPECT_TRUE(bed.is_alive(far, 10.0));
  EXPECT_FALSE(schedule.reachable(bed, SiteId(0), far, 10.0));
  EXPECT_TRUE(schedule.reachable(bed, SiteId(0), near, 10.0));
  EXPECT_TRUE(schedule.reachable(bed, SiteId(1), far, 10.0));
  EXPECT_TRUE(schedule.partitioned(SiteId(0), SiteId(1), 10.0));
  EXPECT_TRUE(schedule.partitioned(SiteId(1), SiteId(0), 10.0));

  // Outside the window everything heals.
  EXPECT_TRUE(schedule.reachable(bed, SiteId(0), far, 16.0));
  EXPECT_FALSE(schedule.partitioned(SiteId(0), SiteId(1), 16.0));

  // The probe binds the observer site and the testbed live clock.
  bed.set_live_time(10.0);
  const auto probe = schedule.liveness_probe(bed, SiteId(0));
  EXPECT_FALSE(probe(far));
  EXPECT_TRUE(probe(near));
  bed.set_live_time(16.0);
  EXPECT_TRUE(probe(far));
}

TEST(ChaosSchedule, GrayHostCarriesInjectedLoad) {
  netsim::VirtualTestbed bed(netsim::make_campus_testbed(13));
  const HostId gray = bed.hosts_in_site(SiteId(0)).front();
  netsim::ChaosSchedule schedule;
  netsim::ChaosEvent event;
  event.kind = netsim::ChaosEventKind::kGrayHost;
  event.host = gray;
  event.start = 10.0;
  event.length = 5.0;
  event.extra_load = 6.0;
  schedule.add(event);
  schedule.apply(bed);

  EXPECT_TRUE(bed.is_alive(gray, 12.0));  // answers pings...
  EXPECT_GE(bed.true_load(gray, 12.0), 6.0);  // ...but is buried in load
  EXPECT_LT(bed.true_load(gray, 20.0), 6.0);  // recovers after the window
}

// ------------------------------------------- site-level failover (D12)

/// Shared state of the `chaos_trip` library task: the first
/// `remaining_trips` invocations run `on_trip` (e.g. "kill my site")
/// and throw; later invocations compute a deterministic output.
struct TripState {
  std::atomic<int> remaining_trips{0};
  std::atomic<int> invocations{0};
  std::function<void()> on_trip;
};

/// The builtin library plus `chaos_trip`: passes its inputs through a
/// deterministic checksum -- except that the first N invocations fail
/// after firing a side effect, which is how the tests inject an
/// engine-fatal failure at an exact dataflow position.
tasklib::TaskRegistry trip_registry(std::shared_ptr<TripState> state) {
  tasklib::TaskRegistry registry;
  for (const auto& name : tasklib::builtin_registry().all_tasks()) {
    registry.add(tasklib::builtin_registry().get(name));
  }
  tasklib::LibraryEntry entry;
  entry.name = "chaos_trip";
  entry.menu = "synthetic";
  entry.description = "fails its first N invocations";
  entry.min_inputs = 0;
  entry.max_inputs = 8;
  entry.default_perf.task_name = "chaos_trip";
  entry.default_perf.base_time_s = 0.01;
  entry.default_perf.computation_size = 0.1;
  entry.default_perf.communication_size_mb = 0.001;
  entry.default_perf.memory_req_mb = 0.01;
  entry.fn = [state](const std::vector<tasklib::Payload>& in,
                     const tasklib::TaskContext& ctx) {
    state->invocations.fetch_add(1);
    if (state->remaining_trips.fetch_sub(1) > 0) {
      if (state->on_trip) state->on_trip();
      throw common::StateError("chaos_trip: injected failure");
    }
    state->remaining_trips.fetch_add(1);  // undo the decrement below 0
    double acc = ctx.rng->uniform();
    for (const tasklib::Payload& p : in) {
      acc += static_cast<double>(p.size_bytes() % 1009);
    }
    return tasklib::Payload::of_scalar(acc);
  };
  registry.add(std::move(entry));
  return registry;
}

/// Full multi-site wiring (FaultEnv shape) with a submission service
/// configured for site-level failover.
class FailoverEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    state_ = std::make_shared<TripState>();
    registry_ = trip_registry(state_);
    testbed_ = std::make_unique<netsim::VirtualTestbed>(
        netsim::make_campus_testbed(13));
    for (const SiteId site : testbed_->sites()) {
      auto repository = std::make_unique<repo::SiteRepository>(site);
      registry_.install_defaults(repository->tasks());
      testbed_->populate_repository(*repository, site);
      auto forecaster = std::make_unique<predict::LoadForecaster>();
      directory_.add_site(site, repository.get(), forecaster.get());
      repositories_.push_back(std::move(repository));
      forecasters_.push_back(std::move(forecaster));
    }
  }

  /// A failover-enabled service.  The engine gets no reschedule hook
  /// (the site's Control Manager is presumed lost with the site), so
  /// any failure is engine-fatal and recovery happens at the service
  /// level: quarantine via the testbed health probe, replan, resume
  /// from checkpoint.
  [[nodiscard]] std::unique_ptr<AppSubmissionService> make_service(
      int max_restarts, bool checkpointing, bool paused = false) {
    AppSubmissionConfig config;
    config.slots = 1;
    config.start_paused = paused;
    config.max_restarts = max_restarts;
    config.checkpointing = checkpointing;
    config.restart_backoff_s = 0.001;
    config.engine.max_attempts = 1;  // no in-gang retry: fail fast
    config.engine.recv_timeout_s = 5.0;
    auto service = std::make_unique<AppSubmissionService>(
        SiteId(0), directory_, registry_, config);
    service->set_health_probe(testbed_->liveness_probe());
    service->set_fault_hooks(
        [this](const afg::FlowGraph&, const sched::AllocationTable&) {
          FaultTolerance ft;
          ft.host_alive = testbed_->liveness_probe();
          ft.sleep = [](double) {};  // virtual: restarts cost no wall-clock
          return ft;
        });
    return service;
  }

  [[nodiscard]] static afg::FlowGraph trip_pipeline() {
    afg::FlowGraph g("trip-pipeline");
    const auto a = g.add_task("synth_source", "a");
    const auto b = g.add_task("synth_compute", "b");
    const auto c = g.add_task("chaos_trip", "c");
    const auto d = g.add_task("synth_sink", "d");
    g.add_link(a, b, 0.05);
    g.add_link(b, c, 0.05);
    g.add_link(c, d, 0.05);
    return g;
  }

  [[nodiscard]] static SubmissionRequest request_for(afg::FlowGraph graph,
                                                     std::uint64_t seed) {
    SubmissionRequest request;
    request.graph = std::move(graph);
    request.qos.deadline_s = 1e9;
    request.user = "chaos";
    request.seed = seed;
    return request;
  }

  std::shared_ptr<TripState> state_;
  tasklib::TaskRegistry registry_;
  std::unique_ptr<netsim::VirtualTestbed> testbed_;
  std::vector<std::unique_ptr<repo::SiteRepository>> repositories_;
  std::vector<std::unique_ptr<predict::LoadForecaster>> forecasters_;
  sched::RepositoryDirectory directory_;
};

TEST_F(FailoverEnv, SiteOutageFailoverResumesFromCheckpoint) {
  // THE acceptance scenario: a seeded "chaos" event kills the entire
  // site hosting task c mid-run.  The admitted app must resume on
  // surviving sites from its checkpoint, re-execute zero completed
  // tasks, and produce output bit-identical to a fault-free run.
  const std::uint64_t kSeed = 1234;

  // Fault-free reference outputs first (fresh service, same ticket
  // counter, so the app id -- and with it every task RNG -- matches).
  std::map<TaskId, std::vector<std::byte>> reference;
  {
    state_->remaining_trips.store(0);
    auto service = make_service(/*max_restarts=*/0, /*checkpointing=*/false);
    const AppId app =
        service->submit(request_for(trip_pipeline(), kSeed));
    const auto status = service->wait(app);
    ASSERT_EQ(status.state, SubmissionState::kCompleted) << status.error;
    for (const auto& [task, payload] : status.result.outputs) {
      reference[task] = payload.to_wire();
    }
  }

  const auto captured_before = counter_value("engine.checkpoint.captured");
  const auto replayed_before = counter_value("engine.checkpoint.replayed");
  const auto restarts_before = counter_value("submission.restarts");

  // Chaos run: start paused so the allocation is known before the trip
  // is armed with "kill the site that hosts c".
  state_->remaining_trips.store(1);
  state_->invocations.store(0);  // don't count the reference run
  auto service = make_service(/*max_restarts=*/2, /*checkpointing=*/true,
                              /*paused=*/true);
  const AppId app = service->submit(request_for(trip_pipeline(), kSeed));

  const auto queued = service->status(app);
  ASSERT_TRUE(queued.admission.admitted) << queued.error;
  TaskId task_c{};
  for (const auto& row : queued.allocation.rows()) {
    if (row.library_task == "chaos_trip") task_c = row.task;
  }
  const SiteId doomed = queued.allocation.entry(task_c).site;
  const HostId doomed_host = queued.allocation.entry(task_c).primary_host();

  // Install the outage windows now, while the service is paused and no
  // engine thread reads the testbed (fail_host is not locked); the trip
  // itself only flips the atomic live clock into the outage window.
  netsim::ChaosSchedule chaos;
  netsim::ChaosEvent outage;
  outage.kind = netsim::ChaosEventKind::kSiteOutage;
  outage.site = doomed;
  outage.start = 100.0;
  outage.length = 1e6;
  chaos.add(outage);
  chaos.apply(*testbed_);
  state_->on_trip = [this] { testbed_->set_live_time(200.0); };
  service->resume();

  const auto final_status = service->wait(app);
  ASSERT_EQ(final_status.state, SubmissionState::kCompleted)
      << final_status.error;
  EXPECT_EQ(final_status.restarts, 1u);

  // Resumed on surviving resources: every task that ran in the restart
  // avoids the dead site; a/b stayed replayed from their checkpoint.
  ASSERT_EQ(final_status.result.records.size(), 4u);
  EXPECT_EQ(final_status.result.tasks_replayed, 2u);
  std::size_t replayed_records = 0;
  for (const auto& record : final_status.result.records) {
    if (record.replayed) {
      ++replayed_records;
    } else {
      EXPECT_NE(testbed_->site_of(record.host), doomed)
          << "task re-executed on the dead site";
      EXPECT_TRUE(testbed_->is_alive_now(record.host));
    }
  }
  EXPECT_EQ(replayed_records, 2u);
  EXPECT_NE(final_status.allocation.entry(task_c).primary_host(),
            doomed_host);

  // Zero re-execution: c ran twice (trip + success), a/b/d exactly
  // once; captured covers each task exactly once across both attempts.
  EXPECT_EQ(state_->invocations.load(), 2);
  EXPECT_EQ(counter_value("engine.checkpoint.captured") - captured_before,
            4u);
  EXPECT_EQ(counter_value("engine.checkpoint.replayed") - replayed_before,
            2u);
  EXPECT_EQ(counter_value("submission.restarts") - restarts_before, 1u);

  // Bit-identical to the fault-free run.
  ASSERT_EQ(final_status.result.outputs.size(), reference.size());
  for (const auto& [task, payload] : final_status.result.outputs) {
    EXPECT_EQ(payload.to_wire(), reference.at(task))
        << "task " << task.value() << " output diverged";
  }
}

TEST_F(FailoverEnv, RestartBudgetExhaustionFailsTheSubmission) {
  // More trips than max_restarts: the failover loop gives up and the
  // submission lands in kFailed with the engine's error preserved.
  state_->remaining_trips.store(10);
  auto service = make_service(/*max_restarts=*/2, /*checkpointing=*/true);
  const AppId app = service->submit(request_for(trip_pipeline(), 77));
  const auto status = service->wait(app);
  EXPECT_EQ(status.state, SubmissionState::kFailed);
  EXPECT_EQ(status.restarts, 2u);
  EXPECT_NE(status.error.find("chaos_trip"), std::string::npos);

  const auto stats = service->stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.restarts, 2u);
}

TEST_F(FailoverEnv, FailoverDisabledPreservesSeedBehaviour) {
  // max_restarts = 0 (the default): a fatal engine error fails the
  // submission on the spot, exactly as before this feature existed.
  state_->remaining_trips.store(1);
  auto service = make_service(/*max_restarts=*/0, /*checkpointing=*/false);
  const AppId app = service->submit(request_for(trip_pipeline(), 5));
  const auto status = service->wait(app);
  EXPECT_EQ(status.state, SubmissionState::kFailed);
  EXPECT_EQ(status.restarts, 0u);
}

// --------------------------- bit-identity property (seeds x schedules)

TEST_F(FailoverEnv, CheckpointReplayBitIdenticalAcrossSeedsAndSchedules) {
  // Property: for every (seed, fault schedule), the checkpoint-resumed
  // run's outputs are bit-identical to the uninterrupted run's, and the
  // submission.* / engine.checkpoint.* counters reconcile exactly.
  const std::uint64_t seeds[] = {1, 7, 42};
  // Fault schedules: how many consecutive invocations of the trip task
  // fail (1 = one mid-run failure, 2 = the restarted run is killed
  // again and a second failover resumes it).
  const int schedules[] = {1, 2};

  for (const std::uint64_t seed : seeds) {
    // Uninterrupted reference.
    std::map<TaskId, std::vector<std::byte>> reference;
    {
      state_->remaining_trips.store(0);
      auto service =
          make_service(/*max_restarts=*/0, /*checkpointing=*/false);
      const auto status =
          service->wait(service->submit(request_for(trip_pipeline(), seed)));
      ASSERT_EQ(status.state, SubmissionState::kCompleted) << status.error;
      for (const auto& [task, payload] : status.result.outputs) {
        reference[task] = payload.to_wire();
      }
    }

    for (const int trips : schedules) {
      const auto captured_before =
          counter_value("engine.checkpoint.captured");
      const auto submitted_before = counter_value("submission.submitted");
      const auto completed_before = counter_value("submission.completed");
      const auto restarts_before = counter_value("submission.restarts");

      state_->remaining_trips.store(trips);
      auto service =
          make_service(/*max_restarts=*/3, /*checkpointing=*/true);
      const auto status =
          service->wait(service->submit(request_for(trip_pipeline(), seed)));
      ASSERT_EQ(status.state, SubmissionState::kCompleted)
          << "seed " << seed << " trips " << trips << ": " << status.error;
      EXPECT_EQ(status.restarts, static_cast<std::size_t>(trips));

      for (const auto& [task, payload] : status.result.outputs) {
        EXPECT_EQ(payload.to_wire(), reference.at(task))
            << "seed " << seed << " trips " << trips << " task "
            << task.value();
      }

      // Exact counter reconciliation: each of the 4 tasks is captured
      // exactly once across all attempts (zero re-execution), and the
      // service-level books balance.
      EXPECT_EQ(
          counter_value("engine.checkpoint.captured") - captured_before,
          4u);
      EXPECT_EQ(counter_value("submission.restarts") - restarts_before,
                static_cast<std::uint64_t>(trips));
      EXPECT_EQ(counter_value("submission.submitted") - submitted_before,
                1u);
      EXPECT_EQ(counter_value("submission.completed") - completed_before,
                1u);
      const auto stats = service->stats();
      EXPECT_EQ(stats.submitted,
                stats.admitted + stats.rejected + stats.queued);
      EXPECT_EQ(stats.queued, stats.queued_then_admitted);
      EXPECT_EQ(stats.completed + stats.failed,
                stats.admitted + stats.queued_then_admitted);
    }
  }
}

// ------------------------------------------- circuit breaker x service

TEST_F(FailoverEnv, BreakerTripBumpsStatsAndInvalidatesPredictions) {
  AppSubmissionConfig config;
  config.breaker.enabled = true;
  config.breaker.open_threshold = 3.0;
  AppSubmissionService service(SiteId(0), directory_, registry_, config);
  for (auto& forecaster : forecasters_) {
    service.add_forecaster(forecaster.get());
  }

  double now = 0.0;
  service.breaker().set_clock([&now] { return now; });

  const HostId flappy = testbed_->all_hosts().front();
  const auto version_before = forecasters_.front()->version();
  const auto trips_before = counter_value("submission.breaker_trips");

  service.breaker().record_failure(flappy);
  service.breaker().record_failure(flappy);
  EXPECT_EQ(service.stats().breaker_trips, 0u);
  service.breaker().record_failure(flappy);  // opens

  EXPECT_TRUE(service.breaker().quarantined(flappy));
  EXPECT_EQ(service.stats().breaker_trips, 1u);
  EXPECT_EQ(counter_value("submission.breaker_trips") - trips_before, 1u);
  // The open transition version-bumped the forecaster (forget(host)),
  // so prediction-cache entries computed before the flap are stale.
  EXPECT_GT(forecasters_.front()->version(), version_before);
}

TEST_F(FailoverEnv, QuarantinedHostIsExcludedByWrappedLiveness) {
  // The service wraps factory hooks so a quarantined host reads dead
  // even when the raw probe says alive: the engine's fault guard and
  // recovery then steer around the flapping machine.
  AppSubmissionConfig config;
  config.breaker.enabled = true;
  config.breaker.open_threshold = 1.0;   // first failure quarantines
  config.breaker.close_threshold = 0.1;  // ...and it stays open a while
  config.max_restarts = 1;
  config.engine.max_attempts = 1;
  AppSubmissionService service(SiteId(0), directory_, registry_, config);
  service.set_health_probe(
      [this](HostId host) { return testbed_->is_alive_now(host); });
  service.set_fault_hooks(
      [this](const afg::FlowGraph&, const sched::AllocationTable&) {
        FaultTolerance ft;
        ft.host_alive = testbed_->liveness_probe();
        ft.sleep = [](double) {};
        return ft;
      });

  const HostId flappy = testbed_->all_hosts().front();
  service.breaker().record_failure(flappy);
  ASSERT_TRUE(service.breaker().quarantined(flappy));

  // A healthy app run completes while steering clear of the
  // quarantined host (host_alive reads false for it pre-compute).
  state_->remaining_trips.store(0);
  SubmissionRequest request;
  request.graph = trip_pipeline();
  request.qos.deadline_s = 1e9;
  request.seed = 3;
  const auto status = service.wait(service.submit(std::move(request)));
  ASSERT_EQ(status.state, SubmissionState::kCompleted) << status.error;
  for (const auto& record : status.result.records) {
    EXPECT_NE(record.host, flappy);
  }
}

}  // namespace
}  // namespace vdce::rt
