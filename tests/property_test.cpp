// Cross-module property tests: randomized round-trips and invariants
// that hold for arbitrary (seeded) inputs.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <map>
#include <thread>

#include "afg/levels.hpp"
#include "afg/serialize.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "datamgr/frame.hpp"
#include "datamgr/ring_channel.hpp"
#include "repository/repository.hpp"
#include "scheduler/qos.hpp"
#include "scheduler/site_scheduler.hpp"
#include "sim/static_sim.hpp"
#include "sim/workloads.hpp"
#include "tasklib/registry.hpp"
#include "viz/trace.hpp"

namespace vdce {
namespace {

using common::HostId;
using common::Rng;
using common::SiteId;

// ----------------------------------------------- repository persistence

/// Builds a randomized repository, persists it, reloads it, and checks
/// every record survives byte-exact.
TEST(PersistenceProperty, RandomRepositoryRoundTrip) {
  Rng rng(606);
  const auto dir =
      std::filesystem::temp_directory_path() / "vdce_prop_repo";
  for (int trial = 0; trial < 5; ++trial) {
    std::filesystem::remove_all(dir);
    repo::SiteRepository original{SiteId(trial)};

    // Users.
    const auto nusers = 1 + rng.uniform_int(5);
    for (std::uint64_t u = 0; u < nusers; ++u) {
      original.users().add_user(
          "user" + std::to_string(u), "pw" + std::to_string(rng() % 1000),
          static_cast<int>(rng.uniform_int(10)),
          rng.bernoulli(0.5) ? "wan" : "local");
    }
    // Hosts.
    const auto nhosts = 1 + rng.uniform_int(8);
    std::vector<HostId> hosts;
    for (std::uint64_t h = 0; h < nhosts; ++h) {
      repo::HostStaticAttrs attrs;
      attrs.host_name = "host" + std::to_string(h);
      attrs.ip_address = "10.0.0." + std::to_string(h);
      attrs.arch = static_cast<repo::ArchType>(rng.uniform_int(5));
      attrs.os = static_cast<repo::OsType>(rng.uniform_int(5));
      attrs.total_memory_mb = rng.uniform(32.0, 512.0);
      attrs.site = SiteId(static_cast<std::uint32_t>(rng.uniform_int(3)));
      attrs.group =
          common::GroupId(static_cast<std::uint32_t>(rng.uniform_int(3)));
      const auto id = original.resources().register_host(attrs);
      hosts.push_back(id);
      repo::HostDynamicAttrs dyn;
      dyn.cpu_load = rng.uniform(0.0, 5.0);
      dyn.available_memory_mb = rng.uniform(0.0, attrs.total_memory_mb);
      dyn.alive = rng.bernoulli(0.9);
      dyn.last_update = rng.uniform(0.0, 100.0);
      original.resources().update_dynamic(id, dyn);
    }
    // Tasks + weights + constraints.
    const auto ntasks = 1 + rng.uniform_int(6);
    for (std::uint64_t t = 0; t < ntasks; ++t) {
      repo::TaskPerformanceRecord rec;
      rec.task_name = "task" + std::to_string(t);
      rec.base_time_s = rng.uniform(0.01, 5.0);
      rec.computation_size = rng.uniform(0.1, 20.0);
      rec.communication_size_mb = rng.uniform(0.001, 10.0);
      rec.memory_req_mb = rng.uniform(1.0, 128.0);
      const auto nhist = rng.uniform_int(5);
      for (std::uint64_t i = 0; i < nhist; ++i) {
        rec.measured_history.push_back(rng.uniform(0.01, 10.0));
      }
      original.tasks().register_task(rec);
      for (const auto h : hosts) {
        if (rng.bernoulli(0.7)) {
          original.tasks().set_power_weight(rec.task_name, h,
                                            rng.uniform(0.1, 4.0));
        }
        if (rng.bernoulli(0.8)) {
          original.constraints().set_location(
              rec.task_name, h, "/bin/" + rec.task_name);
        }
      }
    }

    original.save(dir);
    repo::SiteRepository loaded{SiteId(trial)};
    loaded.load(dir);

    // Users authenticate with their original passwords.
    for (const auto& acct : original.users().all()) {
      const auto reloaded = loaded.users().find(acct.user_name);
      ASSERT_TRUE(reloaded.has_value());
      EXPECT_EQ(reloaded->password_hash, acct.password_hash);
      EXPECT_EQ(reloaded->priority, acct.priority);
      EXPECT_EQ(reloaded->access_domain, acct.access_domain);
    }
    // Hosts byte-identical.
    for (const auto& rec : original.resources().all_hosts()) {
      const auto r = loaded.resources().get(rec.host);
      EXPECT_EQ(r.static_attrs.host_name, rec.static_attrs.host_name);
      EXPECT_EQ(r.static_attrs.arch, rec.static_attrs.arch);
      EXPECT_DOUBLE_EQ(r.dynamic_attrs.cpu_load,
                       rec.dynamic_attrs.cpu_load);
      EXPECT_EQ(r.dynamic_attrs.alive, rec.dynamic_attrs.alive);
      EXPECT_DOUBLE_EQ(r.dynamic_attrs.last_update,
                       rec.dynamic_attrs.last_update);
    }
    // Tasks, weights, constraints.
    for (const auto& name : original.tasks().task_names()) {
      const auto a = original.tasks().get(name);
      const auto b = loaded.tasks().get(name);
      EXPECT_DOUBLE_EQ(a.base_time_s, b.base_time_s);
      EXPECT_EQ(a.measured_history, b.measured_history);
      for (const auto h : hosts) {
        EXPECT_DOUBLE_EQ(
            original.tasks().power_weight(name, h, repo::ArchType::kSparc),
            loaded.tasks().power_weight(name, h, repo::ArchType::kSparc));
        EXPECT_EQ(original.constraints().location(name, h),
                  loaded.constraints().location(name, h));
      }
    }
  }
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------- payload fuzzing

/// Truncating a valid payload wire image at any byte never crashes: it
/// either throws ParseError on decode or fails the type check.
TEST(PayloadProperty, TruncationAlwaysThrowsCleanly) {
  Rng rng(707);
  const auto m = tasklib::Matrix::random(5, 7, rng);
  const auto payload = tasklib::Payload::of_matrix(m);
  const auto wire = payload.to_wire();
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    std::vector<std::byte> truncated(wire.begin(),
                                     wire.begin() +
                                         static_cast<std::ptrdiff_t>(cut));
    try {
      const auto decoded = tasklib::Payload::from_wire(truncated);
      (void)decoded.as_matrix();
      // Only the complete image may decode successfully.
      FAIL() << "truncated payload decoded at cut " << cut;
    } catch (const common::ParseError&) {
      // expected
    } catch (const common::StateError&) {
      // type-tag survived but body truncated to another type: also fine
    }
  }
  // The untruncated image decodes.
  EXPECT_EQ(tasklib::Payload::from_wire(wire).as_matrix(), m);
}

/// Corrupting the AFG text at a random line yields ParseError, never a
/// crash or silent acceptance of garbage directives.
TEST(AfgProperty, GarbageLinesRejected) {
  Rng rng(808);
  const auto graph = sim::make_linear_solver_graph();
  const auto text = afg::to_text(graph);
  const char* garbage[] = {"node x y", "task", "link a", "app", "= = ="};
  for (const char* bad : garbage) {
    EXPECT_THROW((void)afg::from_text(text + bad + "\n"),
                 common::ParseError)
        << bad;
  }
}

// -------------------------------------------- schedule/simulate invariants

class ScheduleSimProperty : public ::testing::TestWithParam<int> {};

/// For arbitrary graphs: the schedule covers all tasks, the simulated
/// run respects precedence and host serialisation, and the QoS
/// estimator is a finite positive number.
TEST_P(ScheduleSimProperty, EndToEndInvariants) {
  const int seed = GetParam();
  Rng rng(seed);

  netsim::RandomTestbedParams tb_params;
  tb_params.num_sites = 2;
  tb_params.groups_per_site = 2;
  tb_params.hosts_per_group = 3;
  const auto config = netsim::make_random_testbed(tb_params, 1000 + seed);
  netsim::VirtualTestbed testbed(config);
  repo::SiteRepository repository(SiteId(0));
  tasklib::builtin_registry().install_defaults(repository.tasks());
  testbed.populate_repository(repository, SiteId(0));
  sched::RepositoryDirectory directory;
  directory.add_site(SiteId(0), &repository);
  repo::SiteRepository repository1(SiteId(1));
  tasklib::builtin_registry().install_defaults(repository1.tasks());
  testbed.populate_repository(repository1, SiteId(1));
  directory.add_site(SiteId(1), &repository1);

  sim::SyntheticGraphParams params;
  params.family = static_cast<sim::GraphFamily>(seed % 5);
  params.size = 3 + seed % 4;
  params.width = 3;
  const auto graph = sim::make_synthetic_graph(params, rng);

  sched::SiteSchedulerConfig sched_config;
  sched_config.queue_aware = (seed % 2) == 0;
  sched::SiteScheduler scheduler(SiteId(0), directory, sched_config);
  const auto table = scheduler.schedule(graph);
  ASSERT_EQ(table.size(), graph.task_count());

  // QoS estimate is sane.
  const double estimate = sched::predicted_makespan(graph, table, directory);
  EXPECT_GT(estimate, 0.0);
  EXPECT_LT(estimate, 1e6);

  // Simulated execution invariants.
  sim::StaticSimulator simulator(testbed, repository.tasks());
  const auto result = simulator.run(graph, table, 5.0);
  ASSERT_EQ(result.records.size(), graph.task_count());
  for (const auto& link : graph.links()) {
    EXPECT_GE(result.record(link.to).start + 1e-9,
              result.record(link.from).finish);
  }
  for (const auto& a : result.records) {
    EXPECT_GE(a.start + 1e-12, a.data_ready);
    EXPECT_GT(a.exec_s, 0.0);
    for (const auto& b : result.records) {
      if (a.task == b.task || a.host != b.host) continue;
      EXPECT_TRUE(a.finish <= b.start + 1e-9 || b.finish <= a.start + 1e-9);
    }
  }

  // The trace exporter produces parseable-looking JSON with one event
  // per task at minimum.
  const auto trace = viz::to_chrome_trace(result);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  for (const auto& r : result.records) {
    EXPECT_NE(trace.find("\"" + r.label + "\""), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleSimProperty,
                         ::testing::Range(0, 10));

// ------------------------------------------------------ QoS estimator

/// Randomized invariants of the QoS admission math over seeded graphs:
/// the makespan estimate is monotone in the per-task predicted times
/// and in the committed host occupancy, never undercuts the
/// critical-path lower bound, and check_qos's slack sign always agrees
/// with its admitted flag.
class QosMathProperty : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    const int seed = GetParam();
    testbed_ = std::make_unique<netsim::VirtualTestbed>(
        netsim::make_campus_testbed(13 + seed));
    repository_ = std::make_unique<repo::SiteRepository>(SiteId(0));
    tasklib::builtin_registry().install_defaults(repository_->tasks());
    testbed_->populate_repository(*repository_, SiteId(0));
    directory_.add_site(SiteId(0), repository_.get());
  }

  std::unique_ptr<netsim::VirtualTestbed> testbed_;
  std::unique_ptr<repo::SiteRepository> repository_;
  sched::RepositoryDirectory directory_;
};

TEST_P(QosMathProperty, MakespanInvariants) {
  const int seed = GetParam();
  Rng rng(9000 + seed);
  sim::SyntheticGraphParams params;
  params.family = static_cast<sim::GraphFamily>(seed % 5);
  params.size = 3 + seed % 4;
  params.width = 3;
  const auto graph = sim::make_synthetic_graph(params, rng);

  sched::SiteSchedulerConfig config;
  config.queue_aware = (seed % 2) == 0;
  sched::SiteScheduler scheduler(SiteId(0), directory_, config);
  const auto table = scheduler.schedule(graph);

  const double base =
      sched::predicted_makespan(graph, table, directory_);
  ASSERT_GT(base, 0.0);

  // The empty-occupancy overload is exactly the plain estimator.
  EXPECT_DOUBLE_EQ(sched::predicted_makespan(graph, table, directory_,
                                             sched::HostOccupancy{}),
                   base);

  // Monotone in the per-task predicted times: scaling every prediction
  // up can only push the estimate up, scaling down only down.
  for (const double factor : {1.5, 3.0}) {
    auto scaled = table;
    for (auto row : table.rows()) {
      row.predicted_s *= factor;
      scaled.replace(row);
    }
    EXPECT_GE(sched::predicted_makespan(graph, scaled, directory_),
              base - 1e-12)
        << "factor " << factor;
  }
  {
    auto shrunk = table;
    for (auto row : table.rows()) {
      row.predicted_s *= 0.25;
      shrunk.replace(row);
    }
    EXPECT_LE(sched::predicted_makespan(graph, shrunk, directory_),
              base + 1e-12);
  }

  // Never below the critical-path lower bound under the allocation's
  // own predicted times (zero transfer, infinite hosts).
  const auto levels = afg::compute_levels(
      graph, [&table](const afg::TaskNode& node) {
        return table.entry(node.id).predicted_s;
      });
  EXPECT_GE(base + 1e-9, afg::critical_path_length(graph, levels));

  // Monotone in committed occupancy: busier hosts can only delay the
  // estimate, and more occupancy delays it at least as much.
  sched::HostOccupancy light, heavy;
  for (const HostId host : table.hosts_involved()) {
    const double committed = rng.uniform(0.0, 2.0 * base);
    light[host] = committed;
    heavy[host] = committed * rng.uniform(1.0, 3.0);
  }
  const double with_light =
      sched::predicted_makespan(graph, table, directory_, light);
  const double with_heavy =
      sched::predicted_makespan(graph, table, directory_, heavy);
  EXPECT_GE(with_light + 1e-12, base);
  EXPECT_GE(with_heavy + 1e-12, with_light);
}

TEST_P(QosMathProperty, SlackSignMatchesAdmission) {
  const int seed = GetParam();
  Rng rng(11000 + seed);
  sim::SyntheticGraphParams params;
  params.family = static_cast<sim::GraphFamily>((seed + 2) % 5);
  params.size = 3 + seed % 3;
  const auto graph = sim::make_synthetic_graph(params, rng);

  sched::SiteScheduler scheduler(SiteId(0), directory_);
  const auto table = scheduler.schedule(graph);
  const double base =
      sched::predicted_makespan(graph, table, directory_);

  sched::HostOccupancy busy;
  for (const HostId host : table.hosts_involved()) {
    if (rng.bernoulli(0.5)) busy[host] = rng.uniform(0.0, base);
  }

  for (int trial = 0; trial < 20; ++trial) {
    sched::QosRequirement qos;
    qos.deadline_s = rng.uniform(0.0, 3.0 * base);
    const auto plain =
        sched::check_qos(graph, table, directory_, qos);
    const auto residual =
        sched::check_qos(graph, table, directory_, qos, busy);
    for (const auto& admission : {plain, residual}) {
      EXPECT_EQ(admission.admitted, admission.slack_s >= 0.0);
      EXPECT_DOUBLE_EQ(
          admission.slack_s,
          qos.deadline_s - admission.predicted_makespan_s);
    }
    // Residual capacity never makes an estimate more optimistic, so a
    // residual admit implies a plain admit.
    EXPECT_GE(residual.predicted_makespan_s + 1e-12,
              plain.predicted_makespan_s);
    if (residual.admitted) EXPECT_TRUE(plain.admitted);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QosMathProperty, ::testing::Range(0, 8));

// --------------------------------------------- ring channel laws (D16)

/// Encodes (producer, seq) into a pooled 16-byte frame.
dm::FrameView tagged_frame(std::uint64_t producer, std::uint64_t seq) {
  std::array<std::byte, 16> raw;
  std::memcpy(raw.data(), &producer, 8);
  std::memcpy(raw.data() + 8, &seq, 8);
  return dm::FramePool::global().copy_of(raw);
}

std::pair<std::uint64_t, std::uint64_t> decode_tag(const dm::FrameView& fv) {
  std::uint64_t producer = 0, seq = 0;
  std::memcpy(&producer, fv.data(), 8);
  std::memcpy(&seq, fv.data() + 8, 8);
  return {producer, seq};
}

/// The RingChannel contract under N racing producers and M racing
/// consumers: every pushed frame pops exactly once (zero loss, no
/// duplication), each consumer observes every producer's frames in push
/// order (FIFO), occupancy never exceeds capacity, and once every
/// producer retires all consumers see a clean EOS.
class RingChannelProperty : public ::testing::TestWithParam<int> {};

TEST_P(RingChannelProperty, FifoZeroLossCleanEosUnderRace) {
  Rng rng(9100 + GetParam());
  const std::size_t capacity = 1 + rng.uniform_int(7);
  const std::size_t producers = 1 + rng.uniform_int(3);
  const std::size_t consumers = 1 + rng.uniform_int(3);
  const std::uint64_t per_producer = 100 + rng.uniform_int(200);

  dm::RingChannel ring(capacity);
  for (std::size_t p = 1; p < producers; ++p) ring.add_producer();

  std::vector<std::jthread> threads;
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&ring, p, per_producer] {
      for (std::uint64_t seq = 0; seq < per_producer; ++seq) {
        ring.push(tagged_frame(p, seq));
      }
      ring.close_send();
    });
  }

  std::mutex mu;
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> seen(
      consumers);
  std::atomic<std::size_t> clean_eos{0};
  for (std::size_t c = 0; c < consumers; ++c) {
    threads.emplace_back([&, c] {
      std::vector<std::pair<std::uint64_t, std::uint64_t>> local;
      while (auto fv = ring.pop()) local.push_back(decode_tag(*fv));
      clean_eos.fetch_add(1);  // nullopt, not TransportError
      std::lock_guard lk(mu);
      seen[c] = std::move(local);
    });
  }
  threads.clear();  // join everyone

  // Clean EOS for every consumer, with the ring fully drained.
  EXPECT_EQ(clean_eos.load(), consumers);
  EXPECT_TRUE(ring.eos());
  EXPECT_EQ(ring.size(), 0u);

  // Zero loss, zero duplication: every (producer, seq) exactly once.
  std::map<std::pair<std::uint64_t, std::uint64_t>, int> counts;
  for (const auto& v : seen) {
    for (const auto& tag : v) ++counts[tag];
  }
  EXPECT_EQ(counts.size(), producers * per_producer);
  for (const auto& [tag, n] : counts) {
    EXPECT_EQ(n, 1) << "frame (" << tag.first << ", " << tag.second
                    << ") seen " << n << " times";
  }

  // FIFO: within one consumer, each producer's frames arrive in push
  // order (global pop order respects commit order, so any subsequence
  // is ordered too).
  for (const auto& v : seen) {
    std::map<std::uint64_t, std::uint64_t> next_seq;
    for (const auto& [p, seq] : v) {
      auto it = next_seq.find(p);
      if (it != next_seq.end()) {
        EXPECT_GT(seq, it->second) << "producer " << p << " reordered";
      }
      next_seq[p] = seq;
    }
  }

  // Capacity is a hard bound and the counters balance.
  const dm::RingChannelStats stats = ring.stats();
  EXPECT_LE(stats.high_water, capacity);
  EXPECT_EQ(stats.frames_pushed, producers * per_producer);
  EXPECT_EQ(stats.frames_popped, producers * per_producer);
  EXPECT_EQ(stats.frames_dropped, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RingChannelProperty, ::testing::Range(0, 6));

/// Churn case for the TSan job: producers and consumers race a
/// mid-stream abort().  Whatever the interleaving, nothing is counted
/// twice (popped + dropped never exceeds pushed), FIFO holds for what
/// did pop, and every thread returns promptly via TransportError.
TEST(RingChannelChurn, AbortRacingProducersAndConsumers) {
  for (int trial = 0; trial < 8; ++trial) {
    Rng rng(4400 + trial);
    dm::RingChannel ring(1 + rng.uniform_int(4));
    constexpr std::size_t kProducers = 2;
    constexpr std::size_t kConsumers = 2;
    for (std::size_t p = 1; p < kProducers; ++p) ring.add_producer();

    std::mutex mu;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> popped;
    {
      std::vector<std::jthread> threads;
      for (std::size_t p = 0; p < kProducers; ++p) {
        threads.emplace_back([&ring, p] {
          try {
            for (std::uint64_t seq = 0;; ++seq) {
              ring.push(tagged_frame(p, seq));
            }
          } catch (const common::TransportError&) {
          }
        });
      }
      for (std::size_t c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&] {
          std::vector<std::pair<std::uint64_t, std::uint64_t>> local;
          try {
            while (auto fv = ring.pop()) local.push_back(decode_tag(*fv));
          } catch (const common::TransportError&) {
          }
          std::lock_guard lk(mu);
          popped.insert(popped.end(), local.begin(), local.end());
        });
      }
      std::this_thread::sleep_for(
          std::chrono::microseconds(rng.uniform_int(2000)));
      ring.abort();
    }

    const dm::RingChannelStats stats = ring.stats();
    EXPECT_TRUE(ring.aborted());
    EXPECT_LE(popped.size(), stats.frames_pushed);
    EXPECT_LE(stats.frames_popped + stats.frames_dropped,
              stats.frames_pushed);
    std::map<std::pair<std::uint64_t, std::uint64_t>, int> counts;
    for (const auto& tag : popped) ++counts[tag];
    for (const auto& [tag, n] : counts) EXPECT_EQ(n, 1);
  }
}

// --------------------------------------------------------- trace export

TEST(TraceExport, RealRunTrace) {
  rt::RunResult run;
  rt::TaskRunRecord rec;
  rec.task = common::TaskId(0);
  rec.label = "alpha \"quoted\"";
  rec.library_task = "synth_source";
  rec.host = HostId(2);
  rec.turnaround_s = 0.5;
  rec.compute_s = 0.4;
  run.records.push_back(rec);
  run.makespan_s = 0.5;
  const auto trace = viz::to_chrome_trace(run);
  // Quotes escaped, fields present.
  EXPECT_NE(trace.find("alpha \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(trace.find("\"tid\": 2"), std::string::npos);

  const auto path = "/tmp/vdce_trace_test.json";
  viz::write_trace(trace, path);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_THROW(viz::write_trace(trace, "/nonexistent_dir/x.json"),
               common::NotFoundError);
}

}  // namespace
}  // namespace vdce
