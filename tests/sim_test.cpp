// Tests for the simulators (static + dynamic) and workload generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/error.hpp"
#include "netsim/testbed.hpp"
#include "runtime/control_manager.hpp"
#include "scheduler/site_scheduler.hpp"
#include "scheduler/directory.hpp"
#include "sim/dynamic_sim.hpp"
#include "sim/static_sim.hpp"
#include "sim/workloads.hpp"
#include "tasklib/registry.hpp"

namespace vdce::sim {
namespace {

using common::HostId;
using common::SiteId;
using common::TaskId;

// ----------------------------------------------------------- workloads

class FamilySweep : public ::testing::TestWithParam<GraphFamily> {};

TEST_P(FamilySweep, ProducesValidGraphs) {
  common::Rng rng(1);
  for (std::size_t size : {2u, 4u, 8u}) {
    SyntheticGraphParams params;
    params.family = GetParam();
    params.size = size;
    params.width = 4;
    const auto g = make_synthetic_graph(params, rng);
    EXPECT_NO_THROW(g.validate());
    EXPECT_GE(g.task_count(), 2u);
    // Arity constraints of the library hold everywhere.
    for (const auto& node : g.tasks()) {
      const auto& entry = tasklib::builtin_registry().get(node.library_task);
      const auto indegree =
          static_cast<unsigned>(g.parents(node.id).size());
      EXPECT_GE(indegree, entry.min_inputs) << node.label;
      EXPECT_LE(indegree, entry.max_inputs) << node.label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, FamilySweep,
                         ::testing::Values(GraphFamily::kChain,
                                           GraphFamily::kForkJoin,
                                           GraphFamily::kLayered,
                                           GraphFamily::kInTree,
                                           GraphFamily::kIndependent));

TEST(Workloads, DeterministicForRngState) {
  common::Rng a(9), b(9);
  SyntheticGraphParams params;
  const auto g1 = make_synthetic_graph(params, a);
  const auto g2 = make_synthetic_graph(params, b);
  EXPECT_EQ(g1.task_count(), g2.task_count());
  EXPECT_EQ(g1.link_count(), g2.link_count());
  for (const auto& node : g1.tasks()) {
    EXPECT_EQ(g2.task(node.id).props, node.props);
  }
}

TEST(Workloads, ConcreteGraphsValid) {
  EXPECT_NO_THROW(make_linear_solver_graph().validate());
  EXPECT_NO_THROW(make_c3i_graph().validate());
  EXPECT_NO_THROW(make_fourier_graph().validate());
  EXPECT_EQ(make_linear_solver_graph().task_count(), 11u);
  EXPECT_EQ(make_c3i_graph().task_count(), 5u);
}

// ------------------------------------------------------------ static sim

class StaticSimEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    testbed_ = std::make_unique<netsim::VirtualTestbed>(
        netsim::make_campus_testbed(21));
    repository_ = std::make_unique<repo::SiteRepository>(SiteId(0));
    tasklib::builtin_registry().install_defaults(repository_->tasks());
    testbed_->populate_repository(*repository_, SiteId(0));
    directory_.add_site(SiteId(0), repository_.get());
  }

  sched::AllocationTable schedule(const afg::FlowGraph& graph) {
    sched::SiteScheduler scheduler(SiteId(0), directory_);
    return scheduler.schedule(graph);
  }

  std::unique_ptr<netsim::VirtualTestbed> testbed_;
  std::unique_ptr<repo::SiteRepository> repository_;
  sched::RepositoryDirectory directory_;
};

TEST_F(StaticSimEnv, RecordsEveryTask) {
  const auto graph = make_linear_solver_graph();
  const auto allocation = schedule(graph);
  StaticSimulator sim(*testbed_, repository_->tasks());
  const auto result = sim.run(graph, allocation);
  EXPECT_EQ(result.records.size(), graph.task_count());
  EXPECT_GT(result.makespan_s, 0.0);
  EXPECT_EQ(result.reschedules, 0u);
}

TEST_F(StaticSimEnv, PrecedenceRespected) {
  const auto graph = make_linear_solver_graph();
  const auto allocation = schedule(graph);
  StaticSimulator sim(*testbed_, repository_->tasks());
  const auto result = sim.run(graph, allocation);
  for (const auto& link : graph.links()) {
    EXPECT_GE(result.record(link.to).start + 1e-9,
              result.record(link.from).finish);
  }
}

TEST_F(StaticSimEnv, HostSerialisationRespected) {
  const auto graph = make_linear_solver_graph();
  const auto allocation = schedule(graph);
  StaticSimulator sim(*testbed_, repository_->tasks());
  const auto result = sim.run(graph, allocation);
  // No two tasks on the same host overlap.
  for (const auto& a : result.records) {
    for (const auto& b : result.records) {
      if (a.task == b.task || a.host != b.host) continue;
      const bool disjoint =
          a.finish <= b.start + 1e-9 || b.finish <= a.start + 1e-9;
      EXPECT_TRUE(disjoint) << a.label << " overlaps " << b.label;
    }
  }
}

TEST_F(StaticSimEnv, TransferDelaysChildStart) {
  // Two-node chain with a huge transfer: the child's data_ready must
  // reflect the WAN/LAN cost when hosts differ.
  afg::FlowGraph g("xfer");
  const auto a = g.add_task("synth_source", "a");
  const auto b = g.add_task("synth_sink", "b");
  g.add_link(a, b, 500.0);  // 500 MB

  // Manual allocation on two different hosts.
  const auto hosts = testbed_->all_hosts();
  sched::AllocationTable table("xfer");
  sched::AllocationEntry ea;
  ea.task = a;
  ea.task_label = "a";
  ea.library_task = "synth_source";
  ea.hosts = {hosts[0]};
  ea.site = testbed_->site_of(hosts[0]);
  table.add(ea);
  sched::AllocationEntry eb = ea;
  eb.task = b;
  eb.task_label = "b";
  eb.library_task = "synth_sink";
  eb.hosts = {hosts[hosts.size() - 1]};
  eb.site = testbed_->site_of(hosts[hosts.size() - 1]);
  table.add(eb);

  StaticSimulator sim(*testbed_, repository_->tasks());
  const auto result = sim.run(g, table);
  const double expected_transfer =
      testbed_->transfer_time(hosts[0], hosts[hosts.size() - 1], 500.0);
  EXPECT_NEAR(result.record(b).data_ready,
              result.record(a).finish + expected_transfer, 1e-9);
}

TEST_F(StaticSimEnv, MakespanMatchesLatestFinish) {
  const auto graph = make_c3i_graph();
  const auto allocation = schedule(graph);
  StaticSimulator sim(*testbed_, repository_->tasks());
  const auto result = sim.run(graph, allocation, /*start_at=*/5.0);
  double latest = 0.0;
  for (const auto& r : result.records) latest = std::max(latest, r.finish);
  EXPECT_DOUBLE_EQ(result.makespan_s, latest - 5.0);
}

TEST_F(StaticSimEnv, DeterministicAcrossIdenticalUniverses) {
  const auto graph = make_linear_solver_graph();
  const auto allocation = schedule(graph);
  netsim::VirtualTestbed other(netsim::make_campus_testbed(21));
  StaticSimulator sim_a(*testbed_, repository_->tasks());
  StaticSimulator sim_b(other, repository_->tasks());
  const auto ra = sim_a.run(graph, allocation);
  const auto rb = sim_b.run(graph, allocation);
  EXPECT_DOUBLE_EQ(ra.makespan_s, rb.makespan_s);
}

TEST_F(StaticSimEnv, MissingRecordThrows) {
  const auto graph = make_c3i_graph();
  const auto allocation = schedule(graph);
  StaticSimulator sim(*testbed_, repository_->tasks());
  const auto result = sim.run(graph, allocation);
  EXPECT_THROW((void)result.record(TaskId(999)), common::NotFoundError);
}

TEST_F(StaticSimEnv, MultiAppContention) {
  // Two applications submitted together share the machines: the joint
  // replay must respect cross-application host serialisation, and each
  // app's makespan must be at least its solo makespan.
  const auto g1 = make_linear_solver_graph();
  const auto g2 = make_c3i_graph(2.0);
  const auto a1 = schedule(g1);
  sched::SiteScheduler scheduler2(SiteId(0), directory_);
  const auto a2 = scheduler2.schedule(g2);

  netsim::VirtualTestbed solo1(netsim::make_campus_testbed(21));
  netsim::VirtualTestbed solo2(netsim::make_campus_testbed(21));
  StaticSimulator sim_solo1(solo1, repository_->tasks());
  StaticSimulator sim_solo2(solo2, repository_->tasks());
  const auto r_solo1 = sim_solo1.run(g1, a1, 5.0);
  const auto r_solo2 = sim_solo2.run(g2, a2, 5.0);

  netsim::VirtualTestbed shared(netsim::make_campus_testbed(21));
  StaticSimulator sim_shared(shared, repository_->tasks());
  const auto joint = sim_shared.run_many(
      {SimJob{&g1, &a1, 5.0}, SimJob{&g2, &a2, 5.0}});
  ASSERT_EQ(joint.size(), 2u);
  EXPECT_EQ(joint[0].records.size(), g1.task_count());
  EXPECT_EQ(joint[1].records.size(), g2.task_count());

  // Contention can only slow things down.
  EXPECT_GE(joint[0].makespan_s + 1e-9, r_solo1.makespan_s);
  EXPECT_GE(joint[1].makespan_s + 1e-9, r_solo2.makespan_s);
  // At least one app actually waited (they overlap on the best hosts).
  EXPECT_GT(joint[0].makespan_s + joint[1].makespan_s,
            r_solo1.makespan_s + r_solo2.makespan_s);

  // No two tasks of *any* application overlap on one host.
  std::vector<SimTaskRecord> all;
  all.insert(all.end(), joint[0].records.begin(), joint[0].records.end());
  all.insert(all.end(), joint[1].records.begin(), joint[1].records.end());
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      if (all[i].host != all[j].host) continue;
      EXPECT_TRUE(all[i].finish <= all[j].start + 1e-9 ||
                  all[j].finish <= all[i].start + 1e-9);
    }
  }
}

TEST_F(StaticSimEnv, MultiAppSingleJobMatchesRun) {
  const auto graph = make_c3i_graph();
  const auto allocation = schedule(graph);
  netsim::VirtualTestbed universe_a(netsim::make_campus_testbed(21));
  netsim::VirtualTestbed universe_b(netsim::make_campus_testbed(21));
  StaticSimulator sim_a(universe_a, repository_->tasks());
  StaticSimulator sim_b(universe_b, repository_->tasks());
  const auto via_run = sim_a.run(graph, allocation, 7.0);
  const auto via_many =
      sim_b.run_many({SimJob{&graph, &allocation, 7.0}}).front();
  EXPECT_DOUBLE_EQ(via_run.makespan_s, via_many.makespan_s);
}

TEST_F(StaticSimEnv, MultiAppStaggeredSubmission) {
  const auto g1 = make_c3i_graph();
  const auto g2 = make_c3i_graph();
  const auto a1 = schedule(g1);
  sched::SiteScheduler scheduler2(SiteId(0), directory_);
  const auto a2 = scheduler2.schedule(g2);
  netsim::VirtualTestbed shared(netsim::make_campus_testbed(21));
  StaticSimulator sim(shared, repository_->tasks());
  const auto joint = sim.run_many(
      {SimJob{&g1, &a1, 5.0}, SimJob{&g2, &a2, 50.0}});
  // The second app starts no earlier than its submission.
  for (const auto& r : joint[1].records) {
    EXPECT_GE(r.start + 1e-9, 50.0);
  }
}

// ----------------------------------------------------------- dynamic sim

class DynamicSimEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    testbed_ = std::make_unique<netsim::VirtualTestbed>(
        netsim::make_campus_testbed(31));
    for (const SiteId site : testbed_->sites()) {
      auto repository = std::make_unique<repo::SiteRepository>(site);
      tasklib::builtin_registry().install_defaults(repository->tasks());
      testbed_->populate_repository(*repository, site);
      auto forecaster = std::make_unique<predict::LoadForecaster>();
      auto manager =
          std::make_unique<rt::SiteManager>(site, *repository, *forecaster);
      auto control =
          std::make_unique<rt::ControlManager>(*testbed_, site, *manager);
      directory_.add_site(site, repository.get(), forecaster.get());
      runtimes_.push_back(SiteRuntime{manager.get(), control.get()});
      repositories_.push_back(std::move(repository));
      forecasters_.push_back(std::move(forecaster));
      managers_.push_back(std::move(manager));
      controls_.push_back(std::move(control));
    }
    // Warm the monitoring plane.
    for (double t = 1.0; t <= 10.0; t += 1.0) {
      for (auto& c : controls_) c->tick(t);
    }
  }

  sched::AllocationTable schedule(const afg::FlowGraph& graph) {
    sched::SiteScheduler scheduler(SiteId(0), directory_);
    return scheduler.schedule(graph);
  }

  std::unique_ptr<netsim::VirtualTestbed> testbed_;
  std::vector<std::unique_ptr<repo::SiteRepository>> repositories_;
  std::vector<std::unique_ptr<predict::LoadForecaster>> forecasters_;
  std::vector<std::unique_ptr<rt::SiteManager>> managers_;
  std::vector<std::unique_ptr<rt::ControlManager>> controls_;
  std::vector<SiteRuntime> runtimes_;
  sched::RepositoryDirectory directory_;
};

TEST_F(DynamicSimEnv, QuietRunMatchesStaticBehaviour) {
  const auto graph = make_linear_solver_graph();
  const auto allocation = schedule(graph);
  DynamicSimulator sim(*testbed_, repositories_[0]->tasks(), runtimes_);
  const auto result = sim.run(graph, allocation, /*start_at=*/10.0);
  EXPECT_EQ(result.records.size(), graph.task_count());
  EXPECT_EQ(result.reschedules, 0u);
  EXPECT_EQ(result.failures_hit, 0u);
  for (const auto& r : result.records) EXPECT_EQ(r.attempts, 1);
}

TEST_F(DynamicSimEnv, SurvivesHostFailure) {
  const auto graph = make_linear_solver_graph(2.0);
  const auto allocation = schedule(graph);
  // Kill the busiest host for a long window right after start.
  const auto victim = allocation.hosts_involved().front();
  testbed_->fail_host(victim, 11.0, 1000.0);

  DynamicSimulator sim(*testbed_, repositories_[0]->tasks(), runtimes_);
  const auto result = sim.run(graph, allocation, /*start_at=*/10.0);
  EXPECT_EQ(result.records.size(), graph.task_count());
  EXPECT_GT(result.reschedules, 0u);
  // No completed task ran on the dead host after the failure.
  for (const auto& r : result.records) {
    if (r.start >= 11.0) {
      EXPECT_NE(r.host, victim);
    }
  }
}

TEST_F(DynamicSimEnv, ThresholdGuardAvoidsLoadSpikes) {
  const auto graph = make_linear_solver_graph(2.0);
  const auto allocation = schedule(graph);
  const auto victim = allocation.hosts_involved().front();
  testbed_->add_load_spike(victim, {10.0, 500.0, 50.0});

  DynamicSimConfig config;
  config.load_threshold = 10.0;
  DynamicSimulator sim(*testbed_, repositories_[0]->tasks(), runtimes_,
                       config);
  const auto result = sim.run(graph, allocation, /*start_at=*/10.0);
  EXPECT_GT(result.reschedules, 0u);
  // Every task eventually completed somewhere else.
  for (const auto& r : result.records) {
    EXPECT_NE(r.host, victim);
  }
}

TEST_F(DynamicSimEnv, ThresholdGuardDisabledByDefault) {
  const auto graph = make_c3i_graph();
  const auto allocation = schedule(graph);
  const auto victim = allocation.hosts_involved().front();
  testbed_->add_load_spike(victim, {10.0, 500.0, 50.0});
  DynamicSimulator sim(*testbed_, repositories_[0]->tasks(), runtimes_);
  const auto result = sim.run(graph, allocation, 10.0);
  EXPECT_EQ(result.reschedules, 0u);  // guard off: grind through the spike
}

TEST_F(DynamicSimEnv, ImpossibleRecoveryThrows) {
  const auto graph = make_c3i_graph();
  const auto allocation = schedule(graph);
  // Kill every host everywhere.
  for (const auto h : testbed_->all_hosts()) {
    testbed_->fail_host(h, 10.5, 1e6);
  }
  DynamicSimulator sim(*testbed_, repositories_[0]->tasks(), runtimes_);
  EXPECT_THROW((void)sim.run(graph, allocation, 10.0),
               sched::SchedulingError);
}

TEST_F(DynamicSimEnv, RecordsMeasuredTimesInTaskDb) {
  const auto graph = make_c3i_graph();
  const auto allocation = schedule(graph);
  DynamicSimulator sim(*testbed_, repositories_[0]->tasks(), runtimes_);
  (void)sim.run(graph, allocation, 10.0);
  bool any_history = false;
  for (const auto& repository : repositories_) {
    if (!repository->tasks().get("track_filter").measured_history.empty()) {
      any_history = true;
    }
  }
  EXPECT_TRUE(any_history);
}

}  // namespace
}  // namespace vdce::sim
