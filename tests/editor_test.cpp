// Tests for the Application Editor: modes, menus, property panels,
// store/reload, submit-time validation.
#include <gtest/gtest.h>

#include <fstream>

#include "common/error.hpp"
#include "editor/editor.hpp"

namespace vdce::editor {
namespace {

using common::NotFoundError;
using common::StateError;

class EditorTest : public ::testing::Test {
 protected:
  EditorTest() : ed_(tasklib::builtin_registry(), "test_app") {}
  ApplicationEditor ed_;
};

// --------------------------------------------------------------- menus

TEST_F(EditorTest, MenusListLibraries) {
  const auto menus = ed_.menus();
  EXPECT_GE(menus.size(), 4u);
  EXPECT_FALSE(ed_.menu_tasks("matrix").empty());
}

TEST_F(EditorTest, DescribeTask) {
  EXPECT_FALSE(ed_.describe("lu_decomposition").empty());
  EXPECT_THROW((void)ed_.describe("bogus"), NotFoundError);
}

// --------------------------------------------------------------- modes

TEST_F(EditorTest, StartsInTaskMode) {
  EXPECT_EQ(ed_.mode(), EditorMode::kTask);
}

TEST_F(EditorTest, AddTaskRequiresTaskMode) {
  ed_.set_mode(EditorMode::kLink);
  EXPECT_THROW((void)ed_.add_task("synth_source", "a"), StateError);
  ed_.set_mode(EditorMode::kTask);
  EXPECT_NO_THROW((void)ed_.add_task("synth_source", "a"));
}

TEST_F(EditorTest, ConnectRequiresLinkMode) {
  const auto a = ed_.add_task("synth_source", "a");
  const auto b = ed_.add_task("synth_sink", "b");
  EXPECT_THROW(ed_.connect(a, b), StateError);
  ed_.set_mode(EditorMode::kLink);
  EXPECT_NO_THROW(ed_.connect(a, b));
}

TEST_F(EditorTest, SubmitRequiresRunMode) {
  const auto a = ed_.add_task("synth_source", "a");
  const auto b = ed_.add_task("synth_sink", "b");
  ed_.set_mode(EditorMode::kLink);
  ed_.connect(a, b);
  EXPECT_THROW((void)ed_.submit(), StateError);
  ed_.set_mode(EditorMode::kRun);
  EXPECT_NO_THROW((void)ed_.submit());
}

TEST_F(EditorTest, PropertyPanelUnavailableInRunMode) {
  const auto a = ed_.add_task("synth_source", "a");
  ed_.set_mode(EditorMode::kRun);
  EXPECT_THROW(ed_.set_properties(a, {}), StateError);
}

// --------------------------------------------------------- task mode

TEST_F(EditorTest, UnknownLibraryTaskRejected) {
  EXPECT_THROW((void)ed_.add_task("quantum_sort", "q"), NotFoundError);
}

TEST_F(EditorTest, IconPlacement) {
  const auto a = ed_.add_task("synth_source", "a", {10.0, 20.0});
  EXPECT_EQ(ed_.position(a), (IconPosition{10.0, 20.0}));
  ed_.place_task(a, {30.0, 40.0});
  EXPECT_EQ(ed_.position(a), (IconPosition{30.0, 40.0}));
}

TEST_F(EditorTest, RemoveTaskCleansUp) {
  const auto a = ed_.add_task("synth_source", "a");
  const auto b = ed_.add_task("synth_sink", "b");
  ed_.set_mode(EditorMode::kLink);
  ed_.connect(a, b);
  ed_.set_mode(EditorMode::kTask);
  ed_.remove_task(a);
  EXPECT_EQ(ed_.graph().task_count(), 1u);
  EXPECT_EQ(ed_.graph().link_count(), 0u);
  EXPECT_THROW((void)ed_.position(a), NotFoundError);
}

// --------------------------------------------------------- link mode

TEST_F(EditorTest, DefaultLinkSizeFromLibrary) {
  const auto a = ed_.add_task("matrix_generate", "a");
  const auto b = ed_.add_task("lu_decomposition", "b");
  ed_.set_mode(EditorMode::kLink);
  ed_.connect(a, b);
  const auto& entry = tasklib::builtin_registry().get("matrix_generate");
  EXPECT_DOUBLE_EQ(ed_.graph().link(a, b).transfer_mb,
                   entry.default_perf.communication_size_mb);
}

TEST_F(EditorTest, ExplicitLinkSizeKept) {
  const auto a = ed_.add_task("matrix_generate", "a");
  const auto b = ed_.add_task("lu_decomposition", "b");
  ed_.set_mode(EditorMode::kLink);
  ed_.connect(a, b, 9.5);
  EXPECT_DOUBLE_EQ(ed_.graph().link(a, b).transfer_mb, 9.5);

  // Changing input_size must not clobber the explicit override.
  ed_.set_mode(EditorMode::kTask);
  afg::TaskProperties props;
  props.input_size = 3.0;
  ed_.set_properties(a, props);
  EXPECT_DOUBLE_EQ(ed_.graph().link(a, b).transfer_mb, 9.5);
}

TEST_F(EditorTest, DefaultLinkRescalesWithInputSize) {
  const auto a = ed_.add_task("matrix_generate", "a");
  const auto b = ed_.add_task("lu_decomposition", "b");
  ed_.set_mode(EditorMode::kLink);
  ed_.connect(a, b);
  ed_.set_mode(EditorMode::kTask);
  afg::TaskProperties props;
  props.input_size = 3.0;
  ed_.set_properties(a, props);
  const auto& entry = tasklib::builtin_registry().get("matrix_generate");
  EXPECT_DOUBLE_EQ(ed_.graph().link(a, b).transfer_mb,
                   3.0 * entry.default_perf.communication_size_mb);
}

TEST_F(EditorTest, Disconnect) {
  const auto a = ed_.add_task("synth_source", "a");
  const auto b = ed_.add_task("synth_sink", "b");
  ed_.set_mode(EditorMode::kLink);
  ed_.connect(a, b);
  ed_.disconnect(a, b);
  EXPECT_EQ(ed_.graph().link_count(), 0u);
}

// --------------------------------------------------- property panel

TEST_F(EditorTest, PropertiesRoundTrip) {
  const auto a = ed_.add_task("lu_decomposition", "a");
  afg::TaskProperties props;
  props.mode = afg::ComputeMode::kParallel;
  props.num_processors = 4;
  props.preferred_arch = repo::ArchType::kAlpha;
  props.input_size = 2.0;
  ed_.set_properties(a, props);
  EXPECT_EQ(ed_.properties(a), props);
}

TEST_F(EditorTest, BadPropertiesRejected) {
  const auto a = ed_.add_task("synth_source", "a");
  afg::TaskProperties bad;
  bad.num_processors = 0;
  EXPECT_THROW(ed_.set_properties(a, bad), StateError);
  bad.num_processors = 1;
  bad.input_size = -1.0;
  EXPECT_THROW(ed_.set_properties(a, bad), StateError);
}

// ----------------------------------------------------------- submit

TEST_F(EditorTest, SubmitChecksArity) {
  // residual_check needs exactly 3 inputs; give it one.
  const auto a = ed_.add_task("matrix_generate", "a");
  const auto r = ed_.add_task("residual_check", "r");
  ed_.set_mode(EditorMode::kLink);
  ed_.connect(a, r);
  ed_.set_mode(EditorMode::kRun);
  EXPECT_THROW((void)ed_.submit(), StateError);
}

TEST_F(EditorTest, SubmitChecksSourceHasNoInputs) {
  const auto a = ed_.add_task("synth_source", "a");
  const auto b = ed_.add_task("synth_source", "b");
  ed_.set_mode(EditorMode::kLink);
  ed_.connect(a, b);  // a source with an input
  ed_.set_mode(EditorMode::kRun);
  EXPECT_THROW((void)ed_.submit(), StateError);
}

TEST_F(EditorTest, SubmitValidGraph) {
  const auto a = ed_.add_task("synth_source", "a");
  const auto b = ed_.add_task("synth_compute", "b");
  const auto c = ed_.add_task("synth_sink", "c");
  ed_.set_mode(EditorMode::kLink);
  ed_.connect(a, b);
  ed_.connect(b, c);
  ed_.set_mode(EditorMode::kRun);
  const auto graph = ed_.submit();
  EXPECT_EQ(graph.task_count(), 3u);
  EXPECT_EQ(graph.name(), "test_app");
}

// ------------------------------------------------------ store/reload

TEST_F(EditorTest, SaveAndLoad) {
  const auto a = ed_.add_task("synth_source", "a");
  const auto b = ed_.add_task("synth_sink", "b");
  ed_.set_mode(EditorMode::kLink);
  ed_.connect(a, b, 2.0);
  ed_.save("/tmp/vdce_editor_test.afg");

  auto loaded = ApplicationEditor::load(tasklib::builtin_registry(),
                                        "/tmp/vdce_editor_test.afg");
  EXPECT_EQ(loaded.graph().task_count(), 2u);
  EXPECT_EQ(loaded.graph().name(), "test_app");
  loaded.set_mode(EditorMode::kRun);
  EXPECT_NO_THROW((void)loaded.submit());
}

TEST_F(EditorTest, LoadRejectsUnknownLibraryTask) {
  {
    std::ofstream out("/tmp/vdce_editor_bad.afg");
    out << "app bad\ntask a warp_coil\n";
  }
  EXPECT_THROW((void)ApplicationEditor::load(tasklib::builtin_registry(),
                                             "/tmp/vdce_editor_bad.afg"),
               NotFoundError);
}

TEST_F(EditorTest, DotExportMentionsTasks) {
  (void)ed_.add_task("synth_source", "alpha");
  EXPECT_NE(ed_.to_dot().find("alpha"), std::string::npos);
}

}  // namespace
}  // namespace vdce::editor
