// Shared-memory programming on VDCE: the paper's future-work DSM model.
//
// A 1-D Jacobi heat-diffusion solver written in the shared-memory
// paradigm: worker "machines" (threads with DsmNode endpoints) own
// strips of the rod, read neighbour boundary values from shared
// variables, and synchronise iterations with a DSM barrier built from
// the lock service.  Compare with the message-passing examples — the
// application code never touches a channel.
#include <cmath>
#include <iomanip>
#include <iostream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "dsm/dsm.hpp"

namespace {

using vdce::dsm::DsmNode;
using vdce::dsm::DsmServer;
using vdce::tasklib::Payload;

constexpr int kWorkers = 4;
constexpr int kCellsPerWorker = 32;
constexpr int kIterations = 200;

/// A sense-reversing barrier on top of DSM variables + locks.
void barrier(DsmNode& node, int iteration) {
  const std::string var = "barrier_" + std::to_string(iteration);
  node.acquire("barrier_lock");
  double arrived = 0.0;
  try {
    arrived = node.read(var).as_scalar();
  } catch (const vdce::common::NotFoundError&) {
    // first arrival
  }
  node.write(var, Payload::of_scalar(arrived + 1.0));
  node.release("barrier_lock");

  // Spin (politely) until everyone arrived.  Reads are served from the
  // home after each invalidation, so progress is guaranteed.
  while (node.read(var).as_scalar() < kWorkers) {
    std::this_thread::yield();
  }
}

void worker(DsmServer& server, int rank) {
  auto node = server.attach();

  // Local strip, with the left end of worker 0 held at 100 degrees.
  std::vector<double> strip(kCellsPerWorker, 0.0);
  if (rank == 0) strip.front() = 100.0;

  const std::string left_var = "boundary_" + std::to_string(rank) + "_left";
  const std::string right_var =
      "boundary_" + std::to_string(rank) + "_right";

  node->write(left_var, Payload::of_scalar(strip.front()));
  node->write(right_var, Payload::of_scalar(strip.back()));
  barrier(*node, 0);

  for (int iter = 1; iter <= kIterations; ++iter) {
    // Neighbour boundary cells from shared memory.
    double left_ghost = strip.front();
    double right_ghost = strip.back();
    if (rank > 0) {
      left_ghost =
          node->read("boundary_" + std::to_string(rank - 1) + "_right")
              .as_scalar();
    }
    if (rank < kWorkers - 1) {
      right_ghost =
          node->read("boundary_" + std::to_string(rank + 1) + "_left")
              .as_scalar();
    }

    // Jacobi update (fixed ends).
    std::vector<double> next = strip;
    for (int i = 0; i < kCellsPerWorker; ++i) {
      if (rank == 0 && i == 0) continue;  // hot end fixed
      if (rank == kWorkers - 1 && i == kCellsPerWorker - 1) continue;
      const double left = i == 0 ? left_ghost : strip[i - 1];
      const double right =
          i == kCellsPerWorker - 1 ? right_ghost : strip[i + 1];
      next[i] = 0.5 * (left + right);
    }
    strip = std::move(next);

    node->write(left_var, Payload::of_scalar(strip.front()));
    node->write(right_var, Payload::of_scalar(strip.back()));
    barrier(*node, iter);
  }

  node->write("strip_" + std::to_string(rank), Payload::of_vector(strip));
  std::cout << "worker " << rank << ": reads=" << node->stats().reads
            << " cache_hits=" << node->stats().cache_hits
            << " invalidations=" << node->stats().invalidations_applied
            << "\n";
}

}  // namespace

int main() {
  std::cout << "VDCE DSM example: " << kWorkers
            << "-worker shared-memory Jacobi, " << kIterations
            << " iterations\n\n";
  DsmServer server;
  {
    std::vector<std::jthread> threads;
    for (int rank = 0; rank < kWorkers; ++rank) {
      threads.emplace_back([&server, rank] { worker(server, rank); });
    }
  }

  // Stitch the rod together and render the temperature profile.
  auto viewer = server.attach();
  std::vector<double> rod;
  for (int rank = 0; rank < kWorkers; ++rank) {
    const auto strip =
        viewer->read("strip_" + std::to_string(rank)).as_vector();
    rod.insert(rod.end(), strip.begin(), strip.end());
  }

  std::cout << "\ntemperature profile (hot end left):\n";
  static constexpr char kRamp[] = " .:-=+*#%@";
  for (std::size_t i = 0; i < rod.size(); i += 2) {
    const auto idx = static_cast<std::size_t>(rod[i] / 100.0 * 9.0);
    std::cout << kRamp[std::min<std::size_t>(idx, 9)];
  }
  std::cout << "\n\nend temperatures: " << std::fixed << std::setprecision(2)
            << rod.front() << " ... " << rod.back() << "\n";
  const auto stats = server.stats();
  std::cout << "server: " << stats.requests << " requests, "
            << stats.invalidations_sent << " invalidations, "
            << stats.lock_grants << " lock grants\n";
  return 0;
}
