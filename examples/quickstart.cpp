// Quickstart: the complete VDCE software development cycle in ~80 lines.
//
//   1. bring up a two-site virtual VDCE (the paper's Syracuse/Rome
//      campus testbed) with monitoring running;
//   2. authenticate against the user-accounts database;
//   3. develop an application with the Application Editor (the Figure 3
//      Linear Equation Solver);
//   4. schedule it with the distributed Application Scheduler;
//   5. execute it with the VDCE Runtime System (real threads + channel
//      setup protocol) and print the measured per-task times.
#include <iostream>

#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "editor/editor.hpp"
#include "examples/example_common.hpp"
#include "runtime/engine.hpp"
#include "scheduler/site_scheduler.hpp"
#include "sim/workloads.hpp"
#include "viz/gantt.hpp"

int main() {
  using namespace vdce;
  common::set_log_level(common::LogLevel::kInfo);

  // Tracing: VDCE_TRACE=<file.json> records every scheduling decision
  // and task attempt as Chrome trace-event spans (chrome://tracing) and
  // prints a per-category summary on exit.
  common::TraceSession trace_session;

  // 1. Bring up the environment.
  auto vdce = examples::bring_up(netsim::make_campus_testbed(/*seed=*/42));
  std::cout << "VDCE up: " << vdce.testbed->host_count() << " hosts across "
            << vdce.testbed->sites().size() << " sites\n";

  // 2. Authenticate (the Site Manager's servlet login).
  const auto account = vdce.site_managers[0]->login("hpdc", "nynet");
  std::cout << "logged in as " << account.user_name << " (priority "
            << account.priority << ", domain " << account.access_domain
            << ")\n";

  // 3. Develop the application.  make_linear_solver_graph() is the
  //    programmatic equivalent of drawing Figure 3 in the Editor; see
  //    examples/linear_solver.cpp for the full Editor walkthrough.
  const afg::FlowGraph graph = sim::make_linear_solver_graph(1.0);
  std::cout << "\napplication '" << graph.name() << "': "
            << graph.task_count() << " tasks, " << graph.link_count()
            << " links\n";

  // 4. Schedule: the local site's Application Scheduler consults its
  //    k nearest neighbours and assigns every task.
  sched::SiteScheduler scheduler(vdce.site_managers[0]->site(),
                                 vdce.directory);
  const sched::AllocationTable allocation = scheduler.schedule(graph);
  std::cout << "\nresource allocation table:\n";
  for (const auto& row : allocation.rows()) {
    std::cout << "  " << row.task_label << " -> host "
              << row.primary_host().value() << " (site " << row.site.value()
              << "), predicted " << row.predicted_s << "s\n";
  }

  // 5. Execute with the real-threaded runtime (Figure 7 protocol).
  rt::ExecutionEngine engine(tasklib::builtin_registry());
  const rt::RunResult result =
      engine.execute(graph, allocation, vdce.site_managers[0].get());

  std::cout << "\n" << viz::render_run_table(result);

  const auto residual_task = graph.find_by_label("residual");
  std::cout << "\nsolver residual ||Ax-b||_inf = "
            << result.outputs.at(*residual_task).as_scalar() << "\n";

  std::cout << "\n" << common::MetricsRegistry::global().text_summary();
  return 0;
}
