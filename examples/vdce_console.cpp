// The VDCE console: a scriptable front-end playing the role of the
// paper's web interface (login -> Editor -> submit -> schedule -> run).
//
// Reads commands from stdin (or a script via `vdce_console < script`):
//
//   login <user> <password>
//   menus                       list the task library menus
//   menu <name>                 list one menu's tasks
//   new <app-name>              start a fresh application
//   task <label> <library_task> add a task (editor task mode)
//   link <from> <to> [mb]       connect tasks (editor link mode)
//   props <label> [mode=parallel] [procs=N] [arch=A] [os=O] [size=S]
//   submit                      validate (editor run mode)
//   qos <deadline_s>            admission check against a deadline
//   schedule [k] [qa] [tN]      run the Application Scheduler
//                               (tN = N scheduling threads; the
//                               allocation is identical for every N)
//   run                         execute on the runtime; show the table
//   show <label>                print a task's output payload summary
//   save <path> / load <path>   store / reload the AFG
//   dot                         print Graphviz DOT
//   status                      editor + allocation summary
//   help / quit
//
// A demo script is executed when stdin is a terminal with no input.
#include <iostream>
#include <optional>
#include <sstream>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "editor/editor.hpp"
#include "examples/example_common.hpp"
#include "runtime/engine.hpp"
#include "scheduler/qos.hpp"
#include "scheduler/site_scheduler.hpp"
#include "viz/gantt.hpp"

namespace {

using namespace vdce;

struct ConsoleState {
  examples::Vdce vdce;
  std::optional<editor::ApplicationEditor> editor;
  std::optional<afg::FlowGraph> submitted;
  std::optional<sched::AllocationTable> allocation;
  std::optional<rt::RunResult> last_run;
  bool authenticated = false;
};

void describe_payload(const tasklib::Payload& p) {
  using tasklib::PayloadType;
  std::cout << "  type=" << tasklib::to_string(p.type())
            << " bytes=" << p.size_bytes();
  switch (p.type()) {
    case PayloadType::kScalar:
      std::cout << " value=" << p.as_scalar();
      break;
    case PayloadType::kVector:
      std::cout << " length=" << p.as_vector().size();
      break;
    case PayloadType::kMatrix: {
      const auto m = p.as_matrix();
      std::cout << " shape=" << m.rows() << "x" << m.cols();
      break;
    }
    case PayloadType::kTracks:
      std::cout << " tracks=" << p.as_tracks().size();
      break;
    case PayloadType::kThreats:
      std::cout << " threats=" << p.as_threats().size();
      break;
    case PayloadType::kText:
      std::cout << " text=\"" << p.as_text() << "\"";
      break;
    default:
      break;
  }
  std::cout << "\n";
}

afg::TaskProperties parse_props(const std::vector<std::string>& args,
                                std::size_t first,
                                afg::TaskProperties props) {
  for (std::size_t i = first; i < args.size(); ++i) {
    const auto eq = args[i].find('=');
    if (eq == std::string::npos) {
      throw common::ParseError("expected key=value: " + args[i]);
    }
    const auto key = args[i].substr(0, eq);
    const auto value = args[i].substr(eq + 1);
    if (key == "mode") {
      props.mode = afg::compute_mode_from_string(value);
    } else if (key == "procs") {
      props.num_processors =
          static_cast<unsigned>(common::parse_uint(value, "procs"));
    } else if (key == "arch") {
      props.preferred_arch = repo::arch_from_string(value);
    } else if (key == "os") {
      props.preferred_os = repo::os_from_string(value);
    } else if (key == "size") {
      props.input_size = common::parse_double(value, "size");
    } else {
      throw common::ParseError("unknown property: " + key);
    }
  }
  return props;
}

/// Handles one command line; returns false on quit.
bool handle(ConsoleState& state, const std::string& line) {
  const auto args = common::split_ws(line);
  if (args.empty() || args[0][0] == '#') return true;
  const std::string& cmd = args[0];
  const auto& registry = tasklib::builtin_registry();

  const auto need_editor = [&]() -> editor::ApplicationEditor& {
    if (!state.editor) {
      throw common::StateError("no application open (use: new <name>)");
    }
    return *state.editor;
  };
  const auto label_id = [&](const std::string& label) {
    const auto id = need_editor().graph().find_by_label(label);
    if (!id) throw common::NotFoundError("no task labelled " + label);
    return *id;
  };

  if (cmd == "quit" || cmd == "exit") return false;
  if (cmd == "help") {
    std::cout << "commands: login menus menu new task link props submit qos"
                 " schedule run show save load dot status quit\n";
  } else if (cmd == "login") {
    if (args.size() != 3) throw common::ParseError("login <user> <pw>");
    const auto acct = state.vdce.site_managers[0]->login(args[1], args[2]);
    state.authenticated = true;
    std::cout << "welcome " << acct.user_name << " (domain "
              << acct.access_domain << ")\n";
  } else if (cmd == "menus") {
    for (const auto& menu : registry.menus()) std::cout << menu << "\n";
  } else if (cmd == "menu") {
    if (args.size() != 2) throw common::ParseError("menu <name>");
    for (const auto& t : registry.tasks_in_menu(args[1])) {
      std::cout << t << " - " << registry.get(t).description << "\n";
    }
  } else if (cmd == "new") {
    if (args.size() != 2) throw common::ParseError("new <app-name>");
    state.editor.emplace(registry, args[1]);
    state.submitted.reset();
    state.allocation.reset();
    std::cout << "application '" << args[1] << "' opened\n";
  } else if (cmd == "task") {
    if (args.size() < 3) {
      throw common::ParseError("task <label> <library_task> [k=v...]");
    }
    auto& ed = need_editor();
    ed.set_mode(editor::EditorMode::kTask);
    const auto id = ed.add_task(args[2], args[1]);
    if (args.size() > 3) ed.set_properties(id, parse_props(args, 3, {}));
  } else if (cmd == "link") {
    if (args.size() < 3) throw common::ParseError("link <from> <to> [mb]");
    auto& ed = need_editor();
    const auto from = label_id(args[1]);
    const auto to = label_id(args[2]);
    ed.set_mode(editor::EditorMode::kLink);
    if (args.size() > 3) {
      ed.connect(from, to, common::parse_double(args[3], "link mb"));
    } else {
      ed.connect(from, to);
    }
  } else if (cmd == "props") {
    if (args.size() < 3) throw common::ParseError("props <label> k=v...");
    auto& ed = need_editor();
    const auto id = label_id(args[1]);
    ed.set_mode(editor::EditorMode::kTask);
    ed.set_properties(id, parse_props(args, 2, ed.properties(id)));
  } else if (cmd == "submit") {
    auto& ed = need_editor();
    ed.set_mode(editor::EditorMode::kRun);
    state.submitted = ed.submit();
    std::cout << "submitted: " << state.submitted->task_count()
              << " tasks, " << state.submitted->link_count() << " links\n";
  } else if (cmd == "schedule") {
    if (!state.submitted) throw common::StateError("submit first");
    sched::SiteSchedulerConfig config;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "qa") {
        config.queue_aware = true;
      } else if (args[i].size() > 1 && args[i][0] == 't') {
        config.threads = common::parse_uint(args[i].substr(1), "threads");
      } else {
        config.k_nearest = common::parse_uint(args[i], "k");
      }
    }
    sched::SiteScheduler scheduler(state.vdce.site_managers[0]->site(),
                                   state.vdce.directory, config);
    state.allocation = scheduler.schedule(*state.submitted);
    for (const auto& row : state.allocation->rows()) {
      std::cout << "  " << row.task_label << " -> "
                << state.vdce.testbed->host_spec(row.primary_host()).name
                << " (predicted " << row.predicted_s << "s)\n";
    }
  } else if (cmd == "qos") {
    if (args.size() != 2) throw common::ParseError("qos <deadline_s>");
    if (!state.submitted || !state.allocation) {
      throw common::StateError("schedule first");
    }
    const auto admission = sched::check_qos(
        *state.submitted, *state.allocation, state.vdce.directory,
        sched::QosRequirement{common::parse_double(args[1], "deadline")});
    std::cout << (admission.admitted ? "ADMITTED" : "REJECTED")
              << ": predicted makespan " << admission.predicted_makespan_s
              << "s, slack " << admission.slack_s << "s\n";
  } else if (cmd == "run") {
    if (!state.submitted || !state.allocation) {
      throw common::StateError("schedule first");
    }
    rt::ExecutionEngine engine(registry);
    state.last_run = engine.execute(*state.submitted, *state.allocation,
                                    state.vdce.site_managers[0].get());
    std::cout << viz::render_run_table(*state.last_run);
  } else if (cmd == "show") {
    if (args.size() != 2) throw common::ParseError("show <label>");
    if (!state.last_run) throw common::StateError("run first");
    describe_payload(state.last_run->outputs.at(label_id(args[1])));
  } else if (cmd == "save") {
    if (args.size() != 2) throw common::ParseError("save <path>");
    need_editor().save(args[1]);
  } else if (cmd == "load") {
    if (args.size() != 2) throw common::ParseError("load <path>");
    state.editor.emplace(
        editor::ApplicationEditor::load(registry, args[1]));
    std::cout << "loaded '" << state.editor->graph().name() << "'\n";
  } else if (cmd == "dot") {
    std::cout << need_editor().to_dot();
  } else if (cmd == "status") {
    if (state.editor) {
      std::cout << "app '" << state.editor->graph().name() << "': "
                << state.editor->graph().task_count() << " tasks, "
                << state.editor->graph().link_count() << " links\n";
    } else {
      std::cout << "no application open\n";
    }
    if (state.allocation) {
      std::cout << "allocation: " << state.allocation->size()
                << " rows across "
                << state.allocation->hosts_involved().size() << " hosts\n";
    }
  } else {
    std::cout << "unknown command '" << cmd << "' (try: help)\n";
  }
  return true;
}

constexpr const char* kDemoScript = R"(login hpdc nynet
menus
new demo_solver
task A matrix_generate
task b vector_generate
task x linear_solve
task check residual_check
link A x
link b x
link A check
link x check
link b check
submit
schedule 1 qa
qos 60
run
show x
show check
status
quit
)";

}  // namespace

int main() {
  std::cout << "VDCE console (type 'help'; demo script runs when no input"
               " is piped)\n";
  ConsoleState state{examples::bring_up(netsim::make_campus_testbed(3)),
                     {}, {}, {}, {}, false};

  std::istringstream demo(kDemoScript);
  std::istream& in = std::cin.peek() == EOF
                         ? static_cast<std::istream&>(demo)
                         : std::cin;
  std::string line;
  while (std::getline(in, line)) {
    if (&in == &demo) std::cout << "vdce> " << line << "\n";
    try {
      if (!handle(state, line)) break;
    } catch (const common::VdceError& e) {
      std::cout << "error: " << e.what() << "\n";
    }
  }
  return 0;
}
