// The paper's Figure 3 walkthrough: building the Linear Equation Solver
// with the Application Editor, step by step.
//
// Demonstrates: menu browsing, task mode (adding/placing icons), link
// mode (wiring the dataflow), the task-properties popup (parallel mode,
// machine-type preference), storing/reloading the AFG, DOT export, run
// mode submission, scheduling, execution over *real TCP sockets*, and
// the comparative visualization service.
#include <iostream>

#include "common/log.hpp"
#include "editor/editor.hpp"
#include "examples/example_common.hpp"
#include "runtime/engine.hpp"
#include "scheduler/site_scheduler.hpp"
#include "sim/static_sim.hpp"
#include "sim/workloads.hpp"
#include "viz/comparative.hpp"
#include "viz/gantt.hpp"

int main() {
  using namespace vdce;

  auto vdce = examples::bring_up(netsim::make_campus_testbed(/*seed=*/7));
  const auto& registry = tasklib::builtin_registry();

  // ---- browse the task library menus -------------------------------
  editor::ApplicationEditor ed(registry, "linear_solver");
  std::cout << "task library menus:\n";
  for (const auto& menu : ed.menus()) {
    std::cout << "  [" << menu << "]";
    for (const auto& t : ed.menu_tasks(menu)) std::cout << " " << t;
    std::cout << "\n";
  }

  // ---- task mode: drop the icons on the canvas -----------------------
  ed.set_mode(editor::EditorMode::kTask);
  const auto a = ed.add_task("matrix_generate", "A", {10, 10});
  const auto b = ed.add_task("vector_generate", "b", {90, 10});
  const auto lu = ed.add_task("lu_decomposition", "LU", {10, 30});
  const auto low = ed.add_task("lu_lower", "L", {0, 50});
  const auto up = ed.add_task("lu_upper", "U", {20, 50});
  const auto li = ed.add_task("matrix_inversion", "L_inv", {0, 70});
  const auto ui = ed.add_task("matrix_inversion", "U_inv", {20, 70});
  const auto pb = ed.add_task("permute_vector", "Pb", {60, 50});
  const auto y = ed.add_task("matrix_vector_multiply", "y", {40, 80});
  const auto x = ed.add_task("matrix_vector_multiply", "x", {40, 95});
  const auto res = ed.add_task("residual_check", "residual", {60, 110});

  // ---- link mode: wire the dataflow (input-port order matters) -------
  ed.set_mode(editor::EditorMode::kLink);
  ed.connect(a, lu);
  ed.connect(lu, low);
  ed.connect(lu, up);
  ed.connect(low, li);
  ed.connect(up, ui);
  ed.connect(lu, pb);   // permute_vector(LU, b)
  ed.connect(b, pb);
  ed.connect(li, y);    // y = L_inv * Pb
  ed.connect(pb, y);
  ed.connect(ui, x);    // x = U_inv * y
  ed.connect(y, x);
  ed.connect(a, res);   // residual_check(A, x, b)
  ed.connect(x, res);
  ed.connect(b, res);

  // ---- the task-properties popup (Figure 3, right panel) -------------
  // "for the LU Decomposition task ... the user has selected parallel
  //  execution mode using two nodes of Solaris machines".
  ed.set_mode(editor::EditorMode::kTask);
  afg::TaskProperties lu_props;
  lu_props.mode = afg::ComputeMode::kParallel;
  lu_props.num_processors = 2;
  lu_props.preferred_os = repo::OsType::kSolaris;
  ed.set_properties(lu, lu_props);

  // ---- store the AFG for future use, reload it, export DOT ----------
  ed.save("/tmp/linear_solver.afg");
  auto reloaded = editor::ApplicationEditor::load(registry,
                                                  "/tmp/linear_solver.afg");
  std::cout << "\nstored AFG reloaded: " << reloaded.graph().task_count()
            << " tasks\n\nGraphviz DOT:\n" << ed.to_dot();

  // ---- run mode: submit, schedule, execute ----------------------------
  ed.set_mode(editor::EditorMode::kRun);
  const afg::FlowGraph graph = ed.submit();

  sched::SiteScheduler scheduler(vdce.site_managers[0]->site(),
                                 vdce.directory);
  const auto allocation = scheduler.schedule(graph);
  std::cout << "\nLU assigned to " << allocation.entry(lu).hosts.size()
            << " machines (parallel mode) at site "
            << allocation.entry(lu).site.value() << "\n";

  // Execute over real TCP loopback sockets.
  rt::EngineConfig config;
  config.transport = dm::TransportKind::kTcp;
  config.library = dm::MpLibrary::kPvm;  // exercise the PVM facade
  rt::ExecutionEngine engine(registry, config);
  const auto result = engine.execute(graph, allocation,
                                     vdce.site_managers[0].get());
  std::cout << "\nexecution over TCP sockets with the PVM facade:\n"
            << viz::render_run_table(result);
  std::cout << "residual = " << result.outputs.at(res).as_scalar() << "\n";

  // ---- comparative visualization: problem-size scaling ---------------
  viz::ComparativeViz comparison;
  for (const double scale : {0.5, 1.0, 2.0}) {
    auto universe = examples::bring_up(netsim::make_campus_testbed(7), 10.0);
    sim::StaticSimulator sims(*universe.testbed,
                              universe.repositories[0]->tasks());
    sched::SiteScheduler sched_u(universe.site_managers[0]->site(),
                                 universe.directory);
    const auto g = sim::make_linear_solver_graph(scale);
    const auto alloc = sched_u.schedule(g);
    comparison.add_run("N=" + std::to_string(static_cast<int>(32 * scale)),
                       sims.run(g, alloc, /*start_at=*/10.0));
  }
  std::cout << "\ncomparative visualization (matrix order sweep):\n"
            << comparison.render();
  return 0;
}
