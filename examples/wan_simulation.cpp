// Wide-area simulation: VDCE at the scale the paper aims for (the NII),
// with failures and dynamic rescheduling.
//
// Brings up a 6-site random testbed (48 heterogeneous hosts), runs a
// layered synthetic application under the dynamic simulator while a
// host crashes mid-execution and another gets a load spike, and shows
// the workload visualization of what the monitors saw.
#include <iostream>

#include "common/log.hpp"
#include "examples/example_common.hpp"
#include "scheduler/site_scheduler.hpp"
#include "sim/dynamic_sim.hpp"
#include "sim/workloads.hpp"
#include "viz/gantt.hpp"
#include "viz/workload_viz.hpp"

int main() {
  using namespace vdce;
  common::set_log_level(common::LogLevel::kInfo);

  netsim::RandomTestbedParams params;
  params.num_sites = 6;
  params.groups_per_site = 2;
  params.hosts_per_group = 4;
  auto vdce = examples::bring_up(
      netsim::make_random_testbed(params, /*seed=*/2026), /*warm_up_s=*/20.0);
  std::cout << "testbed: " << vdce.testbed->host_count() << " hosts, "
            << vdce.testbed->sites().size() << " sites\n";

  // A 6-layer x 6-wide application.
  common::Rng rng(99);
  sim::SyntheticGraphParams gp;
  gp.family = sim::GraphFamily::kLayered;
  gp.size = 6;
  gp.width = 6;
  const afg::FlowGraph graph = sim::make_synthetic_graph(gp, rng);
  std::cout << "application: " << graph.task_count() << " tasks, "
            << graph.link_count() << " links\n";

  // Schedule from site 0 with k=3 neighbour sites.
  sched::SiteSchedulerConfig sched_config;
  sched_config.k_nearest = 3;
  sched::SiteScheduler scheduler(vdce.site_managers[0]->site(),
                                 vdce.directory, sched_config);
  const auto allocation = scheduler.schedule(graph);
  std::cout << "scheduler consulted " << scheduler.consulted_sites().size()
            << " sites; " << allocation.sites_involved().size()
            << " sites and " << allocation.hosts_involved().size()
            << " hosts take part in the execution\n";

  // Trouble ahead: kill the busiest assigned host mid-run and spike
  // another.
  const auto hosts = allocation.hosts_involved();
  vdce.testbed->fail_host(hosts.front(), /*start=*/25.0, /*length=*/60.0);
  if (hosts.size() > 1) {
    vdce.testbed->add_load_spike(hosts[1], {25.0, 40.0, 8.0});
  }
  std::cout << "injected: host " << hosts.front().value()
            << " crashes at t=25s; host " << hosts[1].value()
            << " gets a +8.0 load spike\n\n";

  // Dynamic simulation with the Application Controller guard armed.
  std::vector<sim::SiteRuntime> runtimes;
  for (std::size_t i = 0; i < vdce.site_managers.size(); ++i) {
    runtimes.push_back(sim::SiteRuntime{vdce.site_managers[i].get(),
                                        vdce.control_managers[i].get()});
  }
  sim::DynamicSimConfig dyn;
  dyn.load_threshold = 4.0;
  sim::DynamicSimulator simulator(*vdce.testbed,
                                  vdce.repositories[0]->tasks(), runtimes,
                                  dyn);

  viz::WorkloadRecorder recorder;
  const auto result = simulator.run(graph, allocation, /*start_at=*/20.0);

  std::cout << "run complete: makespan " << result.makespan_s << "s, "
            << result.reschedules << " reschedules, " << result.failures_hit
            << " failures survived\n\n";
  std::cout << viz::render_gantt(result, 64) << "\n";

  // Workload visualization from the repository's monitored view.
  for (double t = 20.0; t <= 80.0; t += 4.0) {
    recorder.snapshot(*vdce.repositories[0], t);
  }
  std::cout << "monitored workload (site 0 repository view):\n"
            << recorder.render();
  return 0;
}
