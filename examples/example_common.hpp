// Shared bring-up helper for the examples: builds a virtual testbed,
// one site repository + Site Manager + Control Manager per site, seeds
// the task libraries, and warms the monitoring fabric so the
// repositories hold real measurements before anything is scheduled.
#pragma once

#include <memory>
#include <vector>

#include "netsim/testbed.hpp"
#include "predict/forecaster.hpp"
#include "runtime/control_manager.hpp"
#include "runtime/site_manager.hpp"
#include "runtime/sm_directory.hpp"
#include "tasklib/registry.hpp"

namespace vdce::examples {

/// A fully wired single-process VDCE over a virtual testbed.
struct Vdce {
  std::unique_ptr<netsim::VirtualTestbed> testbed;
  std::vector<std::unique_ptr<repo::SiteRepository>> repositories;
  std::vector<std::unique_ptr<predict::LoadForecaster>> forecasters;
  std::vector<std::unique_ptr<rt::SiteManager>> site_managers;
  std::vector<std::unique_ptr<rt::ControlManager>> control_managers;
  rt::SiteManagerDirectory directory;

  /// Advances every site's control plane to `until` in `step` ticks.
  void warm_up(double until, double step = 1.0) {
    for (double t = step; t <= until + 1e-9; t += step) {
      for (auto& cm : control_managers) cm->tick(t);
    }
  }
};

/// Brings up a VDCE over `config`.  `warm_up_s` control ticks run before
/// returning so dynamic attributes and forecasts are populated.
inline Vdce bring_up(const netsim::TestbedConfig& config,
                     double warm_up_s = 10.0) {
  Vdce v;
  v.testbed = std::make_unique<netsim::VirtualTestbed>(config);

  for (const common::SiteId site : v.testbed->sites()) {
    auto repository = std::make_unique<repo::SiteRepository>(site);
    tasklib::builtin_registry().install_defaults(repository->tasks());
    v.testbed->populate_repository(*repository, site);
    repository->users().add_user("hpdc", "nynet", 1, "wan");

    auto forecaster = std::make_unique<predict::LoadForecaster>();
    auto manager = std::make_unique<rt::SiteManager>(site, *repository,
                                                     *forecaster);
    auto control = std::make_unique<rt::ControlManager>(*v.testbed, site,
                                                        *manager);
    v.directory.add_site(*manager);

    v.repositories.push_back(std::move(repository));
    v.forecasters.push_back(std::move(forecaster));
    v.site_managers.push_back(std::move(manager));
    v.control_managers.push_back(std::move(control));
  }

  if (warm_up_s > 0.0) v.warm_up(warm_up_s);
  return v;
}

}  // namespace vdce::examples
