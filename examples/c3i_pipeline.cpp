// C3I surveillance pipeline: the "C3I (command, control, communication,
// and information) applications" library in action.
//
// A synthetic air-surveillance scenario flows through the canonical C3I
// chain (sensor ingest -> detection -> tracking -> threat ranking ->
// display), scheduled by VDCE and executed by the runtime.  Also
// demonstrates the console service (suspend/resume) and the I/O service
// (writing the threat report via file I/O).
#include <chrono>
#include <iostream>
#include <thread>

#include "common/log.hpp"
#include "examples/example_common.hpp"
#include "runtime/engine.hpp"
#include "scheduler/site_scheduler.hpp"
#include "sim/workloads.hpp"
#include "viz/gantt.hpp"

int main() {
  using namespace vdce;

  auto vdce = examples::bring_up(netsim::make_campus_testbed(/*seed=*/11));
  const auto& registry = tasklib::builtin_registry();

  // The pipeline, at 2x scenario scale (32 sensor scans).
  const afg::FlowGraph graph = sim::make_c3i_graph(/*scenario_scale=*/2.0);
  std::cout << "application '" << graph.name() << "' ("
            << graph.task_count() << " stages)\n";

  sched::SiteScheduler scheduler(vdce.site_managers[0]->site(),
                                 vdce.directory);
  const auto allocation = scheduler.schedule(graph);
  for (const auto& row : allocation.rows()) {
    std::cout << "  " << row.task_label << " -> "
              << vdce.testbed->host_spec(row.primary_host()).name << "\n";
  }

  // Console service: suspend before starting, resume from a "console"
  // thread — the user's suspend/restart capability.
  dm::ConsoleService console;
  console.suspend();
  std::jthread operator_console([&console] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::cout << "[console] resuming application\n";
    console.resume();
  });

  rt::ExecutionEngine engine(registry);
  const auto result = engine.execute(graph, allocation,
                                     vdce.site_managers[0].get(), &console);

  std::cout << "\n" << viz::render_run_table(result);

  // Inspect the pipeline products.
  const auto track_task = graph.find_by_label("track");
  const auto rank_task = graph.find_by_label("rank");
  const auto display_task = graph.find_by_label("display");
  const auto tracks = result.outputs.at(*track_task).as_tracks();
  const auto threats = result.outputs.at(*rank_task).as_threats();

  std::cout << "\ntracker holds " << tracks.size() << " tracks; top threats:\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(3, threats.size()); ++i) {
    std::cout << "  track " << threats[i].track_id << " score "
              << threats[i].score << "\n";
  }
  std::cout << "display feed: " << result.outputs.at(*display_task).as_text()
            << "\n";

  // I/O service: persist the threat report, read it back via url: I/O.
  dm::IoService io("/tmp");
  io.write_output("/tmp/threats.bin", result.outputs.at(*rank_task));
  const auto reread = io.read_input("url:threats.bin").as_threats();
  std::cout << "threat report round-tripped through the I/O service: "
            << reread.size() << " entries\n";
  return 0;
}
